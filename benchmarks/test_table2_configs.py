"""Table 2: coherence machine and method parameters, asserted cell by cell."""

from repro.coherence import (
    AccessControlMethod,
    METHOD_COSTS,
    TABLE2_MACHINE,
)


def test_table2_machine(run_once):
    machine = run_once(lambda: TABLE2_MACHINE)
    assert machine.processors == 16
    assert machine.l1_size == 16 * 1024
    assert machine.l1_miss_penalty == 10
    assert machine.l2_size == 128 * 1024
    assert machine.l2_miss_penalty == 25
    assert machine.coherence_unit == 32
    assert machine.message_latency == 900


def test_table2_method_costs(run_once):
    costs = run_once(lambda: METHOD_COSTS)
    rc = costs[AccessControlMethod.REFERENCE_CHECKING]
    assert rc.lookup == 18
    assert rc.state_change == 25
    ecc = costs[AccessControlMethod.ECC]
    assert ecc.read_invalid_fault == 250
    assert ecc.write_readonly_page_fault == 230
    informing = costs[AccessControlMethod.INFORMING]
    assert informing.lookup == 33  # 6-cycle pipeline delay + 9 handler + probe
    assert informing.state_change == 25
