"""Hardware vs software remedies for conflict misses.

su2cor's Figure 3 pathology (direct-mapped conflicts) has two classic
fixes: Jouppi's victim cache in hardware, and informing-profile-driven
page recoloring in software (the introduction's [BLRC94] client).  This
bench stages both on the same conflict workload and checks each one's
regime:

* a *small* conflict set (3 lines) — the 4-entry victim cache absorbs it,
  and recoloring also fixes it;
* a *large* conflict set (6 pages cycling) — beyond the victim cache's
  reach, but recoloring still spreads it across the cache's 8 page
  colors.  (Past 8 conflicting pages *both* remedies saturate — the hot
  footprint simply exceeds the cache; verified as a physical sanity
  check.)
"""

import pytest

from repro.apps import MissCounter, PageConflictAnalyzer, remap_stream
from repro.inorder import InOrderCore
from repro.isa import alu, load
from repro.memory import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.memory.victim_cache import VictimCachedL1
from repro.pipeline import CoreConfig, LatencyTable
from repro.workloads import ConflictPattern

PAGE = 4096
DM = CacheConfig(size=32 * 1024, assoc=1, line_size=32)


def conflict_trace(count, n=3000):
    pattern = ConflictPattern(base=0x100000, count=count, spacing=DM.size,
                              sweep=4)
    trace = []
    for i in range(n):
        trace.append(load(pattern.next_address(), dest=2,
                          pc=0x100 + 4 * (i % count)))
        for c in range(2):
            trace.append(alu(dest=3, srcs=(2 if c == 0 else 3,),
                             pc=0x200 + 4 * c))
    return trace


def victim_cache_miss_rate(trace, entries=4):
    front = VictimCachedL1(DM, victim_entries=entries)
    outcomes = [front.access(inst.addr) for inst in trace if inst.is_mem]
    misses = sum(1 for outcome in outcomes if outcome == front.MISS)
    return misses / len(outcomes)


def recolored_miss_rate(trace):
    def make_core(informing=None):
        hierarchy = MemoryHierarchy(HierarchyConfig(
            l1=DM, l2=CacheConfig(size=512 * 1024, assoc=4, line_size=32),
            l1_to_l2_latency=11, l1_to_mem_latency=50))
        return InOrderCore(
            CoreConfig(name="dm", mem_units=0,
                       latencies=LatencyTable(fdiv=17, fp_other=4)),
            hierarchy, informing=informing)

    counter = MissCounter(track_addresses=True)
    profiler = make_core(informing=counter.informing_config())
    profiler.run(iter(list(trace)))

    analyzer = PageConflictAnalyzer(DM, page_size=PAGE)
    analyzer.note_profile(counter.by_addr)
    remap = analyzer.build_remap(threshold=10)

    fixed = make_core()
    fixed.run(remap_stream(iter(list(trace)), remap, PAGE))
    stats = fixed.hierarchy.stats
    return (stats.l1_misses + stats.l1_secondary_misses) / stats.l1_accesses


@pytest.fixture(scope="module")
def remedy_results():
    results = {}
    for label, count in (("small", 3), ("large", 6), ("overflow", 12)):
        trace = conflict_trace(count)
        results[label] = {
            "victim": victim_cache_miss_rate(trace, entries=4),
            "recolor": recolored_miss_rate(trace),
        }
    return results


def test_remedies_run(run_once):
    rate = run_once(victim_cache_miss_rate, conflict_trace(3, n=500))
    assert 0 <= rate <= 1


def test_victim_cache_absorbs_small_conflicts(remedy_results):
    assert remedy_results["small"]["victim"] < 0.2


def test_victim_cache_overwhelmed_by_large_conflicts(remedy_results):
    assert remedy_results["large"]["victim"] > 0.8


def test_recoloring_fixes_both(remedy_results):
    assert remedy_results["small"]["recolor"] < 0.3
    assert remedy_results["large"]["recolor"] < 0.4


def test_past_the_cache_capacity_nothing_helps(remedy_results):
    """With more conflicting hot pages than page colors, the footprint
    exceeds what any placement can hold: both remedies saturate."""
    assert remedy_results["overflow"]["victim"] > 0.8
    assert remedy_results["overflow"]["recolor"] > 0.5


def test_software_generalises_where_hardware_does_not(remedy_results):
    """The introduction's argument, quantified: the fixed-capacity
    hardware remedy stops scaling; the feedback-driven software one
    keeps working."""
    assert (remedy_results["large"]["recolor"]
            < remedy_results["large"]["victim"] * 0.5)
