"""§4.3.2's closing observation: smaller network latencies or larger
primary caches improve the informing implementation's relative performance.
"""

import pytest

from repro.harness.coherence_exp import sensitivity

WORKLOADS = ["read_mostly", "mixed"]


@pytest.fixture(scope="module")
def sweep():
    return sensitivity(workloads=WORKLOADS,
                       message_latencies=(300, 900, 1800),
                       l1_sizes=(8 * 1024, 64 * 1024))


def test_sensitivity_runs(run_once):
    points = run_once(sensitivity, workloads=["read_mostly"],
                      message_latencies=(900,), l1_sizes=())
    assert len(points) == 1


def test_smaller_network_latency_helps_informing(sweep):
    by_latency = {p.message_latency: p for p in sweep
                  if p.l1_size == 16 * 1024}
    assert (by_latency[300].reference_checking
            >= by_latency[900].reference_checking
            >= by_latency[1800].reference_checking)
    assert by_latency[300].ecc >= by_latency[1800].ecc


def test_larger_l1_does_not_hurt_informing(sweep):
    """The paper's direction: larger primary caches improve informing's
    relative standing (fewer handler invocations while the comparators'
    fixed costs remain)."""
    at_900 = {p.l1_size: p for p in sweep if p.message_latency == 900}
    small = at_900[8 * 1024]
    large = at_900[64 * 1024]
    assert large.reference_checking >= small.reference_checking - 0.02
