"""Figure 3: su2cor's conflict-miss pathology on the in-order machine.

Paper claims: the 8KB direct-mapped primary cache triggers the
10-instruction handler often enough to roughly quintuple the instruction
count and triple the execution time; the out-of-order machine (32KB 2-way)
is only modestly affected; and unique handlers can be *faster* than a
single handler because independent handler invocations expose parallelism.
"""

import pytest

from conftest import INSTRUCTIONS, SEED, WARMUP
from repro.harness.runner import run_figure


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure("figure3", ["su2cor"], ["ooo", "inorder"],
                      ["N", "S1", "U1", "S10", "U10"], INSTRUCTIONS, WARMUP,
                      seed=SEED)


def test_figure3_runs(run_once):
    result = run_once(run_figure, "figure3", ["su2cor"], ["inorder"],
                      ["N", "S10"], INSTRUCTIONS, WARMUP)
    assert len(result.bars) == 2


def test_in_order_blowup(figure3_result):
    s10 = figure3_result.get("su2cor", "inorder", "S10")
    assert s10.normalized > 1.8  # paper: ~3x
    baseline = figure3_result.get("su2cor", "inorder", "N")
    inst_growth = s10.instructions / baseline.instructions
    assert inst_growth > 2.5     # paper: ~5x ("quintuple")


def test_out_of_order_only_modestly_affected(figure3_result):
    s10 = figure3_result.get("su2cor", "ooo", "S10")
    assert s10.normalized < 1.5
    # The pathology is specifically the in-order machine's direct-mapped L1.
    assert (figure3_result.get("su2cor", "inorder", "S10").normalized
            > s10.normalized + 0.3)


def test_conflicts_come_from_the_direct_mapped_cache(figure3_result):
    in_order_miss = figure3_result.get("su2cor", "inorder", "N").l1_miss_rate
    ooo_miss = figure3_result.get("su2cor", "ooo", "N").l1_miss_rate
    assert in_order_miss > 1.5 * ooo_miss


def test_unique_handlers_expose_parallelism(figure3_result):
    """Paper: su2cor sometimes runs faster with unique handlers than a
    single handler, because a single handler's invocations are data
    dependent on each other.  Assert the shape: U10 is not much worse than
    S10 *relative to the extra per-reference instruction it carries*."""
    s10 = figure3_result.get("su2cor", "ooo", "S10")
    u10 = figure3_result.get("su2cor", "ooo", "U10")
    inst_growth = (u10.instructions - s10.instructions) / s10.instructions
    time_growth = (u10.normalized - s10.normalized) / s10.normalized
    assert time_growth < inst_growth
