"""Figure 2: generic 1/10-instruction miss handlers on thirteen benchmarks.

Regenerates the figure's rows (N / S1 / U1 / S10 / U10 on both machines)
and asserts its qualitative claims:

* overheads grow with handler length and with cache-stall exposure;
* the near-miss-free benchmarks (ora, ear, espresso) are almost free;
* the out-of-order machine hides the 10-vs-1-instruction handler growth on
  the floating-point codes far better than the in-order machine;
* the per-reference MHAR-set instruction overlaps substantially on the
  out-of-order machine (U1 close to S1 relative to its instruction-count
  growth).
"""

import pytest

from conftest import INSTRUCTIONS, SEED, WARMUP, make_engine
from repro.harness.runner import run_figure
from repro.workloads import FIGURE2_BENCHMARKS, FP_BENCHMARKS

LOW_MISS = ("ora", "ear", "espresso")
FP_IN_FIGURE = [b for b in FP_BENCHMARKS if b != "su2cor"]


@pytest.fixture(scope="module")
def figure2_result():
    return run_figure("figure2", FIGURE2_BENCHMARKS, ["ooo", "inorder"],
                      ["N", "S1", "U1", "S10", "U10"], INSTRUCTIONS, WARMUP,
                      seed=SEED, engine=make_engine())


def test_figure2_runs(run_once):
    """The timed row: one benchmark end to end, all five bars."""
    result = run_once(run_figure, "figure2-compress", ["compress"],
                      ["ooo", "inorder"], ["N", "S1", "U1", "S10", "U10"],
                      INSTRUCTIONS, WARMUP)
    assert len(result.bars) == 10


def test_handler_length_monotonicity(figure2_result):
    for bench in FIGURE2_BENCHMARKS:
        for machine in ("ooo", "inorder"):
            s1 = figure2_result.get(bench, machine, "S1").normalized
            s10 = figure2_result.get(bench, machine, "S10").normalized
            assert s10 >= s1 - 0.02, (bench, machine)


def test_low_miss_benchmarks_nearly_free(figure2_result):
    for bench in LOW_MISS:
        for machine in ("ooo", "inorder"):
            s10 = figure2_result.get(bench, machine, "S10").normalized
            assert s10 <= 1.12, (bench, machine, s10)


def test_most_overheads_within_forty_percent(figure2_result):
    """Paper: overhead < 40% for twelve of thirteen benchmarks (tomcatv
    excepted) in nearly all configurations; we allow the miss-heaviest
    in-order 10-instruction bars to exceed it (see EXPERIMENTS.md)."""
    over = [
        (bar.benchmark, bar.machine, bar.label, round(bar.normalized, 2))
        for bar in figure2_result.bars
        if bar.label != "N" and bar.normalized > 1.40
    ]
    # Only 10-instruction handler configs may break the envelope, and only
    # on the in-order machine (plus tomcatv, the paper's own exception).
    for bench, machine, label, value in over:
        assert label in ("S10", "U10") or bench == "tomcatv", over
        assert machine == "inorder" or bench == "tomcatv", over


def test_ooo_hides_long_handlers_on_fp(figure2_result):
    """The Figure 2 FP trend: (S10-S1) gap much smaller out-of-order."""
    ooo_gap = []
    inorder_gap = []
    for bench in FP_IN_FIGURE:
        ooo_gap.append(
            figure2_result.get(bench, "ooo", "S10").normalized
            - figure2_result.get(bench, "ooo", "S1").normalized)
        inorder_gap.append(
            figure2_result.get(bench, "inorder", "S10").normalized
            - figure2_result.get(bench, "inorder", "S1").normalized)
    assert sum(inorder_gap) > sum(ooo_gap)


def test_tomcatv_in_order_long_handler_worst(figure2_result):
    """Paper: tomcatv's 10-vs-1 difference is <10% out-of-order but >45%
    in-order (shape: the in-order gap is several times the ooo gap)."""
    ooo_gap = (figure2_result.get("tomcatv", "ooo", "S10").normalized
               - figure2_result.get("tomcatv", "ooo", "S1").normalized)
    inorder_gap = (figure2_result.get("tomcatv", "inorder", "S10").normalized
                   - figure2_result.get("tomcatv", "inorder", "S1").normalized)
    assert inorder_gap > ooo_gap

def test_unique_handler_instruction_growth_overlapped_ooo(figure2_result):
    """alvinn/mdljsp2: U adds ~mem_fraction extra instructions, but the
    out-of-order machine absorbs most of them (time grows by much less
    than the instruction count)."""
    for bench in ("alvinn", "mdljsp2"):
        baseline = figure2_result.get(bench, "ooo", "N")
        unique = figure2_result.get(bench, "ooo", "U1")
        inst_growth = unique.instructions / baseline.instructions - 1.0
        time_growth = unique.normalized - 1.0
        assert inst_growth > 0.25, (bench, inst_growth)
        assert time_growth < inst_growth * 0.6, (bench, time_growth,
                                                 inst_growth)


def test_breakdowns_are_valid(figure2_result):
    for bar in figure2_result.bars:
        assert bar.busy + bar.cache_stall + bar.other_stall == pytest.approx(
            1.0, abs=0.01)
        assert bar.handler_invocations == 0 or bar.label != "N"
