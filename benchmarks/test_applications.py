"""§4.1 application claims.

* the per-reference profiling tool runs with modest overhead (the paper's
  earlier study [HMMS95] reports < 25%);
* sampling reduces an expensive tool's overhead while keeping the
  estimates useful (§4.2.2);
* handler-launched prefetching only spends overhead while the code is
  missing, and pays off on memory-latency-bound code (§4.1.2);
* context-switch-on-miss multithreading beats blocking when switch costs
  are small and threads are memory-bound (§4.1.3).
"""

import pytest

from conftest import INSTRUCTIONS, WARMUP
from repro.apps import (
    AdaptivePrefetcher,
    MissProfiler,
    SamplingProfiler,
    simulate_multithreading,
)
from repro.harness import MACHINES, R10000_SPEC, build_core, build_hierarchy
from repro.isa import alu, load
from repro.workloads import spec92_workload


def profiling_overhead(machine_key, profiler=None, sampler=None):
    spec = MACHINES[machine_key]
    workload = spec92_workload("compress")
    budget = INSTRUCTIONS + WARMUP

    base = build_core(spec)
    base_stats = base.run(workload.stream(8 * budget), max_app_insts=budget,
                          warmup_insts=WARMUP)

    tool = profiler or sampler
    core = build_core(spec, informing=tool.informing_config())
    if sampler is not None:
        sampler.attach(core)
        stream = sampler.instrument(workload.stream(8 * budget))
    else:
        stream = tool.counting_stream(workload.stream(8 * budget))
    stats = core.run(stream, max_app_insts=budget, warmup_insts=WARMUP)
    return stats.cycles / base_stats.cycles - 1.0


@pytest.fixture(scope="module")
def profile_overheads():
    return {machine: profiling_overhead(machine, profiler=MissProfiler())
            for machine in ("ooo", "inorder")}


def test_profiling_runs(run_once):
    overhead = run_once(profiling_overhead, "ooo", MissProfiler())
    assert overhead >= 0


@pytest.mark.parametrize("machine", ["ooo", "inorder"])
def test_profiling_overhead_modest(profile_overheads, machine):
    """[HMMS95]: per-reference miss rates at < 25% runtime overhead."""
    assert profile_overheads[machine] < 0.30


def test_sampling_cuts_overhead(profile_overheads):
    sampled = profiling_overhead(
        "inorder", sampler=SamplingProfiler(period=4096, duty=0.25))
    assert sampled < profile_overheads["inorder"] * 0.8 + 0.02


def test_adaptive_prefetching_pays_off(run_once):
    def experiment():
        trace = []
        for i in range(600):
            trace.append(load(0x200000 + 64 * i, dest=2, pc=0x100))
            for c in range(22):
                trace.append(alu(dest=3, srcs=(2 if c == 0 else 3,),
                                 pc=0x200 + 4 * c))
        base = build_core(R10000_SPEC).run(iter(list(trace)))
        prefetcher = AdaptivePrefetcher(degree=5)
        informed = build_core(
            R10000_SPEC, informing=prefetcher.informing_config()
        ).run(iter(list(trace)))
        return base.cycles, informed.cycles, prefetcher.invocations

    base_cycles, pf_cycles, invocations = run_once(experiment)
    assert pf_cycles < base_cycles * 0.8
    assert invocations < 600 * 0.6  # most misses eliminated


def test_multithreading_scales_until_bandwidth(run_once):
    def thread(tid):
        def factory():
            base = 0x1000000 * (tid + 1)
            for i in range(400):
                yield load(base + 64 * i, dest=2, pc=0x1000)
                for c in range(14):
                    yield alu(dest=3, srcs=(2 if c == 0 else 3,),
                              pc=0x1004 + 4 * c)
        return factory

    def experiment():
        ipcs = {}
        for threads in (1, 2, 4):
            result = simulate_multithreading(
                [thread(t) for t in range(threads)],
                build_hierarchy(R10000_SPEC), switch_cost=16)
            ipcs[threads] = result.ipc
        return ipcs

    ipcs = run_once(experiment)
    assert ipcs[2] > ipcs[1] * 1.3
    assert ipcs[4] >= ipcs[2] * 0.95
