"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures once
(``rounds=1`` — these are experiments, not microbenchmarks) and asserts the
paper's qualitative claims about it.  Set ``REPRO_BENCH_QUICK=1`` to run
4x-shorter simulations when iterating.

The grid-shaped experiments can opt into the :mod:`repro.exec` engine:
``REPRO_BENCH_JOBS=N`` fans their simulation cells across N worker
processes and ``REPRO_BENCH_CACHE=1`` memoizes results in the
content-addressed store (so a re-run after an unrelated code change is
nearly free).  The defaults — one in-process job, no cache — are
byte-identical to the historical serial loops.
"""

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Measured application instructions / warm-up per simulator run.
INSTRUCTIONS = 5_000 if QUICK else 20_000
WARMUP = 2_500 if QUICK else 10_000

#: Workload seed offset, shared with the harness CLI's ``--seed`` default
#: (0) so benchmark runs replay the exact golden-reference streams.  Set
#: ``REPRO_BENCH_SEED=N`` to re-check claims on a different seed path.
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: Worker processes / caching for engine-backed experiment fixtures.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
CACHE = os.environ.get("REPRO_BENCH_CACHE") == "1"


def make_engine():
    """A JobRunner honouring REPRO_BENCH_JOBS / REPRO_BENCH_CACHE."""
    from repro.exec import ExecOptions, JobRunner

    return JobRunner(ExecOptions(jobs=JOBS, cache=CACHE))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""
    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner


@pytest.fixture(autouse=True)
def _claims_run_under_benchmark_only(benchmark):
    """The claim-assertion tests share the expensive module-scoped results
    of the timed tests; pull in the benchmark fixture so ``pytest
    benchmarks/ --benchmark-only`` runs them instead of skipping them."""
    return benchmark
