"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures once
(``rounds=1`` — these are experiments, not microbenchmarks) and asserts the
paper's qualitative claims about it.  Set ``REPRO_BENCH_QUICK=1`` to run
4x-shorter simulations when iterating.
"""

import os

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Measured application instructions / warm-up per simulator run.
INSTRUCTIONS = 5_000 if QUICK else 20_000
WARMUP = 2_500 if QUICK else 10_000


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""
    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner


@pytest.fixture(autouse=True)
def _claims_run_under_benchmark_only(benchmark):
    """The claim-assertion tests share the expensive module-scoped results
    of the timed tests; pull in the benchmark fixture so ``pytest
    benchmarks/ --benchmark-only`` runs them instead of skipping them."""
    return benchmark
