"""§3.2 / §4.2.2: branch-like vs exception-like informing traps.

Paper: postponing the trap until the reference reaches the head of the
reorder buffer (exception-style) costs ~9% / ~7% extra execution time for
1- / 10-instruction handlers on compress — "the additional complexity of
handling informing traps as mispredicted branches does buy us something".
"""

import pytest

from conftest import INSTRUCTIONS, SEED, WARMUP
from repro.harness.runner import run_figure


@pytest.fixture(scope="module")
def bve_result():
    return run_figure("bve", ["compress"], ["ooo"],
                      ["N", "S1", "E1", "S10", "E10"], INSTRUCTIONS, WARMUP,
                      seed=SEED)


def test_branch_vs_exception_runs(run_once):
    result = run_once(run_figure, "bve", ["compress"], ["ooo"],
                      ["N", "S1", "E1"], INSTRUCTIONS, WARMUP, seed=SEED)
    assert len(result.bars) == 3


def test_exception_style_costs_more(bve_result):
    s1 = bve_result.get("compress", "ooo", "S1").normalized
    e1 = bve_result.get("compress", "ooo", "E1").normalized
    s10 = bve_result.get("compress", "ooo", "S10").normalized
    e10 = bve_result.get("compress", "ooo", "E10").normalized
    assert e1 > s1
    assert e10 > s10


def test_extra_cost_in_paper_ballpark(bve_result):
    """Paper: +9% (1-inst) and +7% (10-inst); accept 2-25%."""
    s1 = bve_result.get("compress", "ooo", "S1").normalized
    e1 = bve_result.get("compress", "ooo", "E1").normalized
    s10 = bve_result.get("compress", "ooo", "S10").normalized
    e10 = bve_result.get("compress", "ooo", "E10").normalized
    assert 0.02 < e1 - s1 < 0.25, (s1, e1)
    assert 0.01 < e10 - s10 < 0.25, (s10, e10)


def test_same_handler_work_either_way(bve_result):
    s10 = bve_result.get("compress", "ooo", "S10")
    e10 = bve_result.get("compress", "ooo", "E10")
    ratio = e10.handler_invocations / max(1, s10.handler_invocations)
    assert 0.7 < ratio < 1.3
