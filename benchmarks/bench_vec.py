"""Same-sitting interp-vs-vec benchmark over the cold figure2 grid.

The drift lesson from BENCH_hotpath.json: absolute walls on a given
host move by ~30% between sittings, so a speedup claim is only honest
when both sides of the pair are measured back-to-back on the same
machine.  This script does exactly that — it sweeps every figure2
``--quick`` cell through the interp backend, then through the vec
backend, in one process, verifying **digit-exact** statistics cell by
cell, and records the paired walls plus their ratio.

Usage::

    # measure, verify parity, update the committed snapshot
    PYTHONPATH=src python benchmarks/bench_vec.py

    # CI perf-gate: record fresh timings next to the baseline and fail
    # if the same-sitting speedup falls below the floor (the *ratio* is
    # host-independent; the absolute walls are not)
    PYTHONPATH=src python benchmarks/bench_vec.py \
        --record-to fresh_vec.json --fail-below 1.6

    # quick subset while iterating on a kernel
    PYTHONPATH=src python benchmarks/bench_vec.py --benchmarks compress

Any per-cell statistic mismatch between the backends exits 1
immediately — a fast wrong simulator is worthless.  The snapshot is
``harness compare`` compatible (bench mode), but the committed gate is
the recorded ``speedup``: compare the ratios, never a fresh absolute
wall against a committed one.
"""

import argparse
import sys
import time
from dataclasses import fields

REPO_ROOT_BENCH = "BENCH_vec.json"

QUICK_INSTRUCTIONS = 7500
QUICK_WARMUP = 3750
MACHINE_KEYS = ("ooo", "inorder")
LABELS = ("N", "S1", "U1", "S10", "U10")


def _cells(benchmarks):
    return [(b, m, label)
            for b in benchmarks for m in MACHINE_KEYS for label in LABELS]


def _sweep(run, cells, configs):
    """Run every cell through *run* and return (results, wall_seconds)."""
    out = {}
    start = time.perf_counter()
    for benchmark, machine, label in cells:
        out[(benchmark, machine, label)] = run(
            benchmark, machine, configs[label],
            QUICK_INSTRUCTIONS, QUICK_WARMUP)
    return out, time.perf_counter() - start


def _diff(interp_results, vec_results):
    """Digit-exact per-field diff; returns a list of mismatch strings."""
    from repro.harness.runner import BarResult

    names = [f.name for f in fields(BarResult) if f.name != "normalized"]
    bad = []
    for cell, a in interp_results.items():
        b = vec_results[cell]
        for name in names:
            if getattr(a, name) != getattr(b, name):
                bad.append(f"{'/'.join(cell)} {name}: interp="
                           f"{getattr(a, name)!r} vec={getattr(b, name)!r}")
    return bad


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated subset (default: the full "
                             "13-benchmark figure2 grid)")
    parser.add_argument("--record-to", default=REPO_ROOT_BENCH,
                        metavar="PATH",
                        help=f"snapshot file to write "
                             f"(default {REPO_ROOT_BENCH})")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and verify only; write nothing")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="R",
                        help="exit 1 unless the same-sitting speedup "
                             "(interp wall / vec wall) is at least R")
    args = parser.parse_args(argv)

    from repro.exec import atomic_write_json
    from repro.harness.runner import bar_config, run_bar
    from repro.vec import run_bar_vec
    from repro.workloads import FIGURE2_BENCHMARKS

    benchmarks = (args.benchmarks.split(",") if args.benchmarks
                  else list(FIGURE2_BENCHMARKS))
    cells = _cells(benchmarks)
    configs = {label: bar_config(label) for label in LABELS}

    # Same sitting, same process: interp sweep first, vec sweep second.
    # Both are cold — no result cache in sight, and the vec decode cache
    # starts empty (its fill is part of the vec wall, as in a real run).
    def run_interp(benchmark, machine, bar, instructions, warmup):
        return run_bar(benchmark, machine, bar, instructions, warmup,
                       backend="interp")

    interp_results, interp_wall = _sweep(run_interp, cells, configs)
    vec_results, vec_wall = _sweep(run_bar_vec, cells, configs)

    mismatches = _diff(interp_results, vec_results)
    for line in mismatches[:20]:
        print(f"MISMATCH {line}")
    speedup = interp_wall / vec_wall if vec_wall else float("inf")
    print(f"{len(cells)} cells; interp {interp_wall:.2f}s, "
          f"vec {vec_wall:.2f}s — speedup x{speedup:.2f}, "
          f"{len(mismatches)} mismatching field(s)")
    if mismatches:
        return 1

    if not args.no_record:
        payload = {
            "schema": 1,
            "microbenchmarks": {
                "unit": "seconds (one cold figure2 --quick sweep per "
                        "backend, paired in the same sitting)",
                "timings": {
                    "figure2_quick_interp": round(interp_wall, 2),
                    "figure2_quick_vec": round(vec_wall, 2),
                },
            },
            "vec": {
                "cells": len(cells),
                "benchmarks": benchmarks,
                "instructions": QUICK_INSTRUCTIONS,
                "warmup": QUICK_WARMUP,
                "speedup": round(speedup, 2),
                "mismatches": 0,
                "measured": time.strftime("%Y-%m-%d"),
                "note": "Both walls measured back-to-back in one process "
                        "(this script), so the speedup ratio is immune to "
                        "the ~30% between-sitting host drift documented "
                        "in BENCH_hotpath.json. Gate on the ratio, never "
                        "on a fresh absolute wall vs a committed one.",
            },
        }
        atomic_write_json(args.record_to, payload)
        print(f"recorded: {args.record_to}")

    if args.fail_below is not None and speedup < args.fail_below:
        print(f"FAIL: same-sitting speedup x{speedup:.2f} is below the "
              f"x{args.fail_below:.2f} floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
