"""§3.3: cache-as-visible-state — speculative informing loads and MSHRs.

Paper claims: extending MSHR lifetimes until graduate/squash (with
squashed fills invalidated out of the L1) preserves the access-check
guarantee; eight MSHRs remained sufficient in all cases; and the squashed
data usually survives in the L2 — an accidental prefetch.
"""

import random

import pytest

from repro.harness import R10000_SPEC, build_core
from repro.isa import OpClass, alu, branch, load
from repro.isa.instructions import DynInst


def wrong_path_factory(branch_inst):
    base = 0x900000 + (branch_inst.pc & 0xFFF) * 0x40

    def generate():
        i = 0
        while True:
            yield load(base + 64 * i, dest=5, pc=0xF000 + 4 * (i % 16))
            yield alu(dest=6, srcs=(5,), pc=0xF100 + 4 * (i % 16))
            i += 1

    return generate()


def slow_branch_trace(n=300, seed=9):
    """Mispredicting branches gated by divide chains, so wrong-path fills
    often complete before the squash."""
    rng = random.Random(seed)
    trace = []
    for i in range(n):
        pc = 0x1000 + 16 * i
        trace.append(DynInst(OpClass.IDIV, dest=9, srcs=(1,), pc=pc))
        trace.append(DynInst(OpClass.IDIV, dest=9, srcs=(9,), pc=pc + 4))
        trace.append(branch(rng.random() < 0.5, srcs=(9,), pc=pc + 8))
        trace.append(alu(dest=1, pc=pc + 12))
    return trace


@pytest.fixture(scope="module")
def speculation_run():
    core = build_core(R10000_SPEC, extended_mshr=True,
                      wrong_path_factory=wrong_path_factory)
    stats = core.run(slow_branch_trace())
    return core, stats


def test_speculation_runs(run_once):
    def run():
        core = build_core(R10000_SPEC, extended_mshr=True,
                          wrong_path_factory=wrong_path_factory)
        return core, core.run(slow_branch_trace(100))
    core, stats = run_once(run)
    assert stats.cycles > 0


def test_eight_mshrs_remain_sufficient(speculation_run):
    core, _ = speculation_run
    assert core.hierarchy.mshrs.high_water <= 8
    assert core.hierarchy.mshrs.occupancy() == 0  # all released


def test_squashed_fills_invalidated_from_l1(speculation_run):
    core, _ = speculation_run
    assert core.wrong_path_squashed > 0
    assert core.hierarchy.stats.squash_invalidations > 0


def test_squashed_data_survives_in_l2(speculation_run):
    core, _ = speculation_run
    core.hierarchy.drain()
    surviving = sum(
        1 for set_ in core.hierarchy.l2._sets for line in set_
        if (line << 5) >= 0x900000)
    assert surviving > 0  # "effectively prefetched into the L2"


def test_without_guarantee_l1_is_polluted():
    """Contrast run: no MSHR extension — wrong-path lines stay in L1."""
    core = build_core(R10000_SPEC, extended_mshr=False,
                      wrong_path_factory=wrong_path_factory)
    core.run(slow_branch_trace())
    core.hierarchy.drain()
    assert core.hierarchy.stats.squash_invalidations == 0
    polluted = sum(
        1 for set_ in core.hierarchy.l1._sets for line in set_
        if (line << 5) >= 0x900000)
    assert polluted > 0
