"""§2.3: the condition-code scheme and per-reference trap setup cost the
same — one instruction per reference of interest.

Paper: "All of the proposed methods have similar performance"; the explicit
BLMISS check and the per-reference MHAR set both consume a fetch slot per
reference and redirect on a miss.
"""

import pytest

from conftest import INSTRUCTIONS, SEED, WARMUP
from repro.harness.runner import run_figure


@pytest.fixture(scope="module")
def cc_result():
    return run_figure("cc", ["compress", "alvinn"], ["ooo", "inorder"],
                      ["N", "CC1", "U1"], INSTRUCTIONS, WARMUP, seed=SEED)


def test_cc_vs_trap_runs(run_once):
    result = run_once(run_figure, "cc", ["compress"], ["ooo"],
                      ["N", "CC1", "U1"], INSTRUCTIONS, WARMUP, seed=SEED)
    assert len(result.bars) == 3


@pytest.mark.parametrize("bench", ["compress", "alvinn"])
@pytest.mark.parametrize("machine", ["ooo", "inorder"])
def test_mechanisms_cost_about_the_same(cc_result, bench, machine):
    cc = cc_result.get(bench, machine, "CC1").normalized
    trap = cc_result.get(bench, machine, "U1").normalized
    assert cc == pytest.approx(trap, abs=0.10), (bench, machine, cc, trap)


@pytest.mark.parametrize("machine", ["ooo", "inorder"])
def test_both_invoke_handlers_on_misses(cc_result, machine):
    cc = cc_result.get("compress", machine, "CC1")
    trap = cc_result.get("compress", machine, "U1")
    assert cc.handler_invocations > 0
    ratio = cc.handler_invocations / max(1, trap.handler_invocations)
    assert 0.6 < ratio < 1.4
