"""Table 1: the machine models carry exactly the paper's parameters."""

from repro.harness import ALPHA21164_SPEC, R10000_SPEC, build_core


def test_table1_out_of_order(run_once):
    spec = run_once(lambda: R10000_SPEC)
    core, mem = spec.core, spec.hierarchy
    assert core.issue_width == 4
    assert (core.int_units, core.fp_units, core.branch_units,
            core.mem_units) == (2, 2, 1, 1)
    assert core.rob_size == 32
    assert (core.latencies.imul, core.latencies.idiv) == (12, 76)
    assert (core.latencies.fdiv, core.latencies.fsqrt,
            core.latencies.fp_other) == (15, 20, 2)
    assert (mem.l1.size, mem.l1.assoc) == (32 * 1024, 2)
    assert (mem.l2.size, mem.l2.assoc) == (2 * 1024 * 1024, 2)
    assert mem.l1.line_size == 32
    assert (mem.l1_to_l2_latency, mem.l1_to_mem_latency) == (12, 75)
    assert (mem.mshr_count, mem.data_banks, mem.fill_time) == (8, 2, 4)
    assert mem.mem_cycles_per_access == 20


def test_table1_in_order(run_once):
    spec = run_once(lambda: ALPHA21164_SPEC)
    core, mem = spec.core, spec.hierarchy
    assert core.issue_width == 4
    assert (core.int_units, core.fp_units, core.branch_units,
            core.mem_units) == (2, 2, 1, 0)
    assert (core.latencies.imul, core.latencies.idiv) == (12, 76)
    assert (core.latencies.fdiv, core.latencies.fsqrt,
            core.latencies.fp_other) == (17, 20, 4)
    assert (mem.l1.size, mem.l1.assoc) == (8 * 1024, 1)
    assert (mem.l2.size, mem.l2.assoc) == (2 * 1024 * 1024, 4)
    assert (mem.l1_to_l2_latency, mem.l1_to_mem_latency) == (11, 50)
    assert (mem.mshr_count, mem.data_banks, mem.fill_time) == (8, 2, 4)


def test_machines_build_and_run(run_once):
    """Both models simulate a short stream end to end."""
    from repro.workloads import spec92_workload

    def build_and_run():
        results = {}
        for spec in (R10000_SPEC, ALPHA21164_SPEC):
            core = build_core(spec)
            stats = core.run(spec92_workload("espresso").stream(5_000),
                             max_app_insts=5_000)
            results[spec.name] = stats
        return results

    results = run_once(build_and_run)
    for stats in results.values():
        assert stats.cycles > 0
        assert 0 < stats.ipc <= 4
