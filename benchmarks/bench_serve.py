"""Load benchmark for the repro.serve gateway.

Boots an in-process gateway (real engine, real cache) and drives it
through four phases:

1. **coalesce proof** — two identical concurrent *uncached* requests;
   the gateway must execute once and coalesce once (asserted from
   ``/metrics``).
2. **digit-exact proof** — one served cell compared ``==`` against the
   same SimJob run directly through a JobRunner (no cache): the service
   must be byte-identical to a local run.
3. **cache warm-up** — every catalog cell submitted once, so phase 4
   measures gateway overhead rather than simulation time.
4. **load** — N concurrent clients (default 1000, each its own
   connection) submitting cells drawn from a zipf-skewed popularity
   distribution over the catalog, all warm-cache hits.  Reports wall,
   throughput and p50/p95/p99 latency.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --clients 2000 --record-to BENCH_serve.json

``--record-to`` writes a schema-1 microbenchmarks snapshot understood by
``python -m repro.harness compare`` (the perf-gate CI job compares a
fresh run against the committed ``BENCH_serve.json``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import resource
import sys
import threading
import time
from typing import Dict, List

from repro.exec import ExecOptions, JobRunner
from repro.obs.export import parse_openmetrics
from repro.serve import ServeClient, ServeOptions, validate_job_spec
from repro.serve.app import App
from repro.serve.gateway import Gateway

#: Keep individual cells small: the load phase is about the gateway, not
#: the simulator, and the warm-up must run every catalog cell once.
CELL_INSTRUCTIONS = 1500
CELL_WARMUP = 300

BENCHMARKS = ["compress", "espresso", "ora", "su2cor"]
LABELS = ["N", "S10", "U8"]


def build_catalog(size: int) -> List[Dict]:
    """*size* distinct bar cells (benchmark x label x seed)."""
    catalog = []
    seed = 0
    while len(catalog) < size:
        for benchmark in BENCHMARKS:
            for label in LABELS:
                catalog.append({"kind": "bar", "benchmark": benchmark,
                                "machine": "ooo", "label": label,
                                "instructions": CELL_INSTRUCTIONS,
                                "warmup": CELL_WARMUP, "seed": seed})
                if len(catalog) == size:
                    return catalog
        seed += 1
    return catalog


def zipf_picks(catalog: List[Dict], count: int, exponent: float,
               seed: int) -> List[Dict]:
    """*count* catalog draws with zipf-skewed popularity (rank^-s)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(catalog))]
    return rng.choices(catalog, weights=weights, k=count)


def raise_fd_limit(needed: int) -> None:
    """Best-effort bump of RLIMIT_NOFILE for the connection burst."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= needed:
        return
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE,
                           (min(needed, hard), hard))
    except (ValueError, OSError):
        print(f"warning: could not raise fd limit past {soft}; "
              f"the client burst may hit EMFILE", file=sys.stderr)


class BenchServer:
    """The gateway in a background thread with its own event loop."""

    def __init__(self, options: ServeOptions) -> None:
        self.app = App(Gateway(options))
        self.host = None
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.app.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await self.app.shutdown(grace=30)

    def __enter__(self) -> "BenchServer":
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("gateway failed to boot")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60)


async def _http_post(host: str, port: int, payload: bytes) -> int:
    """One connection, one POST /v1/jobs, parse the status, close."""
    for attempt in (1, 2, 3):
        try:
            reader, writer = await asyncio.open_connection(host, port)
            break
        except OSError:
            if attempt == 3:
                raise
            await asyncio.sleep(0.05 * attempt)
    try:
        writer.write(b"POST /v1/jobs HTTP/1.1\r\n"
                     b"Host: bench\r\n"
                     b"Content-Type: application/json\r\n"
                     b"Connection: close\r\n"
                     + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                     + payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        await reader.read()  # drain headers + body to EOF
        return status
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def client_burst(host: str, port: int, specs: List[Dict]
                       ) -> List[float]:
    """All *specs* as simultaneous clients; per-request latencies."""
    latencies = [0.0] * len(specs)
    statuses = [0] * len(specs)

    async def one(index: int, spec: Dict) -> None:
        payload = json.dumps(spec).encode()
        t0 = time.perf_counter()
        statuses[index] = await _http_post(host, port, payload)
        latencies[index] = time.perf_counter() - t0

    await asyncio.gather(*(one(i, s) for i, s in enumerate(specs)))
    failed = sum(1 for s in statuses if s != 200)
    if failed:
        raise RuntimeError(f"{failed}/{len(specs)} load requests failed "
                           f"(statuses {sorted(set(statuses))})")
    return latencies


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def run_bench(args) -> Dict:
    raise_fd_limit(args.clients * 2 + 256)
    catalog = build_catalog(args.catalog)
    options = ServeOptions(shards=args.shards,
                           queue_limit=max(64, args.catalog * 2),
                           cache_dir=args.cache_dir)

    with BenchServer(options) as server:
        client = ServeClient(server.host, server.port, timeout=120)

        # Phase 1: coalesce proof.  Two identical uncached submissions
        # racing; the slower one must join the in-flight run.
        proof_spec = dict(catalog[0], seed=90_000,
                          instructions=20_000, warmup=2_000)
        results = [None, None]

        def submit_proof(slot):
            with ServeClient(server.host, server.port, timeout=120) as c:
                results[slot] = c.submit(proof_spec)

        threads = [threading.Thread(target=submit_proof, args=(i,))
                   for i in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        _, metrics_text = client.metrics_text()
        counters = parse_openmetrics(metrics_text)["counters"]
        coalesce_ok = (counters.get("serve_executed") == 1
                       and counters.get("serve_coalesced") == 1)
        print(f"coalesce proof: executed={counters.get('serve_executed')} "
              f"coalesced={counters.get('serve_coalesced')} "
              f"-> {'OK' if coalesce_ok else 'FAILED'}")
        if not coalesce_ok:
            raise SystemExit("coalesce proof failed: two identical "
                             "concurrent requests did not share one run")
        assert results[0][1]["result"] == results[1][1]["result"]

        # Phase 2: digit-exact proof against a direct engine run.
        t0 = time.perf_counter()
        status, outcome = client.submit(catalog[0])
        single_miss = time.perf_counter() - t0
        assert status == 200, outcome
        direct = JobRunner(ExecOptions(jobs=1, cache=False)).run(
            [validate_job_spec(catalog[0])])[0]
        exact = outcome["result"] == direct
        print(f"digit-exact proof: served == direct -> "
              f"{'OK' if exact else 'FAILED'}")
        if not exact:
            raise SystemExit("served result differs from a direct run")

        # Phase 3: warm every catalog cell.
        t0 = time.perf_counter()
        for spec in catalog:
            status, _ = client.submit(spec)
            assert status == 200
        warm_wall = time.perf_counter() - t0
        print(f"warm-up: {len(catalog)} cells in {warm_wall:.2f}s")

        # Single warm round trip (best of 5): pure gateway overhead.
        hit_samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            status, _ = client.submit(catalog[0])
            assert status == 200
            hit_samples.append(time.perf_counter() - t0)
        single_hit = min(hit_samples)

        # Phase 4: the concurrent burst, zipf-skewed, all cache hits.
        picks = zipf_picks(catalog, args.clients, args.zipf, args.seed)
        t0 = time.perf_counter()
        latencies = asyncio.run(client_burst(server.host, server.port,
                                             picks))
        burst_wall = time.perf_counter() - t0
        rps = args.clients / burst_wall

        _, metrics_text = client.metrics_text()
        counters = parse_openmetrics(metrics_text)["counters"]
        client.close()

    p50 = percentile(latencies, 0.50)
    p95 = percentile(latencies, 0.95)
    p99 = percentile(latencies, 0.99)
    print(f"load: {args.clients} concurrent clients, "
          f"{len(catalog)}-cell catalog (zipf s={args.zipf})")
    print(f"  wall {burst_wall:.3f}s  ({rps:.0f} req/s)")
    print(f"  latency p50 {p50 * 1000:.1f}ms  p95 {p95 * 1000:.1f}ms  "
          f"p99 {p99 * 1000:.1f}ms")
    print(f"  gateway counters: requests={counters.get('serve_requests')} "
          f"cache_hits={counters.get('serve_cache_hits')} "
          f"executed={counters.get('serve_executed')}")

    return {
        "schema": 1,
        "microbenchmarks": {
            "timings": {
                "serve_single_miss": round(single_miss, 4),
                "serve_single_hit": round(single_hit, 4),
                "serve_burst_wall": round(burst_wall, 4),
                "serve_burst_p50": round(p50, 4),
                "serve_burst_p95": round(p95, 4),
                "serve_burst_p99": round(p99, 4),
            },
            "unit": "seconds (single run; burst over all clients)",
        },
        "load": {
            "clients": args.clients,
            "catalog_cells": len(catalog),
            "zipf_exponent": args.zipf,
            "requests_per_second": round(rps, 1),
            "coalesce_proof": "executed=1 coalesced=1",
            "digit_exact_proof": "served == direct JobRunner run",
            "measured": time.strftime("%Y-%m-%d"),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=1000,
                        help="concurrent clients in the load phase "
                             "(default 1000)")
    parser.add_argument("--catalog", type=int, default=24,
                        help="distinct cells in the popularity catalog")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="zipf exponent for cell popularity")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a temp dir)")
    parser.add_argument("--record-to", default=None, metavar="PATH",
                        help="write the snapshot JSON here")
    args = parser.parse_args(argv)

    import tempfile
    if args.cache_dir is None:
        args.cache_dir = tempfile.mkdtemp(prefix="bench-serve-cache-")

    snapshot = run_bench(args)
    if args.record_to:
        with open(args.record_to, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"snapshot written to {args.record_to}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
