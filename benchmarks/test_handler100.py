"""§4.2.2: 100-instruction miss handlers.

Paper: execution time increased sharply for the miss-heavy applications
(compress ~6x, su2cor ~7x slower on the in-order machine) but stayed tiny
for ora (~2%), whose cache behaviour is nearly perfect.
"""

import pytest

from conftest import INSTRUCTIONS, SEED, WARMUP
from repro.harness.runner import run_figure


@pytest.fixture(scope="module")
def handler100_result():
    return run_figure("handler100", ["compress", "su2cor", "ora"],
                      ["inorder"], ["N", "S100"], INSTRUCTIONS, WARMUP, seed=SEED)


def test_handler100_runs(run_once):
    result = run_once(run_figure, "handler100", ["ora"], ["inorder"],
                      ["N", "S100"], INSTRUCTIONS, WARMUP)
    assert len(result.bars) == 2


def test_miss_heavy_benchmarks_blow_up(handler100_result):
    compress = handler100_result.get("compress", "inorder", "S100").normalized
    su2cor = handler100_result.get("su2cor", "inorder", "S100").normalized
    assert compress > 2.5   # paper: ~6x
    assert su2cor > 4.0     # paper: ~7x
    assert su2cor > compress  # same ordering as the paper


def test_ora_stays_cheap(handler100_result):
    ora = handler100_result.get("ora", "inorder", "S100").normalized
    assert ora < 1.10       # paper: ~2%
