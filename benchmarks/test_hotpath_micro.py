"""Microbenchmarks for the simulator's hot paths.

Unlike the figure/table benches in this directory (one expensive
experiment per test), these isolate the inner loops the profiler blames:
cache probe/fill, dynamic-stream generation, hierarchy access, and the two
core cycle loops.  They exist to catch hot-path regressions early — run
them before and after touching anything under ``repro.memory``,
``repro.pipeline``, or the cores.

Usage::

    # timed comparison (pytest-benchmark)
    PYTHONPATH=src python -m pytest benchmarks/test_hotpath_micro.py --benchmark-only

    # check-only mode (CI): everything runs once, nothing is timed
    PYTHONPATH=src python -m pytest benchmarks/test_hotpath_micro.py \
        --benchmark-disable -q

    # refresh the committed timing snapshot
    REPRO_HOTPATH_RECORD=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_hotpath_micro.py --benchmark-disable -q

    # record fresh timings to a separate file (the perf-gate CI job does
    # this, then `python -m repro.harness compare`s it against the
    # committed BENCH_hotpath.json with a noise threshold)
    REPRO_HOTPATH_RECORD=1 REPRO_HOTPATH_RECORD_TO=fresh.json \
        PYTHONPATH=src python -m pytest \
        benchmarks/test_hotpath_micro.py --benchmark-disable -q

Each scenario returns a checksum-ish value that is asserted against a
pinned constant, so the check-only mode doubles as a cheap functional
regression test of the optimized paths (the golden-parity suite in
``tests/test_golden_parity.py`` is the authoritative cycle-exactness
check).
"""

import json
import os
import time

import pytest

from repro.harness.runner import bar_config, run_bar
from repro.memory.cache import Cache
from repro.memory.config import CacheConfig
from repro.pipeline.stream import StreamStack
from repro.workloads import spec92_workload

#: Committed timing snapshot (see ``record`` below).
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_hotpath.json")

RECORD = os.environ.get("REPRO_HOTPATH_RECORD") == "1"

#: Redirect the recorded snapshot (perf-gate: record fresh timings next
#: to, not over, the committed baseline).
RECORD_TO = os.environ.get("REPRO_HOTPATH_RECORD_TO") or BENCH_PATH


# -- scenarios ---------------------------------------------------------------
def calibration() -> int:
    """Fixed pure-Python spin: a host-speed yardstick, not a hot path.

    Its timing is recorded alongside the real scenarios so ``harness
    compare``'s bench mode can divide out host/sitting speed differences
    (the committed BENCH_hotpath.json note documents ~30% wall drift
    between sittings on one machine — more across machines).  Comparing
    calibration-normalized ratios turns the perf-gate's committed-vs-
    fresh diff into a same-units comparison instead of a drift lottery.
    """
    acc = 0
    for i in range(2_000_000):
        acc = (acc + i) % 1_000_003
    return acc


def cache_probe_hits() -> int:
    """Steady-state L1 hits: the single most executed memory-layer path."""
    cache = Cache(CacheConfig(size=8 * 1024, assoc=4, line_size=32))
    for addr in range(0, 8 * 1024, 32):
        cache.fill(addr)
    hits = 0
    probe = cache.probe
    for _ in range(40):
        for addr in range(0, 8 * 1024, 32):
            hits += probe(addr)
    return hits


def cache_fill_evictions() -> int:
    """Capacity-miss churn: every fill evicts (exercises victim choice)."""
    cache = Cache(CacheConfig(size=4 * 1024, assoc=4, line_size=32))
    evicted = 0
    fill = cache.fill
    for round_no in range(20):
        base = round_no * 64 * 1024
        for addr in range(base, base + 16 * 1024, 32):
            if fill(addr) is not None:
                evicted += 1
    return evicted


def stream_generation() -> int:
    """Workload generation + fetch plumbing for 20k instructions."""
    workload = spec92_workload("compress")
    stack = StreamStack(workload.stream(20_000))
    fetched = 0
    fetch = stack.fetch
    while True:
        item = fetch()
        if item is None:
            break
        stack.committed(item[1])
        fetched += 1
    return fetched


def inorder_10k() -> int:
    """10k-instruction in-order (21164-like) baseline run."""
    result = run_bar("compress", "inorder", bar_config("N"), 10_000, 0)
    return result.cycles


def ooo_10k() -> int:
    """10k-instruction out-of-order (R10000-like) baseline run."""
    result = run_bar("compress", "ooo", bar_config("N"), 10_000, 0)
    return result.cycles


SCENARIOS = {
    "calibration": calibration,
    "cache_probe_hits": cache_probe_hits,
    "cache_fill_evictions": cache_fill_evictions,
    "stream_generation": stream_generation,
    "inorder_10k": inorder_10k,
    "ooo_10k": ooo_10k,
}

#: Functional pins: the optimized paths must keep producing these exact
#: values (simulators and workloads are fully deterministic).
EXPECTED = {
    "calibration": 21,
    "cache_probe_hits": 40 * 256,
    "cache_fill_evictions": 20 * 512 - 128,
    "stream_generation": 20_000,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_hotpath(name, benchmark):
    value = benchmark(SCENARIOS[name])
    if name in EXPECTED:
        assert value == EXPECTED[name]
    else:
        assert value > 0  # cycle counts; exactness lives in golden parity


def test_record_snapshot():
    """Rewrite BENCH_hotpath.json (opt-in via REPRO_HOTPATH_RECORD=1).

    Times each scenario best-of-3 with perf_counter and merges the numbers
    into the committed snapshot, preserving any other sections (the cold
    figure2 wall-time evidence is maintained by hand — it needs a paired
    baseline measurement on the same machine in the same sitting).
    ``REPRO_HOTPATH_RECORD_TO=PATH`` records to a separate file instead —
    the perf-gate CI job uses that to get fresh timings to ``harness
    compare`` against the committed baseline.  The write is atomic
    (tmp + rename), so an interrupted recording never truncates the
    baseline.
    """
    if not RECORD:
        pytest.skip("set REPRO_HOTPATH_RECORD=1 to rewrite BENCH_hotpath.json")
    from repro.exec import atomic_write_json

    timings = {}
    for name, func in sorted(SCENARIOS.items()):
        best = None
        for _ in range(3):
            start = time.perf_counter()
            func()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None or elapsed < best else best
        timings[name] = round(best, 4)
    payload = {}
    if os.path.exists(RECORD_TO):
        with open(RECORD_TO) as fh:
            payload = json.load(fh)
    payload["schema"] = 1
    payload["microbenchmarks"] = {
        "unit": "seconds (best of 3)",
        "timings": timings,
    }
    atomic_write_json(RECORD_TO, payload)
