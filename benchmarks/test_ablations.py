"""Ablations of the design choices the paper calls out.

* **Shadow state** (§3.2): branch-like informing traps consume shadow
  rename state; the paper estimates ~3x more is needed.  Sweep the slot
  count and show starved configurations slow down.
* **Handler chaining** (§4.2.1/Figure 3 discussion): the pessimistic
  all-dependent handler versus an independent-instruction handler.
* **MSHR count**: fewer than Table 1's eight registers creates structural
  stalls on miss-intensive code.
"""

import pytest

from conftest import INSTRUCTIONS, WARMUP
from repro.core import GenericHandler, InformingConfig, Mechanism
from repro.harness import MACHINES, build_core
from repro.memory import MemoryHierarchy
from repro.workloads import spec92_workload

from dataclasses import replace


def run_with(informing=None, shadow=None, mshr_count=None,
             benchmark="compress", machine="ooo"):
    spec = MACHINES[machine]
    if mshr_count is not None:
        spec = replace(spec, hierarchy=replace(spec.hierarchy,
                                               mshr_count=mshr_count))
    core = build_core(spec, informing=informing, shadow_override=shadow)
    stream = spec92_workload(benchmark).stream(8 * (INSTRUCTIONS + WARMUP))
    return core.run(stream, max_app_insts=INSTRUCTIONS + WARMUP,
                    warmup_insts=WARMUP)


def trap(n, chained=True):
    return InformingConfig(mechanism=Mechanism.TRAP,
                           handler=GenericHandler(n, chained=chained))


class TestShadowStateAblation:
    def test_starved_shadow_state_slows_informing_runs(self, run_once):
        def sweep():
            return {slots: run_with(trap(1), shadow=slots).cycles
                    for slots in (2, 4, 12)}
        cycles = run_once(sweep)
        # Informing ops compete with branches for shadow slots: the paper's
        # "3x more shadow state" budget (12) must not be slower than the
        # starved configurations.
        assert cycles[12] <= cycles[4] <= cycles[2] * 1.05

    def test_baseline_insensitive_to_extra_shadow(self):
        lean = run_with(None, shadow=4).cycles
        rich = run_with(None, shadow=12).cycles
        assert abs(rich - lean) / lean < 0.05


class TestHandlerChainingAblation:
    def test_chained_handler_no_faster_than_independent(self, run_once):
        def pair():
            chained = run_with(trap(10, chained=True)).cycles
            independent = run_with(trap(10, chained=False)).cycles
            return chained, independent
        chained, independent = run_once(pair)
        # The pessimistic (chained) model is an upper bound.
        assert independent <= chained * 1.02


class TestWrongPathAblation:
    def test_wrong_path_fetch_is_second_order(self, run_once):
        """The default cores model mispredicts as fetch bubbles; enabling
        wrong-path injection (what the paper's simulator did) perturbs
        execution time only mildly — justifying the default — while
        exercising the §3.3 squash machinery for real."""
        from repro.workloads.wrongpath import spec92_wrong_path_factory

        def pair():
            spec = MACHINES["ooo"]
            plain = build_core(spec)
            plain_stats = plain.run(
                spec92_workload("eqntott").stream(8 * (INSTRUCTIONS + WARMUP)),
                max_app_insts=INSTRUCTIONS + WARMUP, warmup_insts=WARMUP)
            wp = build_core(spec, extended_mshr=True,
                            wrong_path_factory=spec92_wrong_path_factory(
                                "eqntott"))
            wp_stats = wp.run(
                spec92_workload("eqntott").stream(8 * (INSTRUCTIONS + WARMUP)),
                max_app_insts=INSTRUCTIONS + WARMUP, warmup_insts=WARMUP)
            return plain_stats.cycles, wp_stats.cycles, wp.wrong_path_squashed

        plain_cycles, wp_cycles, squashed = run_once(pair)
        assert squashed > 0
        assert abs(wp_cycles - plain_cycles) / plain_cycles < 0.30


class TestMSHRCountAblation:
    def test_fewer_mshrs_cost_cycles_on_miss_heavy_code(self, run_once):
        def sweep():
            return {count: run_with(None, mshr_count=count,
                                    benchmark="tomcatv").cycles
                    for count in (1, 2, 8)}
        cycles = run_once(sweep)
        assert cycles[1] >= cycles[2] >= cycles[8] * 0.98

    def test_eight_is_near_saturation(self):
        eight = run_with(None, mshr_count=8, benchmark="tomcatv").cycles
        sixteen = run_with(None, mshr_count=16, benchmark="tomcatv").cycles
        assert abs(eight - sixteen) / sixteen < 0.10
