"""Figure 4: three access-control methods on the 16-processor machine.

Paper claims: the informing-operation implementation outperforms both the
reference-checking and ECC-based schemes on every application (on average
24% and 18% faster respectively), while the two comparators' relative
order fluctuates with application parameters such as the read/write mix.
"""

import pytest

from conftest import make_engine
from repro.harness.coherence_exp import figure4


@pytest.fixture(scope="module")
def figure4_result():
    return figure4(engine=make_engine())


def test_figure4_runs(run_once):
    result = run_once(figure4, workloads=["read_mostly"])
    assert len(result.rows) == 1


def test_informing_wins_on_every_application(figure4_result):
    for row in figure4_result.rows:
        assert row.reference_checking >= 1.0, row
        assert row.ecc >= 1.0, row


def test_mean_advantages(figure4_result):
    """Shape check against the paper's 24%/18% averages: informing is
    meaningfully faster than both comparators on average."""
    assert figure4_result.mean_reference_checking > 1.05
    assert figure4_result.mean_ecc > 1.05


def test_comparators_fluctuate(figure4_result):
    """Reference checking and ECC trade places across applications."""
    rc_better = sum(1 for row in figure4_result.rows
                    if row.reference_checking < row.ecc)
    ecc_better = sum(1 for row in figure4_result.rows
                     if row.ecc < row.reference_checking)
    assert rc_better >= 1
    assert ecc_better >= 1


def test_read_heavy_kernels_punish_reference_checking(figure4_result):
    rows = {row.workload: row for row in figure4_result.rows}
    assert rows["read_mostly"].reference_checking > rows[
        "read_mostly"].ecc
