"""Hardware stream buffers vs informing-based software prefetching.

The paper's introduction argues that purely hardware mechanisms "(e.g.,
stream buffers [Jou90])" are not complete solutions: they help regular
streams but cannot adapt to irregular reference patterns, which software
armed with informing feedback can.  This bench stages that comparison:

* a *strided* kernel — both approaches should recover most of the miss
  latency;
* a *pointer-chase* kernel — stream buffers are blind (no sequential
  stream exists), while the informing profile still identifies the hot
  reference so software can act (here: page-remap-style placement is not
  applicable, so the win is correctly *diagnosing* the behaviour).
"""

import pytest

from repro.apps import AdaptivePrefetcher, MissProfiler
from repro.harness import R10000_SPEC
from repro.isa import alu, load
from repro.memory import MemoryHierarchy
from repro.ooo import OutOfOrderCore
from repro.workloads import PointerChasePattern


def strided_trace(n=500, compute=22):
    # Unit-line stride (32B): the pattern stream buffers are built for.
    trace = []
    for i in range(n):
        trace.append(load(0x200000 + 32 * i, dest=2, pc=0x100))
        for c in range(compute):
            trace.append(alu(dest=3, srcs=(2 if c == 0 else 3,),
                             pc=0x200 + 4 * c))
    return trace


def chase_trace(n=400, compute=8):
    pattern = PointerChasePattern(0x400000, nodes=4096, node_size=64, seed=5)
    trace = []
    for i in range(n):
        trace.append(load(pattern.next_address(), dest=24, srcs=(24,),
                          pc=0x100))
        for c in range(compute):
            trace.append(alu(dest=3, srcs=(24 if c == 0 else 3,),
                             pc=0x200 + 4 * c))
    return trace


def run(trace, stream_buffers=0, informing=None):
    hierarchy = MemoryHierarchy(R10000_SPEC.hierarchy,
                                icache=R10000_SPEC.icache,
                                stream_buffers=stream_buffers)
    core = OutOfOrderCore(R10000_SPEC.core, hierarchy, informing=informing)
    stats = core.run(iter(trace))
    return core, stats


@pytest.fixture(scope="module")
def comparison():
    results = {}
    for name, trace_factory in (("strided", strided_trace),
                                ("chase", chase_trace)):
        base_core, base = run(trace_factory())
        hw_core, hw = run(trace_factory(), stream_buffers=4)
        prefetcher = AdaptivePrefetcher(degree=5)
        sw_core, sw = run(trace_factory(),
                          informing=prefetcher.informing_config())
        results[name] = {
            "base": base.cycles,
            "hw": hw.cycles,
            "hw_buffer_hits": hw_core.hierarchy.stream_buffer_hits,
            "sw": sw.cycles,
            "sw_invocations": sw_core.engine.invocations,
        }
    return results


def test_comparison_runs(run_once):
    result = run_once(run, strided_trace(100), 4)
    assert result[1].cycles > 0


def test_both_help_on_strided_code(comparison):
    strided = comparison["strided"]
    assert strided["hw"] < strided["base"]
    assert strided["sw"] < strided["base"]
    assert strided["hw_buffer_hits"] > 100


def test_stream_buffers_blind_on_pointer_chase(comparison):
    chase = comparison["chase"]
    # No sequential stream to lock onto: essentially no buffer hits and
    # no speedup.
    assert chase["hw_buffer_hits"] < 20
    assert chase["hw"] > chase["base"] * 0.95


def test_informing_still_observes_pointer_chase(comparison):
    """The software mechanism cannot *prefetch* an unpredictable chase
    either, but — unlike the hardware buffer — it sees every miss, which
    is the observability argument of the paper's introduction."""
    chase = comparison["chase"]
    assert chase["sw_invocations"] > 300


def test_diagnosis_via_profiling():
    """The profile pinpoints the chasing reference and its 100% miss rate."""
    profiler = MissProfiler()
    core, _ = run(chase_trace(),
                  informing=profiler.informing_config())
    # counting handled separately: profile misses only here
    hottest = profiler.profile.hottest(1)
    assert hottest
    pc, misses, _rate = hottest[0]
    assert pc == 0x100
    assert misses > 300
