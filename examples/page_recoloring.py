"""Conflict-driven page recoloring guided by informing operations.

The paper's introduction names OS page coloring/migration ([BLRC94]) as a
consumer of memory-behaviour feedback.  This example closes the loop on a
su2cor-style conflict workload running against a large direct-mapped cache:

1. profile per-address misses with a 1-instruction informing handler;
2. aggregate them per page and find hot pages sharing a cache color;
3. recolor those pages and re-run — conflicts disappear.

Run:  python examples/page_recoloring.py
"""

from repro.apps import MissCounter, PageConflictAnalyzer, remap_stream
from repro.inorder import InOrderCore
from repro.isa import alu, load
from repro.memory import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.pipeline import CoreConfig, LatencyTable
from repro.workloads import ConflictPattern

PAGE = 4096
DM_CACHE = CacheConfig(size=32 * 1024, assoc=1, line_size=32)


def make_core(informing=None):
    hierarchy = MemoryHierarchy(HierarchyConfig(
        l1=DM_CACHE,
        l2=CacheConfig(size=512 * 1024, assoc=4, line_size=32),
        l1_to_l2_latency=11,
        l1_to_mem_latency=50,
    ))
    config = CoreConfig(name="dm-inorder", mem_units=0,
                        mispredict_penalty=5,
                        latencies=LatencyTable(fdiv=17, fp_other=4))
    return InOrderCore(config, hierarchy, informing=informing)


def conflict_workload(n=4000):
    """Three arrays exactly one cache-size apart: classic DM thrashing."""
    pattern = ConflictPattern(base=0x100000, count=3, spacing=DM_CACHE.size,
                              sweep=4)
    trace = []
    for i in range(n):
        trace.append(load(pattern.next_address(), dest=2,
                          pc=0x100 + 4 * (i % 3)))
        for c in range(3):
            trace.append(alu(dest=3, srcs=(2 if c == 0 else 3,),
                             pc=0x200 + 4 * c))
    return trace


def main() -> None:
    trace = conflict_workload()

    counter = MissCounter(track_addresses=True)
    profile_core = make_core(informing=counter.informing_config())
    before = profile_core.run(iter(list(trace)))
    mem = profile_core.hierarchy.stats
    print(f"before: {before.cycles} cycles, "
          f"{mem.l1_misses + mem.l1_secondary_misses} L1 miss events "
          f"({100 * mem.l1_miss_rate:.0f}% of references)")

    analyzer = PageConflictAnalyzer(DM_CACHE, page_size=PAGE)
    analyzer.note_profile(counter.by_addr)
    print(f"color pressure before: {analyzer.color_pressure()}")
    remap = analyzer.build_remap(threshold=10)
    print(f"recoloring {len(remap)} hot pages: "
          + ", ".join(f"{old}->{new} (color {analyzer.color_of(new)})"
                      for old, new in sorted(remap.items())))

    after_core = make_core()
    after = after_core.run(remap_stream(iter(list(trace)), remap, PAGE))
    mem2 = after_core.hierarchy.stats
    print(f"after:  {after.cycles} cycles, "
          f"{mem2.l1_misses + mem2.l1_secondary_misses} L1 miss events "
          f"({100 * mem2.l1_miss_rate:.0f}% of references)")
    print(f"speedup: {before.cycles / after.cycles:.2f}x")


if __name__ == "__main__":
    main()
