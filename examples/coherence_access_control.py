"""Fine-grained access control for shared memory — the §4.3 case study.

Reproduces Figure 4 on the Table 2 machine (16 processors, 900-cycle
messages): the informing-operation implementation against the
reference-checking (Blizzard-S-like) and ECC-fault (Blizzard-E-like)
methods, over six synthetic parallel kernels, followed by the §4.3.2
sensitivity observation (network latency and L1 size sweeps).

Run:  python examples/coherence_access_control.py
"""

from repro.harness.coherence_exp import figure4, render_figure4, sensitivity


def main() -> None:
    result = figure4()
    print(render_figure4(result))
    assert all(row.reference_checking >= 1.0 and row.ecc >= 1.0
               for row in result.rows), "informing lost on some kernel"

    print("\nSensitivity (§4.3.2): higher ratios = informing relatively "
          "better")
    print(f"{'msg latency':>12} {'L1':>6} {'ref-check':>10} {'ECC':>8}")
    for point in sensitivity(workloads=["read_mostly", "mixed"]):
        print(f"{point.message_latency:>12} {point.l1_size // 1024:>5}K "
              f"{point.reference_checking:>10.3f} {point.ecc:>8.3f}")


if __name__ == "__main__":
    main()
