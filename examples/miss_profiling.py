"""Per-reference miss-rate profiling — the [HMMS95] tool of §4.1.1.

Runs the synthetic `compress` model on both Table 1 machines with the
hash-table miss handler attached, then prints the hottest static references
with their miss rates, and the profiling overhead versus an uninstrumented
run (the paper reports <25% for this tool).

Run:  python examples/miss_profiling.py
"""

from repro.apps import MissProfiler
from repro.harness import MACHINES, build_core
from repro.workloads import spec92_workload

INSTRUCTIONS = 40_000


def profile(machine_key: str) -> None:
    spec = MACHINES[machine_key]
    workload = spec92_workload("compress")

    baseline = build_core(spec)
    base_stats = baseline.run(workload.stream(INSTRUCTIONS * 2),
                              max_app_insts=INSTRUCTIONS)

    profiler = MissProfiler(table_size=1024)
    core = build_core(spec, informing=profiler.informing_config())
    stats = core.run(
        profiler.counting_stream(workload.stream(INSTRUCTIONS * 3)),
        max_app_insts=INSTRUCTIONS)

    profile_data = profiler.profile
    overhead = stats.cycles / base_stats.cycles - 1.0
    print(f"\n=== {spec.name} ===")
    print(f"profiling overhead: {overhead:+.1%}  "
          f"(paper's tool: < 25%)")
    print(f"total misses profiled: {profile_data.total_misses}, "
          f"hash collisions: {profile_data.hash_collisions}")
    print(f"{'static ref pc':>14} {'misses':>8} {'refs':>8} {'miss rate':>10}")
    for pc, misses, rate in profile_data.hottest(8):
        refs = profile_data.references.get(pc, 0)
        print(f"{hex(pc):>14} {misses:>8} {refs:>8} {rate:>10.1%}")


def main() -> None:
    for machine_key in ("ooo", "inorder"):
        profile(machine_key)


if __name__ == "__main__":
    main()
