"""Software-controlled prefetching from the miss handler (§4.1.2).

Three variants on a strided numeric kernel whose misses go to memory:

1. no prefetching (baseline);
2. adaptive: the miss handler learns each reference's stride and launches
   prefetches — overhead only exists while the code is actually missing;
3. profile-guided: a first run with the miss profiler picks the hot
   references, and a "recompiled" second run plants static prefetches.

Run:  python examples/adaptive_prefetching.py
"""

from repro.apps import AdaptivePrefetcher, MissProfiler, insert_static_prefetches
from repro.harness import R10000_SPEC, build_core
from repro.isa import alu, load

LINES = 900
COMPUTE_PER_REF = 22  # keeps memory bandwidth off the critical path


def kernel():
    """A strided sweep with a dependent compute chain per element."""
    trace = []
    for i in range(LINES):
        trace.append(load(0x200000 + 64 * i, dest=2, pc=0x1000))
        for c in range(COMPUTE_PER_REF):
            src = 2 if c == 0 else 3
            trace.append(alu(dest=3, srcs=(src,), pc=0x1010 + 4 * c))
    return trace


def main() -> None:
    trace = kernel()

    base_core = build_core(R10000_SPEC)
    base = base_core.run(list(trace))
    print(f"baseline:        {base.cycles:7d} cycles, "
          f"{base_core.hierarchy.stats.l1_misses} demand misses")

    prefetcher = AdaptivePrefetcher(degree=5)
    adaptive_core = build_core(R10000_SPEC,
                               informing=prefetcher.informing_config())
    adaptive = adaptive_core.run(list(trace))
    print(f"adaptive:        {adaptive.cycles:7d} cycles, "
          f"{adaptive_core.hierarchy.stats.l1_misses} demand misses, "
          f"{prefetcher.invocations} handler invocations, "
          f"{prefetcher.launched} prefetches "
          f"({base.cycles / adaptive.cycles:.2f}x speedup)")

    profiler = MissProfiler()
    profile_core = build_core(R10000_SPEC,
                              informing=profiler.informing_config())
    profile_core.run(profiler.counting_stream(iter(list(trace))))
    hot = {pc for pc, misses, _ in profiler.profile.hottest(4) if misses > 10}
    static_core = build_core(R10000_SPEC)
    static = static_core.run(
        insert_static_prefetches(iter(list(trace)), hot, distance_lines=6))
    print(f"profile-guided:  {static.cycles:7d} cycles, "
          f"{static_core.hierarchy.stats.l1_misses} demand misses "
          f"({base.cycles / static.cycles:.2f}x speedup, "
          f"{len(hot)} static refs instrumented)")


if __name__ == "__main__":
    main()
