"""Software context-switch-on-miss multithreading (§4.1.3).

Sweeps the switch cost (the miss handler's register save/restore work) for
2-8 memory-bound threads sharing one processor and memory hierarchy, and
compares against blocking on every miss.  The paper suggests switching only
on secondary-cache misses; both policies are shown.

Run:  python examples/multithreading.py
"""

from repro.apps import simulate_multithreading
from repro.harness import R10000_SPEC, build_hierarchy
from repro.isa import alu, load


def make_thread(tid: int, refs: int = 400, compute: int = 14):
    """Each load misses to memory, followed by real computation on the
    loaded value — latency-bound alone, bandwidth-bound only at high
    thread counts."""
    def factory():
        base = 0x1000000 * (tid + 1)
        for i in range(refs):
            yield load(base + 64 * i, dest=2, pc=0x1000 + 16 * tid)
            for c in range(compute):
                yield alu(dest=3, srcs=(2 if c == 0 else 3,),
                          pc=0x1004 + 4 * c)
    return factory


def run(threads: int, switch_on_miss: bool, switch_cost: int,
        secondary_only: bool = True):
    return simulate_multithreading(
        [make_thread(t) for t in range(threads)],
        build_hierarchy(R10000_SPEC),
        switch_cost=switch_cost,
        switch_on_miss=switch_on_miss,
        secondary_only=secondary_only,
    )


def main() -> None:
    print(f"{'threads':>8} {'policy':<22} {'switch cost':>11} "
          f"{'IPC':>6} {'switches':>9}")
    for threads in (1, 2, 4, 8):
        blocking = run(threads, switch_on_miss=False, switch_cost=0)
        print(f"{threads:>8} {'block on miss':<22} {'-':>11} "
              f"{blocking.ipc:>6.3f} {blocking.switches:>9}")
        for cost in (16, 48, 128):
            switching = run(threads, switch_on_miss=True, switch_cost=cost)
            print(f"{threads:>8} {'switch (L2 miss only)':<22} {cost:>11} "
                  f"{switching.ipc:>6.3f} {switching.switches:>9}")
    print("\nSwitching pays once several threads can cover each other's"
          " memory latency, and stops paying as the handler grows —"
          " the trade-off §4.1.3 describes.")


if __name__ == "__main__":
    main()
