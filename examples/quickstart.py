"""Quickstart: run a real (tiny) program on the R10000-like core and count
its cache misses with an informing memory operation.

The program is written in the package's mini assembly, executed
functionally to produce a dynamic trace, and then simulated cycle by cycle
with a one-instruction miss handler attached through the MHAR — the
low-overhead cache-miss-trap mechanism of Section 2.2.

Run:  python examples/quickstart.py
"""

from repro.apps import MissCounter
from repro.harness import R10000_SPEC, build_core
from repro.isa import Interpreter, assemble

# A strided sum over a 16KB array: every 32-byte line is touched once, so
# we expect one miss per line (16KB / 32B = 512) on a cold cache.
PROGRAM = """
        li   r1, 0x100000     # array base
        li   r2, 0            # index (bytes)
        li   r3, 16384        # array size
        li   r4, 0            # accumulator
loop:
        add  r5, r1, r2
        ld   r6, 0(r5)        # the informing load
        add  r4, r4, r6
        addi r2, r2, 4
        blt  r2, r3, loop
        halt
"""


def main() -> None:
    program = assemble(PROGRAM)
    trace = Interpreter(program).trace(max_insts=100_000)
    print(f"program executed {len(trace)} dynamic instructions")

    counter = MissCounter()
    core = build_core(R10000_SPEC, informing=counter.informing_config())
    stats = core.run(iter(trace))

    mem = core.hierarchy.stats
    print(f"cycles:                 {stats.cycles}")
    print(f"IPC:                    {stats.ipc:.2f}")
    print(f"application insts:      {stats.app_instructions}")
    print(f"handler insts:          {stats.handler_instructions}")
    print(f"L1 misses (hardware):   {mem.l1_misses}")
    print(f"misses seen by handler: {counter.misses}")
    assert counter.misses == mem.l1_misses, "informing missed a line fetch!"
    print("every line fetch invoked the miss handler — "
          "software observed its own memory behaviour.")


if __name__ == "__main__":
    main()
