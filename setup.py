from setuptools import setup

# All metadata — including the numpy runtime dependency that backs the
# repro.vec simulation backend — lives in pyproject.toml; this shim
# keeps legacy `pip install -e .` flows on older pips working.
setup()
