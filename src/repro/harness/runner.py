"""Experiment runners for the paper's figures and quoted results.

Each function regenerates one artifact:

* :func:`figure2` — normalized execution time with 1/10-instruction generic
  miss handlers (single and unique) over the thirteen Figure 2 benchmarks.
* :func:`figure3` — the su2cor blow-up (Figure 3).
* :func:`handler100` — 100-instruction handlers (§4.2.2 text: compress ~6x,
  su2cor ~7x, ora ~2%).
* :func:`branch_vs_exception` — branch-like vs exception-like trap handling
  on the out-of-order machine (§4.2.2: +9% / +7% on compress).
* :func:`cc_vs_trap` — the condition-code check and the set-MHAR-per-
  reference trap cost about the same (§2.3).

Results are plain dataclasses; :mod:`repro.harness.report` renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import (
    GenericHandler,
    InformingConfig,
    Mechanism,
    TrapStyle,
    add_cc_checks,
    add_mhar_sets,
)
from repro.harness.configs import MACHINES, MachineSpec, build_core
from repro.workloads import FIGURE2_BENCHMARKS, spec92_workload

#: Default run sizes: measured application instructions and warm-up.
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP = 15_000


@dataclass(frozen=True)
class BarConfig:
    """One bar of a figure: an informing configuration with a label."""

    label: str
    informing: Optional[InformingConfig]
    per_ref_instrumentation: Optional[str] = None  # None | "mhar" | "cc"

    @property
    def is_baseline(self) -> bool:
        return self.informing is None


def bar_config(label: str) -> BarConfig:
    """Build a BarConfig from a short label.

    Labels: ``N`` (baseline); ``S<n>``/``U<n>`` — single/unique trap handler
    of n instructions; ``CC<n>`` — condition-code scheme with n-instruction
    per-reference handlers; ``E<n>`` — exception-style single trap handler.

    Raises:
        ValueError: for any malformed label (unknown prefix, or a missing /
            non-decimal handler length, e.g. ``"S"`` or ``"Ux"``).
    """
    if label == "N":
        return BarConfig("N", None)
    if label.startswith("CC"):
        kind, digits = "CC", label[2:]
    else:
        kind, digits = label[:1], label[1:]
    if kind not in ("S", "U", "E", "CC") or not digits.isdigit():
        raise ValueError(
            f"unknown bar label {label!r}: expected 'N', 'S<n>', 'U<n>', "
            f"'E<n>' or 'CC<n>' with a decimal handler length")
    n = int(digits)
    if kind == "CC":
        return BarConfig(label, InformingConfig(
            mechanism=Mechanism.CONDITION_CODE,
            handler=GenericHandler(n, unique=True)), "cc")
    if kind == "S":
        return BarConfig(label, InformingConfig(
            mechanism=Mechanism.TRAP, handler=GenericHandler(n)))
    if kind == "U":
        return BarConfig(label, InformingConfig(
            mechanism=Mechanism.TRAP, handler=GenericHandler(n, unique=True),
            unique_handlers=True), "mhar")
    return BarConfig(label, InformingConfig(
        mechanism=Mechanism.TRAP, trap_style=TrapStyle.EXCEPTION_LIKE,
        handler=GenericHandler(n)))


@dataclass
class BarResult:
    """Measured outcome of one (benchmark, machine, bar) run."""

    benchmark: str
    machine: str
    label: str
    cycles: int
    busy: float
    cache_stall: float
    other_stall: float
    app_instructions: int
    handler_instructions: int
    handler_invocations: int
    l1_miss_rate: float
    normalized: float = 0.0  # filled against the N bar

    @property
    def instructions(self) -> int:
        return self.app_instructions + self.handler_instructions


def run_bar(
    benchmark: str,
    machine_key: str,
    bar: BarConfig,
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    sanitize: Optional[bool] = None,
    observe=None,
    trace_dir: Optional[str] = None,
    backend: Optional[str] = None,
    policy: str = "lru",
) -> BarResult:
    """Run one benchmark/machine/bar combination from scratch.

    ``seed`` is a workload seed offset (see
    :func:`repro.workloads.spec92.spec92_workload`); 0 keeps the default
    seed path untouched.  ``sanitize`` attaches a
    :class:`repro.sanitize.Sanitizer` (runtime invariant checking) to the
    core; None defers to the ``REPRO_SANITIZE`` environment variable —
    which is how the ``--sanitize`` CLI flag reaches pool workers.

    ``observe`` attaches a :class:`repro.obs.Observer` (event tracing and
    metrics): pass an Observer to keep, True/False to force one on/off,
    or None to defer to ``REPRO_OBS`` / ``REPRO_OBS_DIR`` — which is how
    ``--trace-events`` reaches pool workers.  When a trace directory is
    configured (*trace_dir* or ``REPRO_OBS_DIR``), the run writes
    ``<benchmark>_<machine>_<label>.events.jsonl`` and
    ``*.metrics.json`` there; the returned BarResult is bit-exact with
    an unobserved run either way.

    ``backend`` selects the simulation backend (see :mod:`repro.vec`):
    ``"interp"`` (object interpreters), ``"vec"`` (flat decoded-stream
    replay, digit-exact with interp), or None to defer to
    ``REPRO_BACKEND`` — the route the ``--backend`` CLI flag and pool
    workers share.  The vec backend has no sanitizer/observer hooks and
    no Python-callback handler support, so those runs (and unsupported
    bars) transparently use interp; results are identical either way.

    ``policy`` selects the L1/L2 replacement policy by registry name
    (:mod:`repro.memory.replacement`); ``"lru"`` is the paper's default.
    Stateful policies (plru/rrip/brrip) are outside the flat vec kernels'
    inline recency model, so those runs fall back to interp (the result
    is the same; the telemetry records the effective backend).  The
    random policy's LCG seed derives from the workload *seed* via
    :func:`repro.memory.derive_seed` — seed 0 keeps the historical
    constant, so existing captures stay digit-exact.
    """
    from repro.memory import derive_seed
    from repro.obs import Observer, maybe_observer, obs_trace_dir
    from repro.sanitize import maybe_sanitizer
    from repro.trace import ambient
    from repro.vec import resolve_backend, vec_supports

    # repro.trace: nest decode/replay spans under the ambient job span
    # when this cell's run is sampled.  tracer is None on the untraced
    # path — every guard below is a single identity test, preserving the
    # hot-path numbers the perf gate pins.
    tracer, parent_span = ambient()
    san = maybe_sanitizer(sanitize)
    if isinstance(observe, Observer):
        obs: Optional[Observer] = observe
    else:
        obs = maybe_observer(observe)
    if (resolve_backend(backend) == "vec" and san is None and obs is None
            and vec_supports(bar, policy)):
        from repro.vec import run_bar_vec

        if tracer is None:
            return run_bar_vec(benchmark, machine_key, bar, instructions,
                               warmup, seed=seed, policy=policy)
        with tracer.span("replay", parent=parent_span, backend="vec",
                         benchmark=benchmark, machine=machine_key,
                         label=bar.label):
            return run_bar_vec(benchmark, machine_key, bar, instructions,
                               warmup, seed=seed, policy=policy)
    spec = MACHINES[machine_key]
    core = build_core(spec, informing=bar.informing,
                      replacement_policy=policy,
                      replacement_seed=derive_seed(seed))
    if san is not None:
        san.attach(core)
    if obs is not None:
        obs.attach(core)
    decode_span = (tracer.start_span("stream.decode", parent=parent_span,
                                     benchmark=benchmark)
                   if tracer is not None else None)
    workload = spec92_workload(benchmark, seed_offset=seed)
    # Generous stream bound: instrumentation and replay never exhaust it.
    stream = workload.stream(8 * (instructions + warmup) + 100_000)
    if bar.per_ref_instrumentation == "mhar":
        stream = add_mhar_sets(stream)
    elif bar.per_ref_instrumentation == "cc":
        stream = add_cc_checks(stream)
    if decode_span is not None:
        decode_span.finish()
    replay_span = (tracer.start_span("replay", parent=parent_span,
                                     backend="interp", benchmark=benchmark,
                                     machine=machine_key, label=bar.label,
                                     warmup=warmup, instructions=instructions)
                   if tracer is not None else None)
    stats = core.run(stream, max_app_insts=instructions + warmup,
                     warmup_insts=warmup)
    if replay_span is not None:
        replay_span.set_attr("cycles", stats.cycles)
        replay_span.finish()
    if obs is not None:
        directory = trace_dir or obs_trace_dir()
        if directory:
            from repro.obs import write_run_artifacts

            if tracer is not None and parent_span is not None and obs.events:
                # Join the obs event stream to the trace: every cycle-
                # stamped event carries the job span it happened under.
                span_id = parent_span.span_id
                for event in obs.events:
                    event["span"] = span_id
            export_span = (tracer.start_span("obs.export",
                                             parent=parent_span)
                           if tracer is not None else None)
            write_run_artifacts(
                obs, directory, f"{benchmark}_{machine_key}_{bar.label}")
            if export_span is not None:
                export_span.finish()
    breakdown = stats.breakdown()
    return BarResult(
        benchmark=benchmark,
        machine=machine_key,
        label=bar.label,
        cycles=stats.cycles,
        busy=breakdown["busy"],
        cache_stall=breakdown["cache_stall"],
        other_stall=breakdown["other_stall"],
        app_instructions=stats.app_instructions,
        handler_instructions=stats.handler_instructions,
        handler_invocations=stats.handler_invocations,
        l1_miss_rate=core.hierarchy.stats.l1_miss_rate,
    )


@dataclass
class FigureResult:
    """All bars of one figure, normalized per (benchmark, machine)."""

    name: str
    bars: List[BarResult] = field(default_factory=list)

    def normalize(self) -> None:
        baselines: Dict[tuple, int] = {}
        for bar in self.bars:
            if bar.label == "N":
                baselines[(bar.benchmark, bar.machine)] = bar.cycles
        for bar in self.bars:
            base = baselines.get((bar.benchmark, bar.machine))
            if base:
                bar.normalized = bar.cycles / base

    def get(self, benchmark: str, machine: str, label: str) -> BarResult:
        for bar in self.bars:
            if (bar.benchmark == benchmark and bar.machine == machine
                    and bar.label == label):
                return bar
        raise KeyError((benchmark, machine, label))


def run_figure(
    name: str,
    benchmarks: Iterable[str],
    machines: Sequence[str],
    labels: Sequence[str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    engine=None,
    policy: str = "lru",
) -> FigureResult:
    """Run a full bars × benchmarks × machines grid and normalize.

    The grid is enumerated as :class:`repro.exec.SimJob` cells and
    submitted through a :class:`repro.exec.JobRunner` — *engine* if given
    (the CLI wires one up from ``--jobs/--no-cache/--trace``), otherwise
    a fresh serial, cache-less runner whose behaviour matches the
    historical inline loop exactly.  *policy* applies one replacement
    policy to every cell (``--policy`` on the CLI).
    """
    from repro.exec import ExecOptions, JobRunner, SimJob, bar_result_from_dict

    if engine is None:
        engine = JobRunner(ExecOptions(jobs=1, cache=False))
    jobs = [
        SimJob.bar(benchmark=benchmark, machine=machine, label=label,
                   instructions=instructions, warmup=warmup, seed=seed,
                   policy=policy)
        for benchmark in benchmarks
        for machine in machines
        for label in labels
    ]
    result = FigureResult(name=name)
    result.bars = [bar_result_from_dict(row) for row in engine.run(jobs)]
    result.normalize()
    return result


def figure2(instructions: int = DEFAULT_INSTRUCTIONS,
            warmup: int = DEFAULT_WARMUP,
            benchmarks: Optional[Sequence[str]] = None,
            seed: int = 0, engine=None, policy: str = "lru") -> FigureResult:
    """Figure 2: N/S1/U1/S10/U10 on both machines, thirteen benchmarks."""
    return run_figure(
        "figure2", benchmarks or FIGURE2_BENCHMARKS, ["ooo", "inorder"],
        ["N", "S1", "U1", "S10", "U10"], instructions, warmup,
        seed=seed, engine=engine, policy=policy)


def figure3(instructions: int = DEFAULT_INSTRUCTIONS,
            warmup: int = DEFAULT_WARMUP,
            seed: int = 0, engine=None, policy: str = "lru") -> FigureResult:
    """Figure 3: su2cor, which needs its own y-axis."""
    return run_figure("figure3", ["su2cor"], ["ooo", "inorder"],
                      ["N", "S1", "U1", "S10", "U10"], instructions, warmup,
                      seed=seed, engine=engine, policy=policy)


def handler100(instructions: int = DEFAULT_INSTRUCTIONS,
               warmup: int = DEFAULT_WARMUP,
               benchmarks: Sequence[str] = ("compress", "su2cor", "ora"),
               seed: int = 0, engine=None,
               policy: str = "lru") -> FigureResult:
    """§4.2.2: 100-instruction handlers on the miss-heavy and miss-free ends.

    The paper reports these for the in-order model: compress ~6x slower,
    su2cor ~7x slower, ora ~2% overhead.
    """
    return run_figure("handler100", benchmarks, ["inorder"],
                      ["N", "S100"], instructions, warmup,
                      seed=seed, engine=engine, policy=policy)


def branch_vs_exception(instructions: int = DEFAULT_INSTRUCTIONS,
                        warmup: int = DEFAULT_WARMUP,
                        benchmark: str = "compress",
                        seed: int = 0, engine=None,
                        policy: str = "lru") -> FigureResult:
    """§4.2.2/§3.2: exception-style traps cost ~7-9% extra on compress."""
    return run_figure("branch_vs_exception", [benchmark], ["ooo"],
                      ["N", "S1", "E1", "S10", "E10"], instructions, warmup,
                      seed=seed, engine=engine, policy=policy)


def cc_vs_trap(instructions: int = DEFAULT_INSTRUCTIONS,
               warmup: int = DEFAULT_WARMUP,
               benchmark: str = "compress",
               seed: int = 0, engine=None,
               policy: str = "lru") -> FigureResult:
    """§2.3: the CC check and set-MHAR-per-reference cost about the same."""
    return run_figure("cc_vs_trap", [benchmark], ["ooo", "inorder"],
                      ["N", "CC1", "U1"], instructions, warmup,
                      seed=seed, engine=engine, policy=policy)
