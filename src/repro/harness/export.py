"""Serialise experiment results to JSON/CSV for external analysis.

Every runner result in :mod:`repro.harness.runner` and
:mod:`repro.harness.coherence_exp` can be exported; files round-trip
through :func:`load_figure` so experiments can be archived and re-rendered
without re-simulating.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List

from repro.harness.coherence_exp import Figure4Result, SensitivityPoint
from repro.harness.runner import BarResult, FigureResult

_BAR_FIELDS = [
    "benchmark", "machine", "label", "cycles", "normalized", "busy",
    "cache_stall", "other_stall", "app_instructions",
    "handler_instructions", "handler_invocations", "l1_miss_rate",
]


def figure_to_dict(result: FigureResult) -> dict:
    return {
        "name": result.name,
        "bars": [
            {field: getattr(bar, field) for field in _BAR_FIELDS}
            for bar in result.bars
        ],
    }


def figure_to_json(result: FigureResult, indent: int = 2) -> str:
    return json.dumps(figure_to_dict(result), indent=indent)


def load_figure(text: str) -> FigureResult:
    """Rebuild a FigureResult from :func:`figure_to_json` output."""
    data = json.loads(text)
    result = FigureResult(name=data["name"])
    for row in data["bars"]:
        extra = {k: v for k, v in row.items() if k != "normalized"}
        bar = BarResult(**extra)
        bar.normalized = row.get("normalized", 0.0)
        result.bars.append(bar)
    return result


def figure_to_csv(result: FigureResult) -> str:
    output = io.StringIO()
    writer = csv.DictWriter(output, fieldnames=_BAR_FIELDS)
    writer.writeheader()
    for bar in result.bars:
        writer.writerow({field: getattr(bar, field) for field in _BAR_FIELDS})
    return output.getvalue()


def figure4_to_dict(result: Figure4Result) -> dict:
    return {
        "rows": [
            {
                "workload": row.workload,
                "informing_cycles": row.informing_cycles,
                "reference_checking": row.reference_checking,
                "ecc": row.ecc,
            }
            for row in result.rows
        ],
        "mean_reference_checking": result.mean_reference_checking,
        "mean_ecc": result.mean_ecc,
    }


def figure4_to_json(result: Figure4Result, indent: int = 2) -> str:
    return json.dumps(figure4_to_dict(result), indent=indent)


def sensitivity_to_csv(points: List[SensitivityPoint]) -> str:
    output = io.StringIO()
    writer = csv.writer(output)
    writer.writerow(["message_latency", "l1_size", "reference_checking",
                     "ecc"])
    for point in points:
        writer.writerow([point.message_latency, point.l1_size,
                         point.reference_checking, point.ecc])
    return output.getvalue()


def sensitivity_to_json(points: List[SensitivityPoint],
                        indent: int = 2) -> str:
    return json.dumps({"points": [
        {
            "message_latency": point.message_latency,
            "l1_size": point.l1_size,
            "reference_checking": point.reference_checking,
            "ecc": point.ecc,
        }
        for point in points
    ]}, indent=indent)


def table1_to_json(indent: int = 2) -> str:
    """The Table 1 machine parameters as structured JSON."""
    from dataclasses import asdict

    from repro.harness.configs import MACHINES

    return json.dumps(
        {key: asdict(spec) for key, spec in MACHINES.items()},
        indent=indent)


def table2_to_json(indent: int = 2) -> str:
    """The Table 2 coherence machine and method costs as JSON."""
    from dataclasses import asdict

    from repro.coherence import METHOD_COSTS, TABLE2_MACHINE

    return json.dumps({
        "machine": asdict(TABLE2_MACHINE),
        "method_costs": {method.name: asdict(costs)
                         for method, costs in METHOD_COSTS.items()},
    }, indent=indent)


def profile_to_dict(profile) -> dict:
    """One :class:`repro.workloads.characterize.WorkloadProfile` as a dict."""
    return {
        "instructions": profile.instructions,
        "mix": dict(sorted(profile.mix.items())),
        "mem_fraction": profile.mem_fraction,
        "store_fraction": profile.store_fraction,
        "branch_fraction": profile.branch_fraction,
        "mean_branch_predictability": profile.mean_branch_predictability,
        "static_insts": len(profile.static_pcs),
        "static_refs": len(profile.static_ref_pcs),
        "footprint_bytes": profile.footprint_bytes,
        "line_reuse": profile.line_reuse,
    }


def profiles_to_json(profiles: dict, indent: int = 2) -> str:
    """``characterize`` results ({name: WorkloadProfile}) as JSON."""
    return json.dumps(
        {name: profile_to_dict(profile)
         for name, profile in profiles.items()},
        indent=indent)
