"""Runners for the §4.3 coherence experiments (Figure 4 and sensitivity)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.coherence import AccessControlMethod, CoherenceMachineParams
from repro.workloads.parallel import PARALLEL_KERNELS


@dataclass
class Figure4Row:
    """Normalized execution times of the three methods for one application
    (informing = 1.0, the paper's presentation)."""

    workload: str
    informing_cycles: int
    reference_checking: float
    ecc: float

    @property
    def informing_wins(self) -> bool:
        return self.reference_checking > 1.0 and self.ecc > 1.0


@dataclass
class Figure4Result:
    rows: List[Figure4Row] = field(default_factory=list)

    @property
    def mean_reference_checking(self) -> float:
        return sum(r.reference_checking for r in self.rows) / len(self.rows)

    @property
    def mean_ecc(self) -> float:
        return sum(r.ecc for r in self.rows) / len(self.rows)


def figure4(
    machine: Optional[CoherenceMachineParams] = None,
    workloads: Optional[Sequence[str]] = None,
    engine=None,
) -> Figure4Result:
    """Figure 4: all three access-control methods over the parallel apps.

    The workload × method grid goes through a :class:`repro.exec.JobRunner`
    (*engine*, or a fresh serial cache-less one), like the Figure 2/3 grids.
    """
    from dataclasses import asdict

    from repro.exec import ExecOptions, JobRunner, SimJob

    machine = machine or CoherenceMachineParams()
    names = list(workloads) if workloads else list(PARALLEL_KERNELS)
    if engine is None:
        engine = JobRunner(ExecOptions(jobs=1, cache=False))
    methods = list(AccessControlMethod)
    jobs = [
        SimJob.access_control(workload=name, method=method.name,
                              machine_params=asdict(machine))
        for name in names
        for method in methods
    ]
    rows = engine.run(jobs)
    result = Figure4Result()
    for i, name in enumerate(names):
        times: Dict[AccessControlMethod, int] = {
            method: rows[i * len(methods) + j]["execution_time"]
            for j, method in enumerate(methods)
        }
        informing = times[AccessControlMethod.INFORMING]
        result.rows.append(Figure4Row(
            workload=name,
            informing_cycles=informing,
            reference_checking=(
                times[AccessControlMethod.REFERENCE_CHECKING] / informing),
            ecc=times[AccessControlMethod.ECC] / informing,
        ))
    return result


@dataclass
class SensitivityPoint:
    """Method ratios at one (message_latency, l1_size) machine point."""

    message_latency: int
    l1_size: int
    reference_checking: float
    ecc: float


def sensitivity(
    workloads: Optional[Sequence[str]] = None,
    message_latencies: Sequence[int] = (300, 900, 1800),
    l1_sizes: Sequence[int] = (8 * 1024, 16 * 1024, 64 * 1024),
    engine=None,
) -> List[SensitivityPoint]:
    """§4.3.2's closing observation: smaller network latencies or larger
    primary caches improve informing's *relative* performance.

    Sweeps one axis at a time around the Table 2 baseline and reports the
    mean comparator-to-informing ratios at each point.
    """
    points: List[SensitivityPoint] = []
    base = CoherenceMachineParams()
    for latency in message_latencies:
        machine = replace(base, message_latency=latency)
        fig = figure4(machine, workloads, engine=engine)
        points.append(SensitivityPoint(
            latency, machine.l1_size,
            fig.mean_reference_checking, fig.mean_ecc))
    for l1_size in l1_sizes:
        if l1_size == base.l1_size:
            continue
        machine = replace(base, l1_size=l1_size)
        fig = figure4(machine, workloads, engine=engine)
        points.append(SensitivityPoint(
            machine.message_latency, l1_size,
            fig.mean_reference_checking, fig.mean_ecc))
    return points


def render_figure4(result: Figure4Result) -> str:
    lines = ["Figure 4 — normalized execution time (informing = 1.00)",
             f"{'application':<20} {'informing':>10} {'ref-check':>10} {'ECC':>8}"]
    for row in result.rows:
        lines.append(f"{row.workload:<20} {1.0:>10.2f} "
                     f"{row.reference_checking:>10.2f} {row.ecc:>8.2f}")
    lines.append(f"{'mean':<20} {1.0:>10.2f} "
                 f"{result.mean_reference_checking:>10.2f} "
                 f"{result.mean_ecc:>8.2f}")
    lines.append("(paper: informing 24% faster than reference checking, "
                 "18% faster than ECC on average)")
    return "\n".join(lines)
