"""``harness explain``: why did this run behave the way it did?

Post-mortem analysis of one cell's :mod:`repro.obs` event trace
(``*.events.jsonl``), answering the questions the aggregate counters
cannot: *how re-usable* was the access stream (reuse-distance
histogram), *how much of the cache was wasted* (dead-block rate — lines
filled and evicted without a single hit), *where the conflicts landed*
(set-pressure top-K) and *what the informing handlers cost* (trap
accounting).  A closing diagnosis names the replacement mechanism the
numbers implicate, which is how the ``bench replacement`` ablation's
winners are explained rather than just tabulated.

Two input forms::

    python -m repro.harness explain traces/compress_lab_N.events.jsonl
    python -m repro.harness explain <run_id> [--cell SUBSTR]

The run-id form resolves a :mod:`repro.perf` manifest and analyzes every
cell that recorded a trace path (runs made with ``--trace-events DIR``).
``--json`` emits the analysis dict instead of text.  Corrupt, empty or
trace-less inputs exit 2 with a message on stderr — an explain that has
nothing to explain must say so loudly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Reuse-distance histogram bucket labels, in reporting order.
REUSE_BUCKETS = ("0", "1", "2-3", "4-7", "8-15", "16-31", "32+", "cold")

#: Event kinds that constitute the demand-access sequence.
_ACCESS_KINDS = ("l1.hit", "l1.miss", "l1.merge")


def _bucket(distance: Optional[int]) -> str:
    if distance is None:
        return "cold"
    for hi, label in ((0, "0"), (1, "1"), (3, "2-3"), (7, "4-7"),
                      (15, "8-15"), (31, "16-31")):
        if distance <= hi:
            return label
    return "32+"


def reuse_distance_histogram(events: Iterable[Dict[str, Any]]
                             ) -> Dict[str, int]:
    """LRU stack-distance histogram of the demand line-address stream.

    Distance = number of *distinct* lines touched since the last access
    to this line (0 = immediate re-reference); first touches count as
    ``cold``.  Computed over hits, misses and merges alike — it is a
    property of the access stream, not of any particular cache.
    """
    histogram = {label: 0 for label in REUSE_BUCKETS}
    stack: List[int] = []  # front = most recently used
    for event in events:
        if event.get("kind") not in _ACCESS_KINDS:
            continue
        line = event.get("line")
        if line is None:
            continue
        try:
            distance: Optional[int] = stack.index(line)
        except ValueError:
            distance = None
        else:
            del stack[distance]
        stack.insert(0, line)
        histogram[_bucket(distance)] += 1
    return histogram


def dead_block_stats(events: Iterable[Dict[str, Any]],
                     cache: str = "L1D") -> Dict[str, Any]:
    """Dead-block accounting for one tag store.

    A block is *dead* when it is filled and then evicted without a
    single demand hit in between — pure pollution.  Returns eviction
    and dead counts, the dead rate, and how many filled lines were
    still live (un-evicted) when the trace ended.
    """
    live: Dict[int, bool] = {}  # line -> saw a hit since its fill
    evictions = 0
    dead = 0
    for event in events:
        kind = event.get("kind")
        if kind == "cache.fill" and event.get("cache") == cache:
            live[event["line"]] = False
        elif kind in ("l1.hit", "l1.merge"):
            line = event.get("line")
            if line in live:
                live[line] = True
        elif kind == "cache.evict" and event.get("cache") == cache:
            line = event["line"]
            evictions += 1
            if not live.pop(line, True):
                dead += 1
    return {
        "evictions": evictions,
        "dead": dead,
        "dead_rate": round(dead / evictions, 4) if evictions else 0.0,
        "live_at_end": len(live),
    }


def set_pressure(events: Iterable[Dict[str, Any]], cache: str = "L1D",
                 top: int = 8) -> List[Dict[str, Any]]:
    """Top-K sets by eviction count for one tag store."""
    heat: Dict[int, int] = {}
    total = 0
    for event in events:
        if (event.get("kind") == "cache.evict"
                and event.get("cache") == cache):
            heat[event["set"]] = heat.get(event["set"], 0) + 1
            total += 1
    ranked = sorted(heat.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    return [{"set": index, "evictions": count,
             "share": round(count / total, 4) if total else 0.0}
            for index, count in ranked]


def trap_accounting(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Informing-trap totals: fires, returns, handler instructions."""
    fires = 0
    injected = 0
    returns = 0
    committed = 0
    for event in events:
        kind = event.get("kind")
        if kind == "trap.fire":
            fires += 1
            injected += event.get("handler_len", 0)
        elif kind == "trap.return":
            returns += 1
            committed += event.get("committed", 0)
    return {
        "fires": fires,
        "returns": returns,
        "handler_instructions_injected": injected,
        "handler_instructions_committed": committed,
        "mean_handler_len": round(injected / fires, 2) if fires else 0.0,
    }


def diagnose(analysis: Dict[str, Any]) -> str:
    """Name the replacement mechanism the trace implicates.

    Heuristic, deliberately plain-spoken: it reads the reuse-distance
    mass and the dead-block rate and says which policy family the
    stream rewards — the sentence ``bench replacement`` cites when its
    ablation cells differ.
    """
    histogram = analysis["reuse_distance"]
    total = sum(histogram.values()) or 1
    near = sum(histogram[b] for b in ("0", "1", "2-3", "4-7")) / total
    far = (histogram["32+"] + histogram["cold"]) / total
    blocks = analysis["dead_blocks"]
    dead = blocks["dead_rate"]
    if dead >= 0.15 and blocks["evictions"] >= 32:
        return (f"polluting fills: {100 * dead:.0f}% of evicted L1 lines "
                "died without a single hit — scan-resistant insertion "
                "(rrip/brrip) or fill bypass ages these dead-on-arrival "
                "lines out first, where strict recency (lru/plru) makes "
                "room for them by evicting live lines")
    if far >= 0.5:
        return (f"capacity-bound reuse: {100 * far:.0f}% of accesses "
                "re-reference beyond stack distance 31 yet fills do get "
                f"used ({100 * dead:.0f}% dead) — full recency order "
                "(lru) protects the oldest still-live lines; distant "
                "insertion (rrip/brrip) risks evicting a line before its "
                "first reuse")
    if near >= 0.6:
        return (f"recency-friendly: {100 * near:.0f}% of accesses "
                "re-reference within stack distance 7 — any "
                "recency-respecting policy (lru, tree-plru) keeps them; "
                "expect small deltas from the rest of the registry")
    return ("mixed reuse: no single mechanism dominates — expect small "
            "deltas between replacement policies on this stream")


def analyze_trace(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Full explain analysis of one event list (see module docstring)."""
    accesses = {kind: 0 for kind in _ACCESS_KINDS}
    for event in events:
        kind = event.get("kind")
        if kind in accesses:
            accesses[kind] += 1
    analysis: Dict[str, Any] = {
        "events": len(events),
        "accesses": accesses,
        "reuse_distance": reuse_distance_histogram(events),
        "dead_blocks": dead_block_stats(events),
        "set_pressure": set_pressure(events),
        "traps": trap_accounting(events),
    }
    analysis["diagnosis"] = diagnose(analysis)
    return analysis


def render_analysis(source: str, analysis: Dict[str, Any]) -> str:
    """ASCII report for one analyzed trace."""
    accesses = analysis["accesses"]
    histogram = analysis["reuse_distance"]
    dead = analysis["dead_blocks"]
    traps = analysis["traps"]
    lines = [
        f"explain — {source}",
        f"  events          {analysis['events']}",
        f"  accesses        {sum(accesses.values())} "
        f"({accesses['l1.hit']} hits, {accesses['l1.miss']} misses, "
        f"{accesses['l1.merge']} merges)",
        "  reuse distance  " + "  ".join(
            f"{label}:{histogram[label]}" for label in REUSE_BUCKETS),
        f"  dead blocks     {dead['dead']}/{dead['evictions']} evictions "
        f"dead ({100 * dead['dead_rate']:.1f}%), "
        f"{dead['live_at_end']} live at end",
    ]
    if analysis["set_pressure"]:
        pressure = ", ".join(
            f"{row['set']} ({100 * row['share']:.0f}%)"
            for row in analysis["set_pressure"][:5])
        lines.append(f"  set pressure    hottest L1 sets: {pressure}")
    else:
        lines.append("  set pressure    no L1 evictions in trace")
    lines.append(
        f"  traps           {traps['fires']} fires, mean handler "
        f"{traps['mean_handler_len']}, "
        f"{traps['handler_instructions_committed']} handler insts "
        "committed")
    lines.append(f"  diagnosis       {analysis['diagnosis']}")
    return "\n".join(lines)


def _load_trace(path: str) -> Tuple[Optional[List[Dict[str, Any]]],
                                    Optional[str]]:
    """Load one events.jsonl strictly; return (events, error)."""
    from repro.obs.export import read_jsonl

    try:
        events = read_jsonl(path, strict=True)
    except OSError as exc:
        return None, f"cannot read trace {path}: {exc}"
    except ValueError as exc:
        return None, f"corrupt trace: {exc}"
    if not events:
        return None, f"empty trace: {path} contains no events"
    return events, None


def _resolve_traces(ref: str, manifest_root: Optional[str],
                    cell_filter: Optional[str]
                    ) -> Tuple[List[Tuple[str, str]], Optional[str]]:
    """Resolve *ref* to [(source_label, trace_path)]; or an error."""
    from repro.perf.manifest import ManifestError, load_manifest

    if os.path.isfile(ref) and not ref.endswith("manifest.json"):
        return [(ref, ref)], None
    try:
        manifest = load_manifest(ref, root=manifest_root)
    except ManifestError as exc:
        if os.path.exists(ref):
            return [], str(exc)
        return [], (f"{ref!r} is neither an events.jsonl file nor a "
                    f"resolvable run id ({exc})")
    except ValueError as exc:
        return [], f"cannot parse {ref!r}: {exc}"
    pairs = []
    for cell in manifest.get("cells", []):
        trace = cell.get("trace")
        label = cell.get("label", "?")
        if not trace:
            continue
        if cell_filter and cell_filter not in label:
            continue
        pairs.append((f"{manifest['run_id']} cell {label}", trace))
    if not pairs:
        hint = (f" matching --cell {cell_filter!r}" if cell_filter else
                " (was the run made with --trace-events DIR?)")
        return [], (f"run {manifest['run_id']} has no cells with "
                    f"recorded traces{hint}")
    return pairs, None


def explain_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness explain",
        description="Explain one run cell from its repro.obs event "
                    "trace: reuse distances, dead blocks, set pressure, "
                    "trap accounting and a mechanism diagnosis.")
    parser.add_argument("ref",
                        help="an *.events.jsonl trace file, or a run id "
                             "/ manifest path from a --trace-events run")
    parser.add_argument("--cell", default=None, metavar="SUBSTR",
                        help="run-id mode: only cells whose label "
                             "contains SUBSTR")
    parser.add_argument("--manifest-dir", default=None, metavar="DIR",
                        help="manifest root (default results/runs or "
                             "REPRO_RUNS_DIR)")
    parser.add_argument("--json", action="store_true",
                        help="emit the analysis as JSON instead of text")
    args = parser.parse_args(argv)

    pairs, error = _resolve_traces(args.ref, args.manifest_dir, args.cell)
    if error:
        print(f"explain: {error}", file=sys.stderr)
        return 2
    analyses = []
    for source, path in pairs:
        events, error = _load_trace(path)
        if events is None:
            print(f"explain: {error}", file=sys.stderr)
            return 2
        analyses.append((source, analyze_trace(events)))
    if args.json:
        payload = [dict(analysis, source=source)
                   for source, analysis in analyses]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        print("\n\n".join(render_analysis(source, analysis)
                          for source, analysis in analyses))
    return 0
