"""``harness apps``: run the informing-op application experiments.

Front end for :mod:`repro.apps.experiments`.  Each experiment is one
exec-engine job (``SimJob.app``), so results are content-addressed and
cached exactly like figure cells — re-running an experiment with the
same knobs is a cache hit, and a policy sweep gets per-policy keys::

    python -m repro.harness apps miss_profile --benchmark compress
    python -m repro.harness apps all --quick --policy rrip --json out.json

``all`` runs every registered experiment for the chosen benchmark in
one engine grid.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List


def _render_result(result: Dict[str, Any]) -> str:
    """Generic key/value rendering; the hottest-pcs table gets rows."""
    name = result.get("experiment", "?")
    lines = [f"apps {name} — {result.get('benchmark')} on "
             f"{result.get('machine')} (policy {result.get('policy')})"]
    simple = {k: v for k, v in result.items()
              if k not in ("experiment", "benchmark", "machine", "policy",
                           "hottest")}
    width = max(len(k) for k in simple) if simple else 0
    for key in sorted(simple):
        lines.append(f"  {key:<{width}}  {simple[key]}")
    for row in result.get("hottest", []):
        lines.append(f"    {row['pc']:>12}  {row['misses']:>6} misses  "
                     f"{100 * row['miss_rate']:5.1f}% miss rate")
    return "\n".join(lines)


def apps_main(argv=None) -> int:
    from repro.apps.experiments import APP_EXPERIMENTS, DEFAULT_MACHINE
    from repro.harness.configs import MACHINES
    from repro.harness.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
    from repro.memory import available_policies

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness apps",
        description="Run the paper-§4.1 application experiments "
                    "(repro.apps.experiments) through the exec engine.")
    parser.add_argument("experiment",
                        choices=sorted(APP_EXPERIMENTS) + ["all"],
                        help="registered experiment, or 'all'")
    parser.add_argument("--benchmark", default="compress",
                        help="SPEC92 benchmark (default compress)")
    parser.add_argument("--machine", default=DEFAULT_MACHINE,
                        choices=sorted(MACHINES),
                        help=f"machine key (default {DEFAULT_MACHINE})")
    parser.add_argument("--policy", choices=available_policies(),
                        default="lru",
                        help="replacement policy under the experiment")
    parser.add_argument("--quick", action="store_true",
                        help="4x shorter runs")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed offset")
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="append per-job telemetry JSONL")
    parser.add_argument("--progress", action="store_true")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write results as JSON")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from repro.exec import ExecOptions, JobRunner, SimJob
    from repro.workloads import SPEC92

    if args.benchmark not in SPEC92:
        parser.error(f"unknown benchmark {args.benchmark!r}; choose from "
                     f"{sorted(SPEC92)}")
    divisor = 4 if args.quick else 1
    names = (sorted(APP_EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    jobs = [
        SimJob.app(experiment=name, benchmark=args.benchmark,
                   machine=args.machine,
                   instructions=DEFAULT_INSTRUCTIONS // divisor,
                   warmup=DEFAULT_WARMUP // divisor, seed=args.seed,
                   policy=args.policy)
        for name in names
    ]
    engine = JobRunner(ExecOptions(
        jobs=args.jobs, cache=not args.no_cache, trace_path=args.trace,
        progress=args.progress,
        run_meta={"experiment": f"apps-{args.experiment}",
                  "seed": args.seed, "policy": args.policy}))
    results: List[Dict[str, Any]] = engine.run(jobs)
    for result in results:
        if result is not None:
            print(_render_result(result))
            print()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results if len(results) > 1 else results[0], fh,
                      indent=2, sort_keys=True)
        print(f"results written to {args.json}")
    print(engine.stats.summary(), file=sys.stderr)
    return 0
