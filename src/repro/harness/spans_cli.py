"""``harness spans``: where did this request's wall time go?

Reconstructs the span tree a traced run wrote (:mod:`repro.trace`) and
answers the latency questions the manifest's aggregate walls cannot:
what the *critical path* through the request was (the chain of spans
that determined end-to-end latency, with each hop's exclusive
contribution), where each span name's *self time* went once its
children are subtracted, and which individual spans were anomalous
against their peers (> p99 of same-named spans).  When the input is a
run id, per-cell walls from the run manifest are cross-checked against
the matching ``job`` spans — a disagreement means the tree is lying or
the clock is.

Two input forms, mirroring ``harness explain``::

    python -m repro.harness spans results/runs/<run_id>/spans.jsonl
    python -m repro.harness spans <run_id> [--manifest-dir DIR]

A spans file may hold several traces (a serve gateway appends every
sampled request to its fallback file); the largest trace is analyzed
unless ``--trace-id`` picks one.  ``--check`` turns the analysis into a
CI assertion: a single connected tree, spans from at least
``--expect-processes`` distinct pids, a critical path that telescopes
exactly to the root's duration, and (with ``--wall``) a root duration
within ``--tolerance`` of an externally measured wall — exit 1 on any
violation, 2 when there is nothing to analyze.  ``--chrome`` /
``--otlp`` re-export the selected trace for chrome://tracing or an
OpenTelemetry collector.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.trace.exporters import read_spans, spans_to_chrome, spans_to_otlp

#: Minimum same-named spans before the p99 anomaly gate is applied.
MIN_ANOMALY_SAMPLES = 8


def _duration(record: Dict[str, Any]) -> float:
    start = float(record.get("start", 0.0))
    end = float(record.get("end", start))
    return max(0.0, end - start)


def resolve_spans(ref: str, manifest_root: Optional[str]
                  ) -> Tuple[Optional[str], Optional[Dict[str, Any]],
                             Optional[str]]:
    """Resolve *ref* to (spans_path, manifest-or-None) or an error.

    A path to an existing file wins; otherwise *ref* is treated as a
    run id whose manifest names the spans file (or whose run directory
    holds ``spans.jsonl``, for serve runs that appended spans after the
    manifest was written).
    """
    from repro.perf.manifest import ManifestError, load_manifest, runs_root

    if os.path.isfile(ref) and not ref.endswith("manifest.json"):
        return ref, None, None
    try:
        manifest = load_manifest(ref, root=manifest_root)
    except ManifestError as exc:
        if os.path.exists(ref):
            return None, None, str(exc)
        return None, None, (f"{ref!r} is neither a spans.jsonl file nor a "
                            f"resolvable run id ({exc})")
    except ValueError as exc:
        return None, None, f"cannot parse {ref!r}: {exc}"
    path = manifest.get("spans_path")
    if not path or not os.path.isfile(path):
        path = os.path.join(runs_root(manifest_root),
                            manifest["run_id"], "spans.jsonl")
    if not os.path.isfile(path):
        return None, None, (f"run {manifest['run_id']} has no spans.jsonl "
                            "(was it run with tracing on? see "
                            "--trace-sample / REPRO_TRACE_SAMPLE)")
    return path, manifest, None


def group_by_trace(records: List[Dict[str, Any]]
                   ) -> Dict[str, List[Dict[str, Any]]]:
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(record.get("trace_id") or "?", []).append(record)
    return groups


def build_tree(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Index one trace: span_id -> record, parent -> children, roots.

    A span whose ``parent_id`` is absent from the file is a root — that
    covers both genuinely parentless spans and spans whose parent lives
    in another process that never flushed here (a client's minted
    traceparent, say).  Children are sorted by start time.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    for record in records:
        by_id.setdefault(record["span_id"], record)
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for record in by_id.values():
        parent = record.get("parent_id")
        if parent and parent in by_id and parent != record["span_id"]:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    for kids in children.values():
        kids.sort(key=lambda r: (float(r.get("start", 0.0)), r["span_id"]))
    roots.sort(key=lambda r: (float(r.get("start", 0.0)), r["span_id"]))
    return {"by_id": by_id, "children": children, "roots": roots}


def critical_path(tree: Dict[str, Any], root: Dict[str, Any]
                  ) -> List[Dict[str, Any]]:
    """The chain that determined end-to-end latency, with exclusive time.

    Walks backwards from the root's end: at each point the span that
    *finished last* within the remaining window was holding the request
    open, so the walk descends into it, attributes the gap after it to
    the parent, and continues from where that child started.  The
    contributions partition the root's window exactly — they sum to the
    root duration — and concurrent siblings that were fully overlapped
    by the chosen child (parallel pool jobs, say) contribute nothing.
    """
    order: List[str] = []
    contrib: Dict[str, float] = {}

    def attribute(record: Dict[str, Any], amount: float) -> None:
        key = record["span_id"]
        if key not in contrib:
            contrib[key] = 0.0
            order.append(key)
        contrib[key] += amount

    def walk(record: Dict[str, Any], lo: float, hi: float) -> None:
        cursor = hi
        kids = sorted(
            tree["children"].get(record["span_id"], []),
            key=lambda r: float(r.get("end", r.get("start", 0.0))),
            reverse=True)
        for kid in kids:
            k_end = float(kid.get("end", kid.get("start", 0.0)))
            k_start = float(kid.get("start", 0.0))
            if k_end > cursor:
                continue  # overlapped by an already-chosen sibling
            if k_end <= lo:
                break
            k_lo = max(lo, k_start)
            attribute(record, cursor - k_end)
            walk(kid, k_lo, k_end)
            cursor = k_lo
            if cursor <= lo:
                break
        attribute(record, max(0.0, cursor - lo))

    start = float(root.get("start", 0.0))
    end = float(root.get("end", start))
    walk(root, start, end)
    return [{"record": tree["by_id"][span_id], "self": contrib[span_id]}
            for span_id in order]


def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    total = 0.0
    last_end = -math.inf
    for start, end in sorted(intervals):
        if end <= last_end:
            continue
        total += end - max(start, last_end)
        last_end = end
    return total


def self_times(tree: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Per span name: count, total duration, and exclusive self time.

    Self time = a span's duration minus the union of its children's
    intervals (clipped to the span), summed over every span of that
    name — the "who actually burned the wall clock" table.
    """
    table: Dict[str, Dict[str, Any]] = {}
    for record in tree["by_id"].values():
        start = float(record.get("start", 0.0))
        end = float(record.get("end", start))
        intervals = []
        for kid in tree["children"].get(record["span_id"], []):
            k_start = max(start, float(kid.get("start", 0.0)))
            k_end = min(end, float(kid.get("end", k_start)))
            if k_end > k_start:
                intervals.append((k_start, k_end))
        duration = _duration(record)
        self_time = max(0.0, duration - _interval_union(intervals))
        row = table.setdefault(record.get("name", "?"),
                               {"count": 0, "total": 0.0, "self": 0.0})
        row["count"] += 1
        row["total"] += duration
        row["self"] += self_time
    return table


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile of *values* (q in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = q * (len(ordered) - 1)
    lo = int(math.floor(index))
    hi = int(math.ceil(index))
    if lo == hi:
        return ordered[lo]
    frac = index - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def find_anomalies(records: List[Dict[str, Any]],
                   min_samples: int = MIN_ANOMALY_SAMPLES
                   ) -> List[Dict[str, Any]]:
    """Spans slower than the p99 of their same-named peers.

    Only names with at least *min_samples* spans are judged — a p99
    over three samples flags nothing but noise.
    """
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        by_name.setdefault(record.get("name", "?"), []).append(record)
    anomalies = []
    for name, group in sorted(by_name.items()):
        if len(group) < min_samples:
            continue
        durations = [_duration(r) for r in group]
        p99 = percentile(durations, 0.99)
        for record in group:
            duration = _duration(record)
            if duration > p99:
                anomalies.append({
                    "name": name,
                    "span_id": record["span_id"],
                    "pid": record.get("pid"),
                    "duration": round(duration, 6),
                    "p99": round(p99, 6),
                    "label": (record.get("attrs") or {}).get("label"),
                })
    return anomalies


def cross_check_manifest(manifest: Dict[str, Any], tree: Dict[str, Any]
                         ) -> List[Dict[str, Any]]:
    """Match manifest cell walls against their ``job`` spans.

    A job span brackets the cell's execution (plus dispatch overhead),
    so its duration must cover the manifest wall; a job span that is
    missing or *shorter* than the cell's recorded wall is flagged.
    """
    jobs_by_label: Dict[str, Dict[str, Any]] = {}
    for record in tree["by_id"].values():
        if record.get("name") == "job":
            label = (record.get("attrs") or {}).get("label")
            if label is not None and label not in jobs_by_label:
                jobs_by_label[label] = record
    rows = []
    for cell in manifest.get("cells", []):
        wall = cell.get("wall")
        if not isinstance(wall, (int, float)):
            continue
        label = cell.get("label", "?")
        span = jobs_by_label.get(label)
        span_wall = _duration(span) if span is not None else None
        # 50 ms of slack: the two walls come from clock reads on
        # different sides of the executor boundary.
        suspect = (span is None
                   or (wall > 0 and span_wall + 0.05 < wall))
        rows.append({"label": label, "manifest_wall": round(wall, 6),
                     "span_wall": (round(span_wall, 6)
                                   if span_wall is not None else None),
                     "suspect": suspect})
    return rows


def analyze(records: List[Dict[str, Any]],
            manifest: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Full analysis of one trace's span records."""
    tree = build_tree(records)
    pids = sorted({r.get("pid") for r in records if r.get("pid") is not None})
    root = tree["roots"][0] if len(tree["roots"]) == 1 else None
    path = critical_path(tree, root) if root is not None else []
    analysis = {
        "spans": len(tree["by_id"]),
        "processes": pids,
        "roots": [r["span_id"] for r in tree["roots"]],
        "connected": len(tree["roots"]) == 1,
        "root_name": root.get("name") if root is not None else None,
        "root_duration": (round(_duration(root), 6)
                          if root is not None else None),
        "unfinished": sum(1 for r in tree["by_id"].values()
                          if r.get("status") == "unfinished"),
        "errors": sum(1 for r in tree["by_id"].values()
                      if r.get("status") == "error"),
        "critical_path": [
            {"name": hop["record"].get("name", "?"),
             "span_id": hop["record"]["span_id"],
             "pid": hop["record"].get("pid"),
             "label": (hop["record"].get("attrs") or {}).get("label"),
             "duration": round(_duration(hop["record"]), 6),
             "self": round(hop["self"], 6)}
            for hop in path
        ],
        "self_time": {
            name: {"count": row["count"],
                   "total": round(row["total"], 6),
                   "self": round(row["self"], 6)}
            for name, row in sorted(self_times(tree).items())
        },
        "anomalies": find_anomalies(records),
    }
    if manifest is not None:
        analysis["manifest_check"] = cross_check_manifest(manifest, tree)
    analysis["_tree"] = tree  # internal: render/check use it, JSON drops it
    return analysis


# -- rendering ----------------------------------------------------------------

def _fmt_secs(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _render_node(tree: Dict[str, Any], record: Dict[str, Any],
                 depth: int, lines: List[str], base_pid: Any) -> None:
    attrs = record.get("attrs") or {}
    bits = [f"{'  ' * depth}{record.get('name', '?')}"]
    label = attrs.get("label")
    if label:
        bits.append(f"[{label}]")
    mode = attrs.get("mode")
    if mode:
        bits.append(f"({mode})")
    bits.append(_fmt_secs(_duration(record)))
    if record.get("pid") != base_pid:
        bits.append(f"pid {record.get('pid')}")
    status = record.get("status", "ok")
    if status != "ok":
        bits.append(f"!{status}")
    lines.append("    " + " ".join(bits))
    for kid in tree["children"].get(record["span_id"], []):
        _render_node(tree, kid, depth + 1, lines, base_pid)


def render_analysis(source: str, trace_id: str, analysis: Dict[str, Any],
                    other_traces: int, bad_lines: int) -> str:
    tree = analysis["_tree"]
    lines = [f"spans — {source}"]
    note = (f"  trace {trace_id}: {analysis['spans']} spans, "
            f"{len(analysis['processes'])} process(es)")
    if other_traces:
        note += f"  [+{other_traces} other trace(s) in file; see --trace-id]"
    lines.append(note)
    if bad_lines:
        lines.append(f"  note: skipped {bad_lines} undecodable line(s)")
    if analysis["unfinished"] or analysis["errors"]:
        lines.append(f"  note: {analysis['unfinished']} unfinished, "
                     f"{analysis['errors']} error span(s)")
    lines.append("")
    lines.append("  tree")
    base_pid = (tree["roots"][0].get("pid") if tree["roots"] else None)
    for root in tree["roots"]:
        _render_node(tree, root, 0, lines, base_pid)
    if not analysis["connected"]:
        lines.append(f"  note: {len(analysis['roots'])} roots — the trace "
                     "is not one connected tree")
    if analysis["critical_path"]:
        total = analysis["root_duration"] or 0.0
        lines += ["", f"  critical path ({_fmt_secs(total)} end to end)"]
        for hop in analysis["critical_path"]:
            share = (100.0 * hop["self"] / total) if total > 0 else 0.0
            name = hop["name"] + (f" [{hop['label']}]" if hop["label"]
                                  else "")
            lines.append(f"    {share:5.1f}%  {_fmt_secs(max(0.0, hop['self'])):>9}  "
                         f"{name}")
    lines += ["", "  self time by span name"]
    for name, row in sorted(analysis["self_time"].items(),
                            key=lambda kv: -kv[1]["self"]):
        lines.append(f"    {name:<16} x{row['count']:<3} "
                     f"total {_fmt_secs(row['total']):>9}  "
                     f"self {_fmt_secs(row['self']):>9}")
    if analysis["anomalies"]:
        lines += ["", "  anomalies (> p99 of same-named spans)"]
        for row in analysis["anomalies"]:
            where = f" [{row['label']}]" if row["label"] else ""
            lines.append(f"    {row['name']}{where}: "
                         f"{_fmt_secs(row['duration'])} vs p99 "
                         f"{_fmt_secs(row['p99'])} (pid {row['pid']})")
    check = analysis.get("manifest_check")
    if check:
        suspects = [row for row in check if row["suspect"]]
        lines += ["", f"  manifest cross-check: {len(check)} cell(s), "
                      f"{len(suspects)} suspect"]
        for row in suspects:
            span = (_fmt_secs(row["span_wall"])
                    if row["span_wall"] is not None else "no job span")
            lines.append(f"    {row['label']}: manifest wall "
                         f"{_fmt_secs(row['manifest_wall'])} vs {span}")
    return "\n".join(lines)


# -- --check ------------------------------------------------------------------

def run_checks(analysis: Dict[str, Any], expect_processes: int,
               wall: Optional[float], tolerance: float) -> List[str]:
    """CI assertions over one analyzed trace; returns failure messages."""
    failures = []
    if not analysis["connected"]:
        failures.append(f"expected one connected tree, found "
                        f"{len(analysis['roots'])} roots")
    if len(analysis["processes"]) < expect_processes:
        failures.append(f"expected spans from >= {expect_processes} "
                        f"process(es), found {len(analysis['processes'])} "
                        f"({analysis['processes']})")
    if analysis["critical_path"]:
        total = sum(hop["self"] for hop in analysis["critical_path"])
        root = analysis["root_duration"] or 0.0
        if abs(total - root) > 1e-4 * max(1.0, root):
            failures.append(f"critical path does not telescope: "
                            f"contributions sum to {total:.6f}s, root "
                            f"duration is {root:.6f}s")
        if wall is not None:
            if abs(root - wall) > tolerance * max(wall, 1e-9):
                failures.append(
                    f"root span duration {root:.4f}s is outside "
                    f"{tolerance:.0%} of the measured wall {wall:.4f}s")
    elif wall is not None:
        failures.append("no single root: cannot check --wall")
    for row in analysis.get("manifest_check", []):
        if row["suspect"]:
            span = (f"{row['span_wall']:.4f}s"
                    if row["span_wall"] is not None else "missing")
            failures.append(f"cell {row['label']}: job span ({span}) does "
                            f"not cover manifest wall "
                            f"{row['manifest_wall']:.4f}s")
    return failures


def spans_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness spans",
        description="Reconstruct a traced run's span tree and report "
                    "its critical path, per-name self time and p99 "
                    "anomalies.")
    parser.add_argument("ref",
                        help="a spans.jsonl file, or a run id / manifest "
                             "path from a traced run")
    parser.add_argument("--manifest-dir", default=None, metavar="DIR",
                        help="manifest root (default results/runs or "
                             "REPRO_RUNS_DIR)")
    parser.add_argument("--trace-id", default=None, metavar="HEX",
                        help="analyze this trace when the file holds "
                             "several (default: the largest)")
    parser.add_argument("--json", action="store_true",
                        help="emit the analysis as JSON instead of text")
    parser.add_argument("--chrome", default=None, metavar="PATH",
                        help="also export the selected trace as Chrome "
                             "trace_event JSON")
    parser.add_argument("--otlp", default=None, metavar="PATH",
                        help="also export the selected trace as "
                             "OTLP/JSON resourceSpans")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: exit 1 unless the trace is one "
                             "connected tree whose critical path "
                             "telescopes to the root duration")
    parser.add_argument("--expect-processes", type=int, default=1,
                        metavar="N",
                        help="--check: require spans from at least N "
                             "distinct pids (default 1)")
    parser.add_argument("--wall", type=float, default=None,
                        metavar="SECONDS",
                        help="--check: externally measured end-to-end "
                             "wall the root span must agree with")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        metavar="FRAC",
                        help="--check --wall: allowed relative "
                             "disagreement (default 0.5)")
    args = parser.parse_args(argv)

    path, manifest, error = resolve_spans(args.ref, args.manifest_dir)
    if error:
        print(f"spans: {error}", file=sys.stderr)
        return 2
    try:
        records, bad = read_spans(path)
    except OSError as exc:
        print(f"spans: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"spans: {path} contains no span records", file=sys.stderr)
        return 2
    groups = group_by_trace(records)
    if args.trace_id:
        selected = groups.get(args.trace_id)
        if not selected:
            print(f"spans: trace {args.trace_id!r} not in {path} "
                  f"(has: {', '.join(sorted(groups))})", file=sys.stderr)
            return 2
        trace_id = args.trace_id
    else:
        trace_id = max(groups, key=lambda t: (len(groups[t]), t))
        selected = groups[trace_id]

    analysis = analyze(selected, manifest=manifest)
    tree = analysis.pop("_tree")
    source = path if manifest is None else f"{path} (run {manifest['run_id']})"

    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(spans_to_chrome(selected), fh, indent=2)
    if args.otlp:
        with open(args.otlp, "w") as fh:
            json.dump(spans_to_otlp(selected), fh, indent=2)

    if args.json:
        payload = dict(analysis, source=source, trace_id=trace_id,
                       other_traces=len(groups) - 1, bad_lines=bad)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        analysis["_tree"] = tree
        print(render_analysis(source, trace_id, analysis,
                              other_traces=len(groups) - 1, bad_lines=bad))
        analysis.pop("_tree")
        if args.chrome:
            print(f"chrome trace written to {args.chrome}")
        if args.otlp:
            print(f"otlp export written to {args.otlp}")

    if args.check:
        failures = run_checks(analysis, args.expect_processes,
                              args.wall, args.tolerance)
        if failures:
            for failure in failures:
                print(f"spans: CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"spans: checks passed ({analysis['spans']} spans, "
              f"{len(analysis['processes'])} process(es))")
    return 0


if __name__ == "__main__":
    sys.exit(spans_main())
