"""ASCII rendering of experiment results, in the paper's format.

Figures 2/3 are stacked bars of normalized execution time split into busy /
cache-stall / other-stall graduation slots; here each bar becomes one row
with the same three numbers plus the normalized height.
"""

from __future__ import annotations

from typing import List

from repro.harness.runner import FigureResult

_MACHINE_TITLES = {"ooo": "out-of-order", "inorder": "in-order"}


def render_figure(result: FigureResult, title: str = "") -> str:
    """Render a FigureResult as an aligned text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = (f"{'benchmark':<10} {'machine':<12} {'bar':<5} "
              f"{'norm':>6} {'busy':>6} {'cache':>6} {'other':>6} "
              f"{'insts':>8} {'handlers':>9}")
    lines.append(header)
    lines.append("-" * len(header))
    last_key = None
    for bar in result.bars:
        key = (bar.benchmark, bar.machine)
        if last_key is not None and key != last_key:
            lines.append("")
        last_key = key
        lines.append(
            f"{bar.benchmark:<10} {_MACHINE_TITLES.get(bar.machine, bar.machine):<12} "
            f"{bar.label:<5} {bar.normalized:>6.2f} "
            f"{bar.busy:>6.2f} {bar.cache_stall:>6.2f} {bar.other_stall:>6.2f} "
            f"{bar.instructions:>8d} {bar.handler_invocations:>9d}")
    return "\n".join(lines)


def render_bar_chart(result: FigureResult, machine: str, label: str,
                     width: int = 50) -> str:
    """A quick horizontal bar chart of normalized time for one bar label."""
    rows = [bar for bar in result.bars
            if bar.machine == machine and bar.label == label]
    if not rows:
        return "(no data)"
    peak = max(bar.normalized for bar in rows)
    lines = [f"normalized execution time — {label} on "
             f"{_MACHINE_TITLES.get(machine, machine)}"]
    for bar in rows:
        filled = int(round(width * bar.normalized / peak)) if peak else 0
        lines.append(f"{bar.benchmark:<10} {'#' * filled} {bar.normalized:.2f}")
    return "\n".join(lines)


def summarize_claims(result: FigureResult) -> List[str]:
    """Human-readable checks of the paper's headline claims, where testable
    from the given figure."""
    notes: List[str] = []
    by_label = {}
    for bar in result.bars:
        by_label.setdefault((bar.benchmark, bar.machine), {})[bar.label] = bar
    over_40 = [
        f"{bench}/{machine}/{label}"
        for (bench, machine), bars in by_label.items()
        for label, bar in bars.items()
        if label != "N" and bar.normalized > 1.40 and bench != "su2cor"
    ]
    if over_40:
        notes.append("bars above the paper's 40% envelope: "
                     + ", ".join(sorted(over_40)))
    else:
        notes.append("all non-su2cor bars within the paper's 40% envelope")
    return notes
