"""Experiment harness: machine configs (Tables 1 & 2), runners, reporting."""

from repro.harness.configs import (
    ALPHA21164_SPEC,
    R10000_SPEC,
    MACHINES,
    MachineSpec,
    build_core,
    build_hierarchy,
)

__all__ = [
    "MachineSpec",
    "R10000_SPEC",
    "ALPHA21164_SPEC",
    "MACHINES",
    "build_core",
    "build_hierarchy",
]
