"""Machine configurations: Table 1 of the paper, encoded.

Two machine models:

* ``R10000_SPEC`` — the out-of-order machine ("roughly based on the MIPS
  R10000"): 4-wide, 2 INT / 2 FP / 1 branch / 1 memory unit, 32-entry
  reorder buffer, 32KB 2-way L1 caches, 2MB 2-way L2, 12/75-cycle miss
  latencies.
* ``ALPHA21164_SPEC`` — the in-order machine ("roughly based on the Alpha
  21164"): 4-wide, 2 INT / 2 FP / 1 branch (memory ops use the integer
  pipes), 8KB direct-mapped L1 caches, 2MB 4-way L2, 11/50-cycle miss
  latencies.

Both use 32-byte lines, 8 MSHRs, 2 data-cache banks, 4-cycle fills, one
main-memory access per 20 cycles, and 2-bit-counter branch prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.mechanisms import InformingConfig
from repro.memory import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.pipeline import CoreConfig, LatencyTable


@dataclass(frozen=True)
class MachineSpec:
    """One complete machine model: pipeline + memory + instruction cache."""

    name: str
    core: CoreConfig
    hierarchy: HierarchyConfig
    icache: CacheConfig
    out_of_order: bool


R10000_SPEC = MachineSpec(
    name="out-of-order (R10000-like)",
    core=CoreConfig(
        name="r10000",
        issue_width=4,
        int_units=2,
        fp_units=2,
        branch_units=1,
        mem_units=1,
        rob_size=32,
        shadow_branches=4,
        mispredict_penalty=4,
        latencies=LatencyTable(imul=12, idiv=76, fdiv=15, fsqrt=20,
                               fp_other=2),
    ),
    hierarchy=HierarchyConfig(
        l1=CacheConfig(size=32 * 1024, assoc=2, line_size=32),
        l2=CacheConfig(size=2 * 1024 * 1024, assoc=2, line_size=32),
        l1_hit_latency=2,
        l1_to_l2_latency=12,
        l1_to_mem_latency=75,
        mshr_count=8,
        data_banks=2,
        fill_time=4,
        mem_cycles_per_access=20,
    ),
    icache=CacheConfig(size=32 * 1024, assoc=2, line_size=32),
    out_of_order=True,
)

ALPHA21164_SPEC = MachineSpec(
    name="in-order (21164-like)",
    core=CoreConfig(
        name="alpha21164",
        issue_width=4,
        int_units=2,
        fp_units=2,
        branch_units=1,
        mem_units=0,  # memory ops issue down the integer pipes
        rob_size=32,  # unused by the in-order core
        mispredict_penalty=5,
        latencies=LatencyTable(imul=12, idiv=76, fdiv=17, fsqrt=20,
                               fp_other=4),
    ),
    hierarchy=HierarchyConfig(
        l1=CacheConfig(size=8 * 1024, assoc=1, line_size=32),
        l2=CacheConfig(size=2 * 1024 * 1024, assoc=4, line_size=32),
        l1_hit_latency=2,
        l1_to_l2_latency=11,
        l1_to_mem_latency=50,
        mshr_count=8,
        data_banks=2,
        fill_time=4,
        mem_cycles_per_access=20,
    ),
    icache=CacheConfig(size=8 * 1024, assoc=1, line_size=32),
    out_of_order=False,
)

LAB_SPEC = MachineSpec(
    name="in-order replacement lab (4-way 8KB L1)",
    core=ALPHA21164_SPEC.core,
    hierarchy=replace(
        ALPHA21164_SPEC.hierarchy,
        l1=CacheConfig(size=8 * 1024, assoc=4, line_size=32),
    ),
    icache=ALPHA21164_SPEC.icache,
    out_of_order=False,
)
"""The replacement-ablation machine: the 21164-like core with a 4-way L1.

Neither Table 1 machine can show replacement effects in the primary cache —
the 21164's L1 is direct mapped (no choice to make) and the R10000's is
2-way (tree-PLRU degenerates to true LRU at two ways).  The lab machine
keeps the in-order core and L1 capacity but raises the associativity to 4,
where lru/plru/rrip genuinely diverge.
"""

MACHINES: Dict[str, MachineSpec] = {
    "ooo": R10000_SPEC,
    "inorder": ALPHA21164_SPEC,
    "lab": LAB_SPEC,
}

#: Shadow slots used when branch-like informing traps are active: the paper
#: notes the R10000's shadow state must roughly triple to cover informing
#: memory operations as well as branches (Section 3.2).
INFORMING_SHADOW_SLOTS = 12


def build_hierarchy(spec: MachineSpec, extended_mshr: bool = False,
                    model_icache: bool = True,
                    replacement_policy: Optional[str] = None,
                    replacement_seed: Optional[int] = None) -> MemoryHierarchy:
    """Construct a fresh memory hierarchy for one run.

    *replacement_policy* picks a registry entry
    (:mod:`repro.memory.replacement`); None keeps the spec's default
    (true LRU, the paper's machines).  *replacement_seed* defaults to the
    historical constant so unseeded runs stay digit-exact.
    """
    from repro.memory import DEFAULT_REPLACEMENT_SEED

    return MemoryHierarchy(
        spec.hierarchy,
        icache=spec.icache if model_icache else None,
        extended_mshr_lifetime=extended_mshr,
        replacement_policy=replacement_policy,
        replacement_seed=(DEFAULT_REPLACEMENT_SEED if replacement_seed is None
                          else replacement_seed),
    )


def build_core(
    spec: MachineSpec,
    informing: Optional[InformingConfig] = None,
    observer=None,
    extended_mshr: bool = False,
    wrong_path_factory=None,
    shadow_override: Optional[int] = None,
    model_icache: bool = True,
    replacement_policy: Optional[str] = None,
    replacement_seed: Optional[int] = None,
):
    """Construct a fresh core+hierarchy pair for one run.

    When branch-like informing traps are active on the out-of-order machine
    the shadow-slot count is raised to ``INFORMING_SHADOW_SLOTS`` (the extra
    hardware the paper budgets); pass ``shadow_override`` to ablate that.
    """
    from repro.core.mechanisms import Mechanism, TrapStyle
    from repro.inorder import InOrderCore
    from repro.ooo import OutOfOrderCore

    hierarchy = build_hierarchy(spec, extended_mshr, model_icache,
                                replacement_policy=replacement_policy,
                                replacement_seed=replacement_seed)
    core_config = spec.core
    if spec.out_of_order:
        needs_shadow = (
            informing is not None
            and informing.active
            and (informing.mechanism is Mechanism.CONDITION_CODE
                 or informing.trap_style is TrapStyle.BRANCH_LIKE))
        if shadow_override is not None:
            core_config = replace(core_config, shadow_branches=shadow_override)
        elif needs_shadow:
            core_config = replace(core_config,
                                  shadow_branches=INFORMING_SHADOW_SLOTS)
        return OutOfOrderCore(core_config, hierarchy, informing=informing,
                              observer=observer,
                              wrong_path_factory=wrong_path_factory)
    return InOrderCore(core_config, hierarchy, informing=informing,
                       observer=observer)
