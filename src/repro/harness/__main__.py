"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness figure2 [--quick] [--benchmarks a,b,c]
    python -m repro.harness figure3
    python -m repro.harness handler100
    python -m repro.harness branch-vs-exception
    python -m repro.harness cc-vs-trap
    python -m repro.harness figure4
    python -m repro.harness sensitivity
    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness characterize [--benchmarks a,b]
    python -m repro.harness profile [--top N] [--sort KEY] <command...>
    python -m repro.harness report (--trace-file PATH | --benchmark B
                                    --machine M [--label L])
    python -m repro.harness compare RUN_A RUN_B [--json] [--trace-dir]
    python -m repro.harness watch TELEMETRY_JSONL [--follow]
    python -m repro.harness serve [--port P] [--shards N] ...
    python -m repro.harness resume RUN_ID [--jobs N] [--backend B]
    python -m repro.harness apps {miss_profile,prefetch_schedule,bypass,all}
    python -m repro.harness explain (TRACE.events.jsonl | RUN_ID) [--json]
    python -m repro.harness spans (SPANS.jsonl | RUN_ID) [--check] [--json]
    python -m repro.harness bench replacement [--explain DIR]

``profile`` wraps any other invocation in cProfile and prints the top-N
hot functions afterwards, e.g.::

    python -m repro.harness profile --top 30 figure2 --quick --jobs 1

``report`` renders a per-benchmark observability report — miss
breakdown, miss-latency histogram, top conflict sets, MSHR and
trap/handler accounting — from a ``repro.obs`` event trace or a live
single-cell run (see :mod:`repro.obs.report`).

``--quick`` shrinks run lengths by 4x for smoke testing; ``--json PATH``
writes any experiment's results as JSON.

Execution-engine flags (see :mod:`repro.exec`): ``--jobs N`` fans the
experiment's simulation grid across N worker processes (1 = serial,
byte-identical to the historical loops); results are memoized in the
content-addressed cache under ``REPRO_CACHE_DIR`` (default
``~/.cache/repro-exec``) unless ``--no-cache``; ``--trace PATH`` dumps
per-job telemetry events as JSONL; ``--seed N`` offsets the workload
generator seeds; ``--timeout S`` bounds each job's runtime.  Engine-backed
experiments also refresh their entry in ``BENCH_harness.json``
(``--bench PATH`` to redirect, ``--no-bench`` to skip).

``--backend {interp,vec}`` picks the simulation backend (see
:mod:`repro.vec`): ``interp`` is the original object-per-instruction
interpreter, ``vec`` decodes each workload's op stream once into flat
arrays and replays it with flat kernels — digit-exact statistics,
several times faster on cold grids.  The flag sets ``REPRO_BACKEND``
(pool workers inherit it); the backend is never part of a job's cache
key, so either backend reads and writes the same result cache.

``--sanitize`` turns on the runtime invariant sanitizer
(:mod:`repro.sanitize`): every simulated cell runs with live checks of
the cache tag stores, MSHR lifetimes and informing-trap semantics, and a
violation fails that cell with a structured record instead of silently
wrong bars.  Results are bit-exact with and without it.  The flag works
by setting ``REPRO_SANITIZE=1``, which forked pool workers inherit.

Cross-run observatory (see :mod:`repro.perf`): every engine-backed run
writes ``results/runs/<run_id>/manifest.json`` (git sha, config digest,
machine fingerprint, per-cell wall + simulated stats) unless
``--no-manifest``; ``--manifest-dir DIR`` / ``REPRO_RUNS_DIR`` redirect
the store.  ``compare`` diffs two manifests — simulated statistics are
digit-exact (drift is a correctness alarm), wall times get bootstrap
confidence intervals — or two ``BENCH_*.json`` snapshots, or two
``--trace-dir`` obs artifact directories.  ``watch`` follows a running
grid's ``--trace`` JSONL live (per-job state, utilization, cache hits,
throughput, ETA).

Crash safety (see :mod:`repro.durable`): every engine-backed run also
appends a crc32-framed write-ahead journal
(``results/runs/<run_id>/journal.jsonl``) recording each cell's
start/finish/fail.  If a run is SIGKILLed mid-grid, ``resume <run_id>``
continues it exactly where it died — journal-completed cells replay from
the result cache (never re-simulated), incomplete cells re-run with
their attempt counts carried over, and the resumed figure is digit-exact
with an uninterrupted run.

Request tracing (see :mod:`repro.trace`): ``--trace-sample RATE`` sets
``REPRO_TRACE_SAMPLE`` so a sampled engine run (and its forked pool
workers) records a span tree — run, per-job, decode, replay, export —
next to the run manifest as ``spans.jsonl``; results stay digit-exact.
Analyze it afterwards with ``python -m repro.harness spans <run_id>``:
span tree, critical path, per-name self time, p99 anomalies and a
manifest wall cross-check (``--check`` makes it a CI assertion).

``--trace-events DIR`` turns on the observability layer
(:mod:`repro.obs`) the same way — it sets ``REPRO_OBS=1`` and
``REPRO_OBS_DIR=DIR`` so every simulated cell (pool workers included)
writes a cycle-stamped ``*.events.jsonl`` trace and ``*.metrics.json``
under DIR, and each job's ``finished`` telemetry event carries its
trace path.  Results stay bit-exact; drill into a cell afterwards with
``python -m repro.harness report --trace-file DIR/<cell>.events.jsonl``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.harness import configs
from repro.harness import coherence_exp
from repro.harness import report
from repro.harness import runner

#: Experiments whose grids run through the repro.exec engine.
_ENGINE_EXPERIMENTS = frozenset([
    "figure2", "figure3", "handler100", "branch-vs-exception",
    "cc-vs-trap", "figure4", "sensitivity",
])


def _sizes(quick: bool):
    if quick:
        return dict(instructions=runner.DEFAULT_INSTRUCTIONS // 4,
                    warmup=runner.DEFAULT_WARMUP // 4)
    return dict(instructions=runner.DEFAULT_INSTRUCTIONS,
                warmup=runner.DEFAULT_WARMUP)


def _table1() -> str:
    lines = ["Table 1 — simulation parameters"]
    for key, spec in configs.MACHINES.items():
        core, mem = spec.core, spec.hierarchy
        lines += [
            f"\n[{spec.name}]",
            f"  issue width            {core.issue_width}",
            f"  functional units       {core.int_units} INT, {core.fp_units} FP, "
            f"{core.branch_units} Branch"
            + (f", {core.mem_units} Memory" if core.mem_units else ""),
            f"  reorder buffer         "
            + (str(core.rob_size) if key == "ooo" else "N/A"),
            f"  imul/idiv              {core.latencies.imul}/{core.latencies.idiv} cycles",
            f"  fdiv/fsqrt/other fp    {core.latencies.fdiv}/{core.latencies.fsqrt}/"
            f"{core.latencies.fp_other} cycles",
            f"  L1 D-cache             {mem.l1.size // 1024}KB, {mem.l1.assoc}-way",
            f"  L2 cache               {mem.l2.size // (1024 * 1024)}MB, {mem.l2.assoc}-way",
            f"  line size              {mem.l1.line_size}B",
            f"  L1->L2 / L1->mem       {mem.l1_to_l2_latency}/{mem.l1_to_mem_latency} cycles",
            f"  MSHRs / banks / fill   {mem.mshr_count} / {mem.data_banks} / {mem.fill_time}",
            f"  memory bandwidth       1 access per {mem.mem_cycles_per_access} cycles",
        ]
    return "\n".join(lines)


def _table2() -> str:
    from repro.coherence import METHOD_COSTS, TABLE2_MACHINE, AccessControlMethod
    machine = TABLE2_MACHINE
    lines = [
        "Table 2 — access-control machine and method parameters",
        f"  processors             {machine.processors}",
        f"  L1 cache / penalty     {machine.l1_size // 1024}KB / {machine.l1_miss_penalty} cycles",
        f"  L2 cache / penalty     {machine.l2_size // 1024}KB / {machine.l2_miss_penalty} cycles",
        f"  coherence unit         {machine.coherence_unit}B",
        f"  1-way message latency  {machine.message_latency} cycles",
    ]
    rc = METHOD_COSTS[AccessControlMethod.REFERENCE_CHECKING]
    ecc = METHOD_COSTS[AccessControlMethod.ECC]
    inf = METHOD_COSTS[AccessControlMethod.INFORMING]
    lines += [
        f"  reference checking     {rc.lookup}-cycle lookup, "
        f"{rc.state_change}-cycle state change",
        f"  ECC                    {ecc.read_invalid_fault}-cycle invalid read, "
        f"{ecc.write_readonly_page_fault}-cycle readonly-page write",
        f"  informing              {inf.lookup}-cycle lookup, "
        f"{inf.state_change}-cycle state change",
    ]
    return "\n".join(lines)


def _build_engine(args, argv=None):
    """One JobRunner per CLI invocation, wired from the engine flags."""
    from repro.exec import ExecOptions, JobRunner

    manifest_dir = None
    if not args.no_manifest:
        from repro.perf.manifest import runs_root
        manifest_dir = runs_root(args.manifest_dir)
    options = ExecOptions(
        jobs=args.jobs,
        cache=not args.no_cache,
        timeout=args.timeout,
        trace_path=args.trace,
        progress=args.progress,
        manifest_dir=manifest_dir,
        run_meta={"experiment": args.experiment,
                  "argv": list(argv) if argv is not None else None,
                  "seed": args.seed,
                  "policy": getattr(args, "policy", "lru")},
    )
    return JobRunner(options)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.harness",
                                     description=__doc__)
    parser.add_argument("experiment", choices=[
        "figure2", "figure3", "handler100", "branch-vs-exception",
        "cc-vs-trap", "figure4", "sensitivity", "table1", "table2",
        "characterize"])
    parser.add_argument("--quick", action="store_true",
                        help="4x shorter runs for smoke testing")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset (SPEC92 "
                             "names; parallel-kernel names for "
                             "figure4/sensitivity)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write results as JSON")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed offset (0 = the default "
                             "seed path, unchanged)")
    from repro.memory import available_policies
    parser.add_argument("--policy", choices=available_policies(),
                        default="lru",
                        help="L1/L2 replacement policy for every cell "
                             "(repro.memory.replacement registry; "
                             "default lru, the paper's machines). "
                             "Non-lru policies get their own cache "
                             "keys; stateful ones (plru/rrip/brrip) "
                             "fall back from the vec backend to interp")
    engine_group = parser.add_argument_group("execution engine")
    engine_group.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes for the simulation "
                                   "grid (default 1: serial)")
    engine_group.add_argument("--no-cache", action="store_true",
                              help="disable the content-addressed result "
                                   "cache")
    engine_group.add_argument("--trace", default=None, metavar="PATH",
                              help="append per-job telemetry events as "
                                   "JSONL")
    engine_group.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-job timeout (parallel mode "
                                   "preempts; serial mode detects "
                                   "post-hoc)")
    engine_group.add_argument("--progress", action="store_true",
                              help="live progress meter on stderr")
    engine_group.add_argument("--backend", choices=("interp", "vec"),
                              default=None,
                              help="simulation backend (repro.vec): "
                                   "'interp' object interpreters (the "
                                   "default), 'vec' flat decoded-stream "
                                   "replay — digit-exact, faster; also "
                                   "settable via REPRO_BACKEND")
    engine_group.add_argument("--sanitize", action="store_true",
                              help="run with the runtime invariant "
                                   "sanitizer (repro.sanitize) attached "
                                   "to every simulated cell")
    engine_group.add_argument("--trace-sample", type=float, default=None,
                              metavar="RATE",
                              help="repro.trace sampling rate in [0,1]: "
                                   "a sampled run writes a spans.jsonl "
                                   "span tree next to its manifest "
                                   "(default REPRO_TRACE_SAMPLE, then 0)")
    engine_group.add_argument("--trace-events", default=None, metavar="DIR",
                              help="attach the repro.obs observer to every "
                                   "simulated cell and write per-cell "
                                   "event traces + metrics under DIR")
    engine_group.add_argument("--bench", default=None, metavar="PATH",
                              help="timing-baseline file to update "
                                   "(default BENCH_harness.json)")
    engine_group.add_argument("--no-bench", action="store_true",
                              help="do not update the timing baseline")
    engine_group.add_argument("--manifest-dir", default=None, metavar="DIR",
                              help="root for cross-run manifests (default "
                                   "results/runs or REPRO_RUNS_DIR)")
    engine_group.add_argument("--no-manifest", action="store_true",
                              help="do not write a run manifest")
    args = parser.parse_args(argv)
    sizes = _sizes(args.quick)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.sanitize:
        # Through the environment rather than plumbed per-job: forked
        # pool workers inherit it, so --jobs N sanitizes every worker.
        os.environ["REPRO_SANITIZE"] = "1"
    if args.backend:
        # Same environment route: the backend is an execution detail
        # (results are digit-exact), never part of a job's cache key.
        os.environ["REPRO_BACKEND"] = args.backend
    if args.trace_sample is not None:
        # Environment route like --sanitize: the engine reads it when
        # ExecOptions.trace_sample is unset, and forked pool workers
        # inherit the run's sampling decision with it.
        if not 0.0 <= args.trace_sample <= 1.0:
            parser.error("--trace-sample must be in [0, 1]")
        os.environ["REPRO_TRACE_SAMPLE"] = repr(args.trace_sample)
    if args.trace_events:
        # Same environment route as --sanitize, so --jobs N traces every
        # worker; REPRO_OBS_DIR alone implies REPRO_OBS.
        os.environ["REPRO_OBS"] = "1"
        os.environ["REPRO_OBS_DIR"] = args.trace_events

    # Seed only affects the SPEC92 workload generators.
    if args.seed and args.experiment in ("table1", "table2", "figure4",
                                         "sensitivity"):
        parser.error(f"--seed does not apply to {args.experiment}")
    # Policy only affects the bar-grid experiments' cache hierarchies.
    if args.policy != "lru" and args.experiment in (
            "table1", "table2", "figure4", "sensitivity", "characterize"):
        parser.error(f"--policy does not apply to {args.experiment}")
    engine = (_build_engine(args, argv=argv)
              if args.experiment in _ENGINE_EXPERIMENTS else None)

    def maybe_export(payload: str) -> None:
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"results written to {args.json}")

    if args.experiment == "table1":
        from repro.harness import export
        print(_table1())
        maybe_export(export.table1_to_json())
    elif args.experiment == "table2":
        from repro.harness import export
        print(_table2())
        maybe_export(export.table2_to_json())
    elif args.experiment == "figure2":
        from repro.harness import export
        benchmarks = args.benchmarks.split(",") if args.benchmarks else None
        result = runner.figure2(benchmarks=benchmarks, seed=args.seed,
                                engine=engine, policy=args.policy, **sizes)
        print(report.render_figure(result, "Figure 2 — generic miss handlers"))
        for note in report.summarize_claims(result):
            print(note)
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "figure3":
        from repro.harness import export
        result = runner.figure3(seed=args.seed, engine=engine,
                                policy=args.policy, **sizes)
        print(report.render_figure(result, "Figure 3 — su2cor"))
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "handler100":
        from repro.harness import export
        result = runner.handler100(seed=args.seed, engine=engine,
                                   policy=args.policy, **sizes)
        print(report.render_figure(
            result, "100-instruction handlers (paper: compress ~6x, "
                    "su2cor ~7x, ora ~2%)"))
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "branch-vs-exception":
        from repro.harness import export
        result = runner.branch_vs_exception(seed=args.seed, engine=engine,
                                            policy=args.policy, **sizes)
        print(report.render_figure(
            result, "Branch-like vs exception-like traps "
                    "(paper: +9%/+7% on compress)"))
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "cc-vs-trap":
        from repro.harness import export
        result = runner.cc_vs_trap(seed=args.seed, engine=engine,
                                   policy=args.policy, **sizes)
        print(report.render_figure(
            result, "Condition-code check vs per-reference MHAR set"))
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "figure4":
        from repro.harness import export
        workloads = args.benchmarks.split(",") if args.benchmarks else None
        result = coherence_exp.figure4(workloads=workloads, engine=engine)
        print(coherence_exp.render_figure4(result))
        maybe_export(export.figure4_to_json(result))
    elif args.experiment == "characterize":
        from repro.harness import export
        from repro.workloads import SPEC92, spec92_workload
        from repro.workloads.characterize import characterize, render_profile
        names = (args.benchmarks.split(",") if args.benchmarks
                 else sorted(SPEC92))
        limit = 10_000 if args.quick else 50_000
        profiles = {}
        for name in names:
            workload = spec92_workload(name, seed_offset=args.seed)
            profile = characterize(workload.stream(limit), limit=limit)
            profiles[name] = profile
            print(render_profile(name, profile))
            print()
        maybe_export(export.profiles_to_json(profiles))
    elif args.experiment == "sensitivity":
        from repro.harness import export
        workloads = args.benchmarks.split(",") if args.benchmarks else None
        points = coherence_exp.sensitivity(workloads=workloads,
                                           engine=engine)
        print("Sensitivity: comparator-to-informing ratios "
              "(higher = informing relatively better)")
        print(f"{'msg latency':>12} {'L1 size':>9} {'ref-check':>10} {'ECC':>8}")
        for point in points:
            print(f"{point.message_latency:>12} {point.l1_size // 1024:>8}K "
                  f"{point.reference_checking:>10.3f} {point.ecc:>8.3f}")
        maybe_export(export.sensitivity_to_json(points))

    if engine is not None:
        print(engine.stats.summary())
        if engine.last_manifest:
            print(f"run manifest: {engine.last_manifest}")
        if engine.last_journal:
            print(f"run journal: {engine.last_journal}")
        if not args.no_bench:
            from repro.exec import DEFAULT_BENCH_PATH, record_run
            bench_path = args.bench or DEFAULT_BENCH_PATH
            record_run(bench_path, args.experiment, engine)
            print(f"timing baseline updated: {bench_path}")
    return 0


def profile_main(argv) -> int:
    """``profile`` subcommand: cProfile any other harness invocation.

    Everything not recognised here is forwarded to :func:`main`, so any
    experiment and engine flag combination can be profiled.  Profiled runs
    are forced to ``--no-bench`` — their timings include profiler overhead
    and must not pollute the timing baseline.  Use ``--jobs 1`` (the
    default) when profiling: worker subprocesses escape the profiler.
    """
    import cProfile
    import pstats

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness profile",
        description="Run a harness command under cProfile and print the "
                    "hottest functions.")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="functions to print (default 25)")
    parser.add_argument("--sort", choices=("tottime", "cumtime", "ncalls"),
                        default="tottime",
                        help="pstats sort key (default tottime)")
    parser.add_argument("--dump", default=None, metavar="PATH",
                        help="also write raw pstats data for snakeviz "
                             "and friends")
    args, rest = parser.parse_known_args(argv)
    if not rest:
        parser.error("expected a harness command to profile, e.g. "
                     "'profile figure2 --quick'")
    if "--no-bench" not in rest:
        rest.append("--no-bench")
    if "--no-manifest" not in rest:
        # Profiled walls include profiler overhead; keep them out of the
        # cross-run observatory too.
        rest.append("--no-manifest")

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        rc = main(rest)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats(args.sort)
        print(f"\n--- cProfile: top {args.top} by {args.sort} ---")
        stats.print_stats(args.top)
        if args.dump:
            stats.dump_stats(args.dump)
            print(f"raw profile written to {args.dump}")
    return rc


def dispatch(argv=None) -> int:
    """Route ``profile``/``report``/``compare``/``watch``/``apps``/
    ``explain``/``spans``/``bench`` to their wrappers, the rest to
    :func:`main`."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "report":
        from repro.obs import report_main
        return report_main(argv[1:])
    if argv and argv[0] == "compare":
        from repro.perf.compare import compare_main
        return compare_main(argv[1:])
    if argv and argv[0] == "watch":
        from repro.perf.watch import watch_main
        return watch_main(argv[1:])
    if argv and argv[0] == "apps":
        from repro.harness.apps_cli import apps_main
        return apps_main(argv[1:])
    if argv and argv[0] == "explain":
        from repro.harness.explain import explain_main
        return explain_main(argv[1:])
    if argv and argv[0] == "spans":
        from repro.harness.spans_cli import spans_main
        return spans_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.harness.replacement import bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "resume":
        from repro.durable import resume_main
        return resume_main(argv[1:])
    return main(argv)


if __name__ == "__main__":
    sys.exit(dispatch())
