"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness figure2 [--quick] [--benchmarks a,b,c]
    python -m repro.harness figure3
    python -m repro.harness handler100
    python -m repro.harness branch-vs-exception
    python -m repro.harness cc-vs-trap
    python -m repro.harness figure4
    python -m repro.harness sensitivity
    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness characterize [--benchmarks a,b]

``--quick`` shrinks run lengths by 4x for smoke testing; ``--json PATH``
additionally writes the figure2/figure3/figure4 results as JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import configs
from repro.harness import coherence_exp
from repro.harness import report
from repro.harness import runner


def _sizes(quick: bool):
    if quick:
        return dict(instructions=runner.DEFAULT_INSTRUCTIONS // 4,
                    warmup=runner.DEFAULT_WARMUP // 4)
    return dict(instructions=runner.DEFAULT_INSTRUCTIONS,
                warmup=runner.DEFAULT_WARMUP)


def _table1() -> str:
    lines = ["Table 1 — simulation parameters"]
    for key, spec in configs.MACHINES.items():
        core, mem = spec.core, spec.hierarchy
        lines += [
            f"\n[{spec.name}]",
            f"  issue width            {core.issue_width}",
            f"  functional units       {core.int_units} INT, {core.fp_units} FP, "
            f"{core.branch_units} Branch"
            + (f", {core.mem_units} Memory" if core.mem_units else ""),
            f"  reorder buffer         "
            + (str(core.rob_size) if key == "ooo" else "N/A"),
            f"  imul/idiv              {core.latencies.imul}/{core.latencies.idiv} cycles",
            f"  fdiv/fsqrt/other fp    {core.latencies.fdiv}/{core.latencies.fsqrt}/"
            f"{core.latencies.fp_other} cycles",
            f"  L1 D-cache             {mem.l1.size // 1024}KB, {mem.l1.assoc}-way",
            f"  L2 cache               {mem.l2.size // (1024 * 1024)}MB, {mem.l2.assoc}-way",
            f"  line size              {mem.l1.line_size}B",
            f"  L1->L2 / L1->mem       {mem.l1_to_l2_latency}/{mem.l1_to_mem_latency} cycles",
            f"  MSHRs / banks / fill   {mem.mshr_count} / {mem.data_banks} / {mem.fill_time}",
            f"  memory bandwidth       1 access per {mem.mem_cycles_per_access} cycles",
        ]
    return "\n".join(lines)


def _table2() -> str:
    from repro.coherence import METHOD_COSTS, TABLE2_MACHINE, AccessControlMethod
    machine = TABLE2_MACHINE
    lines = [
        "Table 2 — access-control machine and method parameters",
        f"  processors             {machine.processors}",
        f"  L1 cache / penalty     {machine.l1_size // 1024}KB / {machine.l1_miss_penalty} cycles",
        f"  L2 cache / penalty     {machine.l2_size // 1024}KB / {machine.l2_miss_penalty} cycles",
        f"  coherence unit         {machine.coherence_unit}B",
        f"  1-way message latency  {machine.message_latency} cycles",
    ]
    rc = METHOD_COSTS[AccessControlMethod.REFERENCE_CHECKING]
    ecc = METHOD_COSTS[AccessControlMethod.ECC]
    inf = METHOD_COSTS[AccessControlMethod.INFORMING]
    lines += [
        f"  reference checking     {rc.lookup}-cycle lookup, "
        f"{rc.state_change}-cycle state change",
        f"  ECC                    {ecc.read_invalid_fault}-cycle invalid read, "
        f"{ecc.write_readonly_page_fault}-cycle readonly-page write",
        f"  informing              {inf.lookup}-cycle lookup, "
        f"{inf.state_change}-cycle state change",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.harness",
                                     description=__doc__)
    parser.add_argument("experiment", choices=[
        "figure2", "figure3", "handler100", "branch-vs-exception",
        "cc-vs-trap", "figure4", "sensitivity", "table1", "table2",
        "characterize"])
    parser.add_argument("--quick", action="store_true",
                        help="4x shorter runs for smoke testing")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write results as JSON "
                             "(figure2/figure3/figure4)")
    args = parser.parse_args(argv)
    sizes = _sizes(args.quick)

    def maybe_export(payload: str) -> None:
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"results written to {args.json}")

    if args.experiment == "table1":
        print(_table1())
    elif args.experiment == "table2":
        print(_table2())
    elif args.experiment == "figure2":
        from repro.harness import export
        benchmarks = args.benchmarks.split(",") if args.benchmarks else None
        result = runner.figure2(benchmarks=benchmarks, **sizes)
        print(report.render_figure(result, "Figure 2 — generic miss handlers"))
        for note in report.summarize_claims(result):
            print(note)
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "figure3":
        from repro.harness import export
        result = runner.figure3(**sizes)
        print(report.render_figure(result, "Figure 3 — su2cor"))
        maybe_export(export.figure_to_json(result))
    elif args.experiment == "handler100":
        result = runner.handler100(**sizes)
        print(report.render_figure(
            result, "100-instruction handlers (paper: compress ~6x, "
                    "su2cor ~7x, ora ~2%)"))
    elif args.experiment == "branch-vs-exception":
        result = runner.branch_vs_exception(**sizes)
        print(report.render_figure(
            result, "Branch-like vs exception-like traps "
                    "(paper: +9%/+7% on compress)"))
    elif args.experiment == "cc-vs-trap":
        result = runner.cc_vs_trap(**sizes)
        print(report.render_figure(
            result, "Condition-code check vs per-reference MHAR set"))
    elif args.experiment == "figure4":
        from repro.harness import export
        result = coherence_exp.figure4()
        print(coherence_exp.render_figure4(result))
        maybe_export(export.figure4_to_json(result))
    elif args.experiment == "characterize":
        from repro.workloads import SPEC92, spec92_workload
        from repro.workloads.characterize import characterize, render_profile
        names = (args.benchmarks.split(",") if args.benchmarks
                 else sorted(SPEC92))
        limit = 10_000 if args.quick else 50_000
        for name in names:
            profile = characterize(spec92_workload(name).stream(limit),
                                   limit=limit)
            print(render_profile(name, profile))
            print()
    elif args.experiment == "sensitivity":
        points = coherence_exp.sensitivity()
        print("Sensitivity: comparator-to-informing ratios "
              "(higher = informing relatively better)")
        print(f"{'msg latency':>12} {'L1 size':>9} {'ref-check':>10} {'ECC':>8}")
        for point in points:
            print(f"{point.message_latency:>12} {point.l1_size // 1024:>8}K "
                  f"{point.reference_checking:>10.3f} {point.ecc:>8.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
