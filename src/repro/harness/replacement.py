"""``harness bench replacement``: the replacement-policy ablation grid.

Runs the baseline bar (label ``N``) for every (benchmark, policy) pair
through the exec engine — content-addressed, cacheable, resumable like
any figure grid — and tabulates cycles and L1 miss rate per policy with
deltas against LRU.  The default machine is ``lab`` (in-order core with
a 4-way 8KB L1): on the paper's direct-mapped in-order L1 every policy
is a no-op, and at 2-way tree-PLRU *is* LRU, so 4-way is the smallest
machine where the whole registry separates.

``--explain DIR`` additionally traces, for each benchmark, the LRU run
and the policy that deviates most from it (``repro.obs`` observer), and
writes each trace's ``harness explain`` analysis alongside — the
mechanism diagnosis for why that pair differs.  The committed artifact
``results/replacement_ablation.json`` is produced by::

    python -m repro.harness bench replacement --quick \\
        --benchmarks compress,espresso,su2cor,ora \\
        --explain results/golden/explain
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

#: Default ablation workloads: two miss-heavy integer codes, a streaming
#: FP code, and a nearly miss-free control.
DEFAULT_BENCHMARKS = ("compress", "espresso", "su2cor", "ora")
DEFAULT_MACHINE = "lab"
DEFAULT_OUT = "results/replacement_ablation.json"


def run_ablation(benchmarks, policies, machine: str, instructions: int,
                 warmup: int, seed: int = 0, engine=None
                 ) -> Dict[str, Any]:
    """Run the grid and fold it into the ablation payload."""
    from repro.exec import ExecOptions, JobRunner, SimJob

    if engine is None:
        engine = JobRunner(ExecOptions(jobs=1, cache=False))
    jobs = [
        SimJob.bar(benchmark=benchmark, machine=machine, label="N",
                   instructions=instructions, warmup=warmup, seed=seed,
                   policy=policy)
        for benchmark in benchmarks
        for policy in policies
    ]
    results = engine.run(jobs)
    cells: Dict[str, Dict[str, Any]] = {}
    for job, result in zip(jobs, results):
        if result is None:
            continue
        policy = job.config_dict().get("policy", "lru")
        cells.setdefault(job.benchmark, {})[policy] = {
            "cycles": result["cycles"],
            "l1_miss_rate": result["l1_miss_rate"],
        }
    for benchmark, row in cells.items():
        base = row.get("lru", {}).get("cycles")
        for policy, cell in row.items():
            cell["delta_vs_lru"] = (
                round(cell["cycles"] / base - 1.0, 6) if base else None)
    spread = {
        benchmark: round(max(abs(cell["delta_vs_lru"] or 0.0)
                             for cell in row.values()), 6)
        for benchmark, row in cells.items()
    }
    return {
        "kind": "replacement_ablation",
        "machine": machine,
        "instructions": instructions,
        "warmup": warmup,
        "seed": seed,
        "policies": list(policies),
        "benchmarks": list(benchmarks),
        "cells": cells,
        "spread": spread,
    }


def render_ablation(payload: Dict[str, Any]) -> str:
    """ASCII table: one row per benchmark, one column per policy."""
    policies = payload["policies"]
    lines = [
        f"replacement ablation — machine {payload['machine']}, "
        f"label N, {payload['instructions']} instructions",
        f"{'benchmark':>10} " + " ".join(f"{p:>14}" for p in policies),
    ]
    for benchmark in payload["benchmarks"]:
        row = payload["cells"].get(benchmark, {})
        fields = []
        for policy in policies:
            cell = row.get(policy)
            if cell is None:
                fields.append(f"{'—':>14}")
            elif policy == "lru" or cell["delta_vs_lru"] is None:
                fields.append(f"{cell['cycles']:>14}")
            else:
                fields.append(
                    f"{cell['cycles']:>7} {100 * cell['delta_vs_lru']:+5.1f}%")
        lines.append(f"{benchmark:>10} " + " ".join(fields))
    lines.append("cells show cycles (and % vs lru); spread per benchmark: "
                 + ", ".join(f"{b}={100 * s:.1f}%"
                             for b, s in payload["spread"].items()))
    return "\n".join(lines)


def _most_different_policy(row: Dict[str, Dict[str, Any]]) -> Optional[str]:
    best, best_delta = None, 0.0
    for policy, cell in row.items():
        delta = abs(cell.get("delta_vs_lru") or 0.0)
        if policy != "lru" and delta >= best_delta:
            best, best_delta = policy, delta
    return best


def write_explain_artifacts(payload: Dict[str, Any], directory: str,
                            seed: int = 0,
                            trace_threshold: float = 0.01) -> List[str]:
    """Trace + explain the (lru, most-different-policy) pair per benchmark.

    Reruns those cells with the :mod:`repro.obs` observer attached
    (results stay digit-exact; only the trace is new) and writes the
    matching ``*.explain.json`` analyses under *directory*.  The raw
    ``<benchmark>_<machine>_N.<policy>.events.jsonl`` traces (hundreds
    of KB each) are kept only for benchmarks whose ablation spread
    reaches *trace_threshold* — those are the cells the diagnosis has
    to explain.  Returns the written paths.
    """
    import os

    from repro.harness.explain import analyze_trace
    from repro.harness.runner import bar_config, run_bar
    from repro.obs import Observer
    from repro.obs.export import write_jsonl

    os.makedirs(directory, exist_ok=True)
    machine = payload["machine"]
    written: List[str] = []
    for benchmark in payload["benchmarks"]:
        row = payload["cells"].get(benchmark, {})
        rival = _most_different_policy(row)
        keep_trace = payload["spread"].get(benchmark, 0.0) >= trace_threshold
        policies = ["lru"] + ([rival] if rival else [])
        for policy in policies:
            observer = Observer(trace=True)
            run_bar(benchmark, machine, bar_config("N"),
                    payload["instructions"], payload["warmup"], seed=seed,
                    observe=observer, policy=policy)
            stem = f"{benchmark}_{machine}_N.{policy}"
            analysis = analyze_trace(observer.events)
            analysis["source"] = {"benchmark": benchmark,
                                  "machine": machine, "label": "N",
                                  "policy": policy,
                                  "delta_vs_lru": row.get(policy, {})
                                  .get("delta_vs_lru")}
            if keep_trace:
                trace_path = os.path.join(directory,
                                          f"{stem}.events.jsonl")
                write_jsonl(observer.events, trace_path)
                written.append(trace_path)
            explain_path = os.path.join(directory, f"{stem}.explain.json")
            with open(explain_path, "w") as fh:
                json.dump(analysis, fh, indent=2, sort_keys=True)
                fh.write("\n")
            written.append(explain_path)
    return written


def bench_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness bench",
        description="Committed ablation grids over simulator knobs.")
    parser.add_argument("what", choices=["replacement"],
                        help="which ablation to run")
    parser.add_argument("--benchmarks",
                        default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated SPEC92 benchmark subset")
    parser.add_argument("--policies", default=None,
                        help="comma-separated policy subset (default: "
                             "the full registry)")
    parser.add_argument("--machine", default=DEFAULT_MACHINE,
                        help="machine key (default lab: 4-way L1, the "
                             "smallest machine where all policies differ)")
    parser.add_argument("--quick", action="store_true",
                        help="4x shorter runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--progress", action="store_true")
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH",
                        help=f"ablation JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--explain", default=None, metavar="DIR",
                        help="also trace + explain the lru/most-different "
                             "pair per benchmark under DIR")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from repro.exec import ExecOptions, JobRunner, atomic_write_json
    from repro.harness.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
    from repro.memory import available_policies

    benchmarks = [b for b in args.benchmarks.split(",") if b]
    policies = (args.policies.split(",") if args.policies
                else list(available_policies()))
    unknown = sorted(set(policies) - set(available_policies()))
    if unknown:
        parser.error(f"unknown policies {unknown}; choose from "
                     f"{available_policies()}")
    if "lru" not in policies:
        policies.insert(0, "lru")  # deltas need the reference column
    divisor = 4 if args.quick else 1
    engine = JobRunner(ExecOptions(
        jobs=args.jobs, cache=not args.no_cache, progress=args.progress,
        run_meta={"experiment": "bench-replacement", "seed": args.seed}))
    payload = run_ablation(
        benchmarks, policies, args.machine,
        DEFAULT_INSTRUCTIONS // divisor, DEFAULT_WARMUP // divisor,
        seed=args.seed, engine=engine)
    print(render_ablation(payload))
    import os
    parent = os.path.dirname(os.path.abspath(args.out))
    os.makedirs(parent, exist_ok=True)
    atomic_write_json(args.out, payload)
    print(f"ablation written to {args.out}")
    if args.explain:
        written = write_explain_artifacts(payload, args.explain,
                                          seed=args.seed)
        print(f"explain artifacts ({len(written)}) written under "
              f"{args.explain}")
    print(engine.stats.summary(), file=sys.stderr)
    return 0
