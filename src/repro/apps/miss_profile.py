"""The miss-profiling experiment: [HMMS95] per-reference miss rates.

Wraps :class:`repro.apps.monitoring.MissProfiler` — the paper's §4.1.1
profiling tool — into a self-contained experiment: run the benchmark
once bare for a cycle baseline, once with the ~10-instruction hash-table
handler attached (plus the instrumentation-free reference-counting
stream pass), and report the per-static-reference profile next to what
gathering it cost.  The handler hashes the MHRR return address into a
power-of-two table; collisions chain and cost a few extra instructions,
and the collision count is part of the result — it is the profiler's own
accuracy/overhead dial.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.monitoring import MissProfiler


def run_miss_profile(
    benchmark: str,
    machine: str,
    instructions: int,
    warmup: int,
    seed: int = 0,
    policy: str = "lru",
    table_size: int = 1024,
    top: int = 8,
) -> Dict[str, Any]:
    """Profile per-static-reference miss rates for one benchmark.

    Returns a JSON-able dict: baseline vs instrumented cycles, the
    profiler's table accounting, and the *top* hottest static references
    as ``{"pc", "misses", "miss_rate"}`` rows (pc rendered in hex).
    """
    from repro.apps.experiments import run_cell

    _, base = run_cell(benchmark, machine, None, instructions, warmup,
                       seed=seed, policy=policy)
    profiler = MissProfiler(table_size=table_size)
    core, stats = run_cell(benchmark, machine,
                           profiler.informing_config(), instructions,
                           warmup, seed=seed, policy=policy,
                           stream_wrap=profiler.counting_stream)
    profile = profiler.profile
    hottest = [{"pc": f"0x{pc:x}", "misses": misses,
                "miss_rate": round(rate, 4)}
               for pc, misses, rate in profile.hottest(top)]
    return {
        "experiment": "miss_profile",
        "benchmark": benchmark,
        "machine": machine,
        "policy": policy,
        "baseline_cycles": base.cycles,
        "cycles": stats.cycles,
        "overhead": round(stats.cycles / base.cycles, 4) if base.cycles
        else 0.0,
        "handler_invocations": stats.handler_invocations,
        "handler_instructions": stats.handler_instructions,
        "l1_miss_rate": core.hierarchy.stats.l1_miss_rate,
        "total_misses": profile.total_misses,
        "static_references": len(profile.references),
        "table_size": profile.table_size,
        "hash_collisions": profile.hash_collisions,
        "hottest": hottest,
    }
