"""Performance monitoring with informing memory operations (§4.1.1).

Two tools:

* :class:`MissCounter` — the minimal client: a single one-instruction
  handler that increments a counter.  Total misses, at almost no cost.
* :class:`MissProfiler` — the paper's per-reference profiling tool
  ([HMMS95]): one shared handler of roughly ten instructions that hashes
  the MHRR return address into a table and increments that entry, yielding
  *per static reference* miss counts.  Reference execution counts come
  from instrumentation-free stream counting (the equivalent of the basic-
  block counts a binary rewriter provides), giving per-reference miss
  rates.

Both expose ``handler`` (attach to a core via ``InformingConfig``) and
``observer`` so the measured counts and the modelled handler cost stay in
lockstep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.handlers import CallbackHandler, GenericHandler
from repro.core.mechanisms import InformingConfig, Mechanism
from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass


class MissCounter:
    """Count primary-cache misses with a 1-instruction handler."""

    def __init__(self, track_addresses: bool = False) -> None:
        self.misses = 0
        self.by_pc: Counter = Counter()
        #: miss counts by data address (for page/conflict analysis);
        #: opt-in because it grows with the footprint.
        self.track_addresses = track_addresses
        self.by_addr: Counter = Counter()
        self.handler = CallbackHandler(self._on_miss,
                                       cost_model=GenericHandler(1))

    def _on_miss(self, ref: DynInst) -> None:
        self.misses += 1
        self.by_pc[ref.pc] += 1
        if self.track_addresses:
            self.by_addr[ref.addr] += 1
        return None  # use the cost model's body

    def informing_config(self) -> InformingConfig:
        return InformingConfig(mechanism=Mechanism.TRAP, handler=self.handler)


@dataclass
class MissProfile:
    """Per-static-reference profiling results."""

    misses: Dict[int, int] = field(default_factory=dict)
    references: Dict[int, int] = field(default_factory=dict)
    hash_collisions: int = 0
    table_size: int = 0

    def miss_rate(self, pc: int) -> float:
        refs = self.references.get(pc, 0)
        if refs == 0:
            return 0.0
        return self.misses.get(pc, 0) / refs

    def hottest(self, count: int = 10) -> List[Tuple[int, int, float]]:
        """Top static references by miss count: (pc, misses, miss_rate)."""
        ranked = sorted(self.misses.items(), key=lambda kv: -kv[1])
        return [(pc, n, self.miss_rate(pc)) for pc, n in ranked[:count]]

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())


class MissProfiler:
    """The [HMMS95] per-reference miss profiler.

    The modelled handler is the paper's: ~10 instructions that hash the
    return address (available in the MHRR) and bump a table entry, with a
    couple of extra instructions when the hash probe collides.  The Python
    side keeps the real table so results are exact.
    """

    def __init__(self, table_size: int = 1024) -> None:
        if table_size & (table_size - 1) or table_size < 2:
            raise ValueError("table size must be a power of two >= 2")
        self.table_size = table_size
        self.profile = MissProfile(table_size=table_size)
        self._table: Dict[int, int] = {}  # slot -> pc currently occupying it
        self.handler = CallbackHandler(self._on_miss)
        self._hit_cost = GenericHandler(10)
        self._probe_cost = GenericHandler(13)

    def _on_miss(self, ref: DynInst):
        profile = self.profile
        profile.misses[ref.pc] = profile.misses.get(ref.pc, 0) + 1
        slot = (ref.pc >> 2) & (self.table_size - 1)
        occupant = self._table.get(slot)
        if occupant is None or occupant == ref.pc:
            self._table[slot] = ref.pc
            return self._hit_cost.instructions(ref)
        # Collision: the handler chains to an overflow entry (extra work).
        profile.hash_collisions += 1
        return self._probe_cost.instructions(ref)

    def informing_config(self) -> InformingConfig:
        return InformingConfig(mechanism=Mechanism.TRAP, handler=self.handler)

    def counting_stream(self, stream: Iterable[DynInst]
                        ) -> Iterator[DynInst]:
        """Pass-through that tallies reference counts per static pc.

        Equivalent to the basic-block execution counts a binary rewriter
        gathers; costs nothing in simulated time.
        """
        refs = self.profile.references
        for inst in stream:
            if inst.op in (OpClass.LOAD, OpClass.STORE) and not inst.handler_code:
                refs[inst.pc] = refs.get(inst.pc, 0) + 1
            yield inst
