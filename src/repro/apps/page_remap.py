"""Conflict-driven page remapping (the paper's intro, after [BLRC94]).

The introduction lists page coloring/migration as an operating-system use
of memory-behaviour feedback: "Operating systems have used coarse-grained
system information to reduce latencies by adjusting page coloring and
migration strategies".  Informing memory operations supply exactly the
missing fine-grained signal.  This module closes that loop:

1. profile per-page miss counts with the informing profiler;
2. identify hot pages that share a *cache color* (their page frames map to
   the same region of a physically-indexed direct-mapped cache — su2cor's
   pathology at page granularity);
3. build a new page mapping that spreads the hot pages across colors;
4. apply the mapping to the reference stream (the simulation analogue of
   the OS recoloring the page frames).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.apps.monitoring import MissProfile
from repro.isa.instructions import DynInst
from repro.memory.config import CacheConfig


class PageConflictAnalyzer:
    """Aggregate an informing miss profile at page/color granularity."""

    def __init__(self, cache: CacheConfig, page_size: int = 4096) -> None:
        if page_size % cache.line_size:
            raise ValueError("page size must be a multiple of the line size")
        if cache.size % page_size:
            raise ValueError(
                "cache size must be a multiple of the page size for "
                "page-granularity coloring")
        self.cache = cache
        self.page_size = page_size
        self.colors = cache.size // page_size
        self.miss_by_page: Counter = Counter()

    def page_of(self, addr: int) -> int:
        return addr // self.page_size

    def color_of(self, page: int) -> int:
        return page % self.colors

    def note_miss(self, addr: int, count: int = 1) -> None:
        self.miss_by_page[self.page_of(addr)] += count

    def note_profile(self, misses_by_addr: Dict[int, int]) -> None:
        """Fold in address->miss-count data (e.g. from a MissCounter keyed
        on reference addresses)."""
        for addr, count in misses_by_addr.items():
            self.note_miss(addr, count)

    def hot_pages(self, threshold: int = 1) -> List[Tuple[int, int]]:
        """(page, misses) pairs at or above *threshold*, hottest first."""
        return sorted(
            ((page, count) for page, count in self.miss_by_page.items()
             if count >= threshold),
            key=lambda item: -item[1])

    def color_pressure(self) -> Dict[int, int]:
        """Total profiled misses landing on each cache color."""
        pressure: Dict[int, int] = {}
        for page, count in self.miss_by_page.items():
            color = self.color_of(page)
            pressure[color] = pressure.get(color, 0) + count
        return pressure

    def build_remap(self, threshold: int = 1) -> Dict[int, int]:
        """Greedy recoloring: hottest pages first onto the least-loaded
        color; returns an old-page -> new-page mapping.

        New frames are drawn from a fresh region so remapped pages never
        collide with unmapped ones (the OS would pick free frames with the
        desired color; any frame with the right color behaves identically
        in a physically-indexed cache).
        """
        remap: Dict[int, int] = {}
        load: Dict[int, int] = {color: 0 for color in range(self.colors)}
        if not self.miss_by_page:
            return remap
        fresh_base = (max(self.miss_by_page) + self.colors + 1)
        fresh_base -= fresh_base % self.colors  # color-align the pool
        next_row = 0
        for page, misses in self.hot_pages(threshold):
            color = min(load, key=lambda c: load[c])
            load[color] += misses
            remap[page] = fresh_base + next_row * self.colors + color
            next_row += 1
        return remap


def remap_stream(stream: Iterable[DynInst], remap: Dict[int, int],
                 page_size: int = 4096) -> Iterator[DynInst]:
    """Apply a page mapping to every data address in *stream*."""
    if not remap:
        yield from stream
        return
    for inst in stream:
        if inst.addr is None or inst.handler_code:
            yield inst
            continue
        page = inst.addr // page_size
        new_page = remap.get(page)
        if new_page is None:
            yield inst
        else:
            new_addr = new_page * page_size + (inst.addr % page_size)
            yield DynInst(inst.op, dest=inst.dest, srcs=inst.srcs,
                          addr=new_addr, taken=inst.taken, pc=inst.pc,
                          informing=inst.informing)
