"""The informing-op application lab: named, cacheable experiments.

The paper's §4.1 clients (:mod:`repro.apps.monitoring`,
:mod:`repro.apps.prefetching`, :mod:`repro.apps.bypass`) are library
classes; this module promotes three of them into *experiments* — named
entries in :data:`APP_EXPERIMENTS` that run a benchmark with the client
attached, compare against an uninstrumented baseline, and return one
plain JSON-able dict.  That dict shape is what makes them schedulable:
``SimJob.app`` wraps an experiment invocation as an exec-engine job
(content-addressed, cacheable, resumable), and ``python -m repro.harness
apps`` is the CLI front end.

Experiments:

* ``miss_profile`` — the [HMMS95] per-static-reference miss profiler
  (:class:`~repro.apps.monitoring.MissProfiler`): which loads miss, how
  often, and what the ~10-instruction hash-table handler costs.
* ``prefetch_schedule`` — software prefetch scheduling from the miss
  handler (:class:`~repro.apps.prefetching.AdaptivePrefetcher`): stride
  prediction per static reference, prefetches launched only on misses.
* ``bypass`` — adaptive cache bypass
  (:class:`~repro.apps.bypass.AdaptiveBypassController`): the handler
  classifies streaming references and routes their fills around the L1.

Every experiment takes the same signature
``(benchmark, machine, instructions, warmup, seed, policy)`` and is
deterministic, so results cache under the same content-address rules as
figure bars.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

#: Default run sizes mirror the figure bars (see repro.harness.runner).
DEFAULT_MACHINE = "lab"


def run_cell(
    benchmark: str,
    machine: str,
    informing,
    instructions: int,
    warmup: int,
    seed: int = 0,
    policy: str = "lru",
    stream_wrap: Optional[Callable] = None,
    bypass_filter: Optional[Callable[[int], bool]] = None,
) -> Tuple[Any, Any]:
    """Run one (benchmark, machine) cell and return ``(core, stats)``.

    The shared single-cell runner behind every app experiment: same
    stream bound, warm-up discipline and seed derivation as
    :func:`repro.harness.runner.run_bar`, plus two attachment points the
    clients need — *stream_wrap* (e.g. a profiler's counting pass) and
    *bypass_filter* (installed as ``hierarchy.bypass_filter``).
    """
    from repro.harness.configs import MACHINES, build_core
    from repro.memory import derive_seed
    from repro.workloads import spec92_workload

    spec = MACHINES[machine]
    core = build_core(spec, informing=informing,
                      replacement_policy=policy,
                      replacement_seed=derive_seed(seed))
    if bypass_filter is not None:
        core.hierarchy.bypass_filter = bypass_filter
    workload = spec92_workload(benchmark, seed_offset=seed)
    stream = workload.stream(8 * (instructions + warmup) + 100_000)
    if stream_wrap is not None:
        stream = stream_wrap(stream)
    stats = core.run(stream, max_app_insts=instructions + warmup,
                     warmup_insts=warmup)
    return core, stats


def run_prefetch_schedule(
    benchmark: str,
    machine: str,
    instructions: int,
    warmup: int,
    seed: int = 0,
    policy: str = "lru",
    degree: int = 2,
) -> Dict[str, Any]:
    """Software prefetch scheduling from the miss handler (§4.1.2).

    The handler predicts a stride per static reference from its recent
    miss addresses and launches *degree* non-binding prefetches ahead of
    the stream — overhead is only paid where the code actually misses.
    """
    from repro.apps.prefetching import AdaptivePrefetcher
    from repro.harness.configs import MACHINES

    base_core, base = run_cell(benchmark, machine, None, instructions,
                               warmup, seed=seed, policy=policy)
    line_size = MACHINES[machine].hierarchy.l1.line_size
    prefetcher = AdaptivePrefetcher(degree=degree, line_size=line_size)
    core, stats = run_cell(benchmark, machine,
                           prefetcher.informing_config(), instructions,
                           warmup, seed=seed, policy=policy)
    return {
        "experiment": "prefetch_schedule",
        "benchmark": benchmark,
        "machine": machine,
        "policy": policy,
        "baseline_cycles": base.cycles,
        "cycles": stats.cycles,
        "speedup": round(base.cycles / stats.cycles, 4) if stats.cycles
        else 0.0,
        "prefetches_launched": prefetcher.launched,
        "handler_invocations": stats.handler_invocations,
        "handler_instructions": stats.handler_instructions,
        "miss_rate_baseline": base_core.hierarchy.stats.l1_miss_rate,
        "miss_rate": core.hierarchy.stats.l1_miss_rate,
    }


def _miss_profile(benchmark, machine, instructions, warmup,
                  seed=0, policy="lru"):
    from repro.apps.miss_profile import run_miss_profile
    return run_miss_profile(benchmark, machine, instructions, warmup,
                            seed=seed, policy=policy)


def _bypass(benchmark, machine, instructions, warmup, seed=0, policy="lru"):
    from repro.apps.bypass import run_adaptive_bypass
    return run_adaptive_bypass(benchmark, machine, instructions, warmup,
                               seed=seed, policy=policy)


#: name -> experiment function, all sharing the run_cell signature.
APP_EXPERIMENTS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "miss_profile": _miss_profile,
    "prefetch_schedule": run_prefetch_schedule,
    "bypass": _bypass,
}


def run_app_experiment(
    name: str,
    benchmark: str,
    machine: str = DEFAULT_MACHINE,
    instructions: int = 30_000,
    warmup: int = 15_000,
    seed: int = 0,
    policy: str = "lru",
) -> Dict[str, Any]:
    """Run one registered app experiment and return its result dict.

    Raises:
        ValueError: for an unregistered experiment name.
    """
    try:
        experiment = APP_EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown app experiment {name!r}; choose from "
            f"{sorted(APP_EXPERIMENTS)}") from None
    return experiment(benchmark, machine, instructions, warmup,
                      seed=seed, policy=policy)
