"""Software-controlled multithreading: context-switch-on-miss (§4.1.3).

The paper describes — but does not evaluate — using a single miss handler
to save the current thread's registers and resume another thread while the
miss is outstanding, with the handler length (tens of instructions)
depending on how much register state must be spilled.  This module provides
the corresponding coarse-grained timing model on top of the real memory
substrate: a single-issue processor front end running N thread traces over
one shared :class:`~repro.memory.hierarchy.MemoryHierarchy`, where a
primary miss triggers a software switch costing ``switch_cost``
instructions (the handler), against two baselines — a single thread, and
blocking on every miss with no switching.

The model answers the question the paper raises: when does the switch
overhead pay for itself against the latency it hides?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.isa.instructions import DynInst
from repro.memory.hierarchy import MemoryHierarchy


@dataclass
class MultithreadingResult:
    """Outcome of one multithreaded simulation."""

    cycles: int
    instructions: int
    switches: int
    switch_overhead_instructions: int
    threads: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class _Thread:
    __slots__ = ("stream", "blocked_until", "done", "executed")

    def __init__(self, stream: Iterator[DynInst]) -> None:
        self.stream = stream
        self.blocked_until = 0
        self.done = False
        self.executed = 0


def simulate_multithreading(
    thread_factories: List[Callable[[], Iterator[DynInst]]],
    hierarchy: MemoryHierarchy,
    max_instructions: int = 50_000,
    switch_cost: int = 24,
    switch_on_miss: bool = True,
    secondary_only: bool = True,
) -> MultithreadingResult:
    """Run N threads on a single-issue core with switch-on-miss.

    Args:
        thread_factories: one stream factory per thread.
        hierarchy: shared memory hierarchy (fresh per experiment).
        max_instructions: total application instructions to execute.
        switch_cost: handler length — instructions burned per switch
            (register save/restore; the paper estimates a handful to over
            100 depending on compiler support).
        switch_on_miss: False gives the blocking baseline (a miss stalls
            the processor until the data returns).
        secondary_only: switch only on secondary-cache misses — the
            paper's first optimization, since a 12-cycle primary miss is
            cheaper than the switch itself.
    """
    threads = [_Thread(factory()) for factory in thread_factories]
    if not threads:
        raise ValueError("need at least one thread")
    cycle = 0
    executed = 0
    switches = 0
    overhead = 0
    current = 0

    def next_runnable(now: int) -> Optional[int]:
        for offset in range(1, len(threads) + 1):
            index = (current + offset) % len(threads)
            thread = threads[index]
            if not thread.done and thread.blocked_until <= now:
                return index
        return None

    while executed < max_instructions:
        thread = threads[current]
        if thread.done or thread.blocked_until > cycle:
            runnable = next_runnable(cycle)
            if runnable is None:
                pending = [t.blocked_until for t in threads
                           if not t.done and t.blocked_until > cycle]
                if not pending and all(
                        t.done or t.blocked_until <= cycle for t in threads):
                    break  # every thread exhausted
                cycle = min(pending) if pending else cycle + 1
                continue
            current = runnable
            thread = threads[current]
        inst = next(thread.stream, None)
        if inst is None:
            thread.done = True
            if all(t.done for t in threads):
                break
            continue
        thread.executed += 1
        executed += 1
        cycle += 1
        if not inst.is_mem:
            continue
        result = hierarchy.access(inst.addr, inst.is_store, cycle)
        while result is None:  # MSHR full: stall a cycle and retry
            cycle += 1
            result = hierarchy.access(inst.addr, inst.is_store, cycle)
        if not result.l1_miss or inst.is_store:
            continue
        miss_latency = result.ready_cycle - cycle
        is_secondary_level = result.level == 3
        should_switch = (switch_on_miss
                         and (is_secondary_level or not secondary_only)
                         and len(threads) > 1)
        if should_switch:
            thread.blocked_until = result.ready_cycle
            switches += 1
            overhead += switch_cost
            cycle += switch_cost  # the handler runs on this processor
            nxt = next_runnable(cycle)
            if nxt is not None:
                current = nxt
        else:
            cycle += max(0, miss_latency)

    return MultithreadingResult(
        cycles=cycle,
        instructions=executed,
        switches=switches,
        switch_overhead_instructions=overhead,
        threads=len(threads),
    )
