"""Software techniques built on informing memory operations (Section 4.1).

* :mod:`repro.apps.monitoring` — miss counting and per-static-reference
  miss-rate profiling (the HMMS95 tool: a ~10-instruction hash-table
  handler keyed on the MHRR return address).
* :mod:`repro.apps.prefetching` — software-controlled prefetching: handlers
  that launch prefetches only when the code is actually missing, plus
  profile-guided static prefetch insertion.
* :mod:`repro.apps.multithreading` — software context-switch-on-miss
  multithreading (coarse-grained timing model; the paper describes but
  does not evaluate this client).
* :mod:`repro.apps.sampling` — duty-cycled profiling, the §4.2.2 remedy
  for expensive handlers.
* :mod:`repro.apps.multiversion` — the §4.1.2 multi-version code option:
  informing feedback selects between plain and prefetching loop versions.
* :mod:`repro.apps.page_remap` — conflict-driven page recoloring, the
  operating-system client from the paper's introduction.
* :mod:`repro.apps.bypass` — adaptive cache bypass: the miss handler
  classifies streaming references and routes their fills around the L1.
* :mod:`repro.apps.experiments` — the application lab: the registry of
  named, cacheable experiments behind ``python -m repro.harness apps``.
"""

from repro.apps.monitoring import MissCounter, MissProfile, MissProfiler
from repro.apps.prefetching import (
    AdaptivePrefetcher,
    insert_static_prefetches,
)
from repro.apps.multithreading import (
    MultithreadingResult,
    simulate_multithreading,
)
from repro.apps.sampling import SamplingController, SamplingProfiler
from repro.apps.multiversion import AdaptiveVersionSelector
from repro.apps.page_remap import PageConflictAnalyzer, remap_stream
from repro.apps.bypass import AdaptiveBypassController
from repro.apps.experiments import APP_EXPERIMENTS, run_app_experiment

__all__ = [
    "APP_EXPERIMENTS",
    "AdaptiveBypassController",
    "run_app_experiment",
    "MissCounter",
    "MissProfiler",
    "MissProfile",
    "AdaptivePrefetcher",
    "insert_static_prefetches",
    "MultithreadingResult",
    "simulate_multithreading",
    "SamplingController",
    "SamplingProfiler",
    "AdaptiveVersionSelector",
    "PageConflictAnalyzer",
    "remap_stream",
]
