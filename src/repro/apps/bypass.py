"""Adaptive cache bypass driven by the informing miss handler.

A streaming reference — one whose misses never revisit a line — gains
nothing from installing its fills in the L1 but still evicts somebody
else's reusable line.  :class:`AdaptiveBypassController` is the software
client that fixes this with informing operations alone: the miss handler
counts misses per static reference (the pc is in the MHRR), and once a
reference has missed ``classify_after`` times with almost every miss on
a fresh line, it is classified *streaming*.  Each later miss at a
streaming pc marks its line for bypass, and the hierarchy's
``bypass_filter`` hook (consulted when the fill data arrives, see
:meth:`repro.memory.MemoryHierarchy._apply_fills`) routes that fill
around the L1 — the line stays in the L2, so a prompt re-reference is a
cheap L2 hit rather than a memory access.

:func:`run_adaptive_bypass` is the registered experiment: baseline vs
bypass-enabled run under the same replacement policy.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.handlers import CallbackHandler, GenericHandler
from repro.core.mechanisms import InformingConfig, Mechanism
from repro.isa.instructions import DynInst


class AdaptiveBypassController:
    """Classify streaming references in the handler; bypass their fills.

    Args:
        line_size: cache line size in bytes (bypass granularity).
        classify_after: misses a pc must accumulate before judgement.
        reuse_cutoff: classify streaming when the fraction of repeat-line
            misses stays below this (0.25 = fewer than a quarter of the
            pc's misses revisit a line it already missed on).
        handler_cost: modelled handler length in instructions — a count,
            a table update and a conditional mark.
    """

    def __init__(self, line_size: int = 32, classify_after: int = 8,
                 reuse_cutoff: float = 0.25,
                 handler_cost: int = 6) -> None:
        if line_size & (line_size - 1):
            raise ValueError("line size must be a power of two")
        if classify_after < 1:
            raise ValueError("classify_after must be >= 1")
        self.line_size = line_size
        self.classify_after = classify_after
        self.reuse_cutoff = reuse_cutoff
        self._line_mask = ~(line_size - 1)
        self._misses: Dict[int, int] = {}        # pc -> miss count
        self._seen: Dict[int, set] = {}          # pc -> distinct miss lines
        self.streaming_pcs: set = set()
        self._bypass_lines: set = set()          # marked, awaiting their fill
        self.marked = 0                          # lines marked for bypass
        self.bypassed = 0                        # fills actually bypassed
        self.handler = CallbackHandler(
            self._on_miss, cost_model=GenericHandler(handler_cost))

    def _on_miss(self, ref: DynInst):
        pc = ref.pc
        line = ref.addr & self._line_mask
        count = self._misses.get(pc, 0) + 1
        self._misses[pc] = count
        if pc in self.streaming_pcs:
            # Mark the in-flight line: the fill for this very miss is
            # still travelling, so the filter catches it on arrival.
            self._bypass_lines.add(line)
            self.marked += 1
            return None
        seen = self._seen.setdefault(pc, set())
        # Bounded: once the set is larger than the judgement needs, the
        # distinct/total ratio can only be refined, not flipped.
        if len(seen) <= 4 * self.classify_after:
            seen.add(line)
        if count >= self.classify_after:
            repeat_fraction = 1.0 - len(seen) / count
            if repeat_fraction < self.reuse_cutoff:
                self.streaming_pcs.add(pc)
        return None  # the cost model supplies the handler body

    def should_bypass(self, byte_addr: int) -> bool:
        """The ``hierarchy.bypass_filter`` hook: consume a pending mark."""
        line = byte_addr & self._line_mask
        if line in self._bypass_lines:
            self._bypass_lines.remove(line)
            self.bypassed += 1
            return True
        return False

    def informing_config(self) -> InformingConfig:
        return InformingConfig(mechanism=Mechanism.TRAP,
                               handler=self.handler)


def run_adaptive_bypass(
    benchmark: str,
    machine: str,
    instructions: int,
    warmup: int,
    seed: int = 0,
    policy: str = "lru",
    classify_after: int = 8,
) -> Dict[str, Any]:
    """Baseline vs bypass-enabled run of one benchmark.

    Both runs use the same replacement *policy*; the delta isolates what
    keeping streams out of the L1 buys (or costs — the handler itself
    executes instructions) on this workload.
    """
    from repro.apps.experiments import run_cell
    from repro.harness.configs import MACHINES

    base_core, base = run_cell(benchmark, machine, None, instructions,
                               warmup, seed=seed, policy=policy)
    line_size = MACHINES[machine].hierarchy.l1.line_size
    controller = AdaptiveBypassController(line_size=line_size,
                                          classify_after=classify_after)
    core, stats = run_cell(benchmark, machine,
                           controller.informing_config(), instructions,
                           warmup, seed=seed, policy=policy,
                           bypass_filter=controller.should_bypass)
    return {
        "experiment": "bypass",
        "benchmark": benchmark,
        "machine": machine,
        "policy": policy,
        "baseline_cycles": base.cycles,
        "cycles": stats.cycles,
        "speedup": round(base.cycles / stats.cycles, 4) if stats.cycles
        else 0.0,
        "streaming_pcs": len(controller.streaming_pcs),
        "lines_marked": controller.marked,
        "bypassed_fills": core.hierarchy.bypassed_fills,
        "handler_invocations": stats.handler_invocations,
        "handler_instructions": stats.handler_instructions,
        "miss_rate_baseline": base_core.hierarchy.stats.l1_miss_rate,
        "miss_rate": core.hierarchy.stats.l1_miss_rate,
    }
