"""Software-controlled prefetching with informing operations (§4.1.2).

Two of the paper's three options are implemented:

* :class:`AdaptivePrefetcher` — prefetches live *in the miss handler*, so
  prefetch overhead is only paid when the code is actually missing.  The
  handler predicts a stride per static reference from its recent miss
  addresses and launches a few non-binding prefetches ahead of the
  stream.
* :func:`insert_static_prefetches` — the recompile-from-profile option: a
  stream rewriter that plants a prefetch ``distance`` lines ahead of every
  reference whose profiled miss count crosses a threshold (the profile
  typically comes from :class:`~repro.apps.monitoring.MissProfiler`).

The third option (multi-version code selected at run time) reduces to the
same two primitives and is exercised in the example scripts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set

from repro.core.handlers import CallbackHandler
from repro.core.mechanisms import InformingConfig, Mechanism
from repro.isa.instructions import DynInst, mhrr_jump, prefetch
from repro.isa.opclass import OpClass


class AdaptivePrefetcher:
    """Launch prefetches from the miss handler, adapting per reference.

    Args:
        degree: prefetches issued per handler invocation.
        line_size: cache line size (prefetch granularity).
        handler_pc: code address of the handler (for I-fetch modelling).
    """

    def __init__(self, degree: int = 2, line_size: int = 32,
                 handler_pc: int = 0x0040_3000) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self.degree = degree
        self.line_size = line_size
        self.handler_pc = handler_pc
        self.launched = 0
        self.invocations = 0
        self._last_miss: Dict[int, int] = {}   # pc -> last miss address
        self._stride: Dict[int, int] = {}      # pc -> predicted stride
        self._frontier: Dict[int, int] = {}    # pc -> furthest prefetched
        self.handler = CallbackHandler(self._on_miss)

    def _on_miss(self, ref: DynInst):
        self.invocations += 1
        pc, addr = ref.pc, ref.addr
        last = self._last_miss.get(pc)
        if last is not None and addr != last:
            self._stride[pc] = addr - last
        self._last_miss[pc] = addr
        stride = self._stride.get(pc, 0)
        if stride == 0:
            # No established stride: prefetch the next sequential lines.
            stride = self.line_size
        # Start past everything already prefetched for this reference, so
        # consecutive handler invocations extend coverage forward rather
        # than re-requesting in-flight lines — the handler's software
        # stream-prefetch pointer.  A miss far behind the frontier means
        # the stream restarted (a new sweep): drop the stale pointer.
        start = addr + stride
        frontier = self._frontier.get(pc)
        if frontier is not None and stride != 0:
            gap = (frontier - start) // stride
            if 0 < gap <= 4 * self.degree:
                start = frontier
        body = []
        for i in range(self.degree):
            body.append(prefetch(start + i * stride,
                                 pc=self.handler_pc + 4 * i))
        self._frontier[pc] = start + self.degree * stride
        self.launched += len(body)
        body.append(mhrr_jump(pc=self.handler_pc + 4 * self.degree))
        return body

    def informing_config(self) -> InformingConfig:
        return InformingConfig(mechanism=Mechanism.TRAP, handler=self.handler)


def insert_static_prefetches(
    stream: Iterable[DynInst],
    hot_pcs: Set[int],
    distance_lines: int = 4,
    line_size: int = 32,
) -> Iterator[DynInst]:
    """Plant a prefetch ahead of every reference whose pc is in *hot_pcs*.

    This is the "recompile for a subsequent run based on a detailed memory
    profile" option: the compiler knows which static references miss (from
    an informing-operations profile) and emits a prefetch ``distance_lines``
    ahead, paying one instruction per hot reference instead of one per
    reference.
    """
    if distance_lines < 1:
        raise ValueError("prefetch distance must be >= 1 line")
    ahead = distance_lines * line_size
    for inst in stream:
        if (inst.op in (OpClass.LOAD, OpClass.STORE)
                and not inst.handler_code and inst.pc in hot_pcs):
            yield prefetch(inst.addr + ahead, pc=inst.pc + 3)
        yield inst
