"""Sampled miss profiling (§4.2.2).

The paper notes that expensive monitoring handlers can be made affordable
by *sampling*: "optimizations such as sampling could be used to reduce the
overhead".  This module duty-cycles the informing mechanism — the MHAR is
armed for a fraction of each window and zeroed for the rest, the way a
real tool would re-arm it from a periodic interrupt — and scales the
observed counts back up.

The enable/disable writes cost one MHAR-set instruction each, charged in
the simulated stream.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.apps.monitoring import MissProfiler
from repro.core.engine import InformingEngine
from repro.core.mechanisms import InformingConfig
from repro.isa.instructions import DynInst, mhar_set


class SamplingController:
    """Duty-cycles an informing engine over instruction windows.

    Args:
        period: window length in application instructions.
        duty: fraction of each window with the mechanism armed (0..1].
    """

    def __init__(self, period: int = 4096, duty: float = 0.25) -> None:
        if period < 2:
            raise ValueError("period must be at least 2 instructions")
        if not 0.0 < duty <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        self.period = period
        self.duty = duty
        self.on_length = max(1, int(period * duty))
        self.windows = 0
        self.toggles = 0

    def sampled_stream(self, stream: Iterable[DynInst],
                       engine: InformingEngine) -> Iterator[DynInst]:
        """Yield *stream*, toggling *engine* on a duty cycle.

        The engine starts armed; after ``on_length`` instructions it is
        disarmed until the window ends.  Each toggle injects the MHAR-set
        instruction that performs it.
        """
        position = 0
        engine.enable()
        self.windows = 1
        for inst in stream:
            if position == self.on_length:
                engine.disable()
                self.toggles += 1
                yield mhar_set(pc=0x7F0000)
            elif position == 0 and self.windows > 1:
                engine.enable()
                self.toggles += 1
                yield mhar_set(pc=0x7F0004)
            yield inst
            position += 1
            if position == self.period:
                position = 0
                self.windows += 1

    @property
    def scale_factor(self) -> float:
        """Multiplier turning sampled counts into full-run estimates."""
        return self.period / self.on_length


class SamplingProfiler:
    """A :class:`~repro.apps.monitoring.MissProfiler` behind a duty cycle.

    ``estimated_misses(pc)`` scales the sampled counts back up; the
    benchmark suite checks that the estimate tracks the exhaustive profile
    while the run-time overhead shrinks roughly with the duty factor.
    """

    def __init__(self, period: int = 4096, duty: float = 0.25,
                 table_size: int = 1024) -> None:
        self.profiler = MissProfiler(table_size=table_size)
        self.controller = SamplingController(period, duty)
        self._engine: Optional[InformingEngine] = None

    def informing_config(self) -> InformingConfig:
        return self.profiler.informing_config()

    def attach(self, core) -> None:
        """Bind to a core built with this profiler's informing config."""
        self._engine = core.engine

    def instrument(self, stream: Iterable[DynInst]) -> Iterator[DynInst]:
        if self._engine is None:
            raise RuntimeError("attach(core) before instrumenting a stream")
        return self.controller.sampled_stream(
            self.profiler.counting_stream(stream), self._engine)

    def estimated_misses(self, pc: int) -> float:
        sampled = self.profiler.profile.misses.get(pc, 0)
        return sampled * self.controller.scale_factor

    @property
    def estimated_total_misses(self) -> float:
        return (self.profiler.profile.total_misses
                * self.controller.scale_factor)
