"""Multi-version code selection driven by informing feedback (§4.1.2).

One of the paper's prefetching options: "generating multiple versions of a
piece of code (e.g., a loop) with different prefetching strategies and
using informing information to select which version to run".  The selector
runs the application in windows; a cheap counting handler observes the
window's misses, and the next window runs either the plain version or the
prefetching version of the code depending on whether the observed miss
rate crossed a threshold.

Because the two versions execute the same *work* (the prefetching version
is the plain instruction stream with non-binding prefetches planted ahead
of its references), switching is purely a code-selection decision — exactly
the mechanism the paper sketches.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Set

from repro.apps.prefetching import insert_static_prefetches
from repro.core.handlers import CallbackHandler, GenericHandler
from repro.core.mechanisms import InformingConfig, Mechanism
from repro.isa.instructions import DynInst


class AdaptiveVersionSelector:
    """Window-by-window selection between plain and prefetching code.

    Args:
        base_stream: the application's dynamic instruction stream.
        prefetch_pcs: static references the prefetching version covers.
        window: application instructions per selection window.
        miss_threshold: misses-per-instruction above which the next
            window runs the prefetching version.
        distance_lines: prefetch lead distance in the fast version.
    """

    def __init__(
        self,
        base_stream: Iterable[DynInst],
        prefetch_pcs: Set[int],
        window: int = 2000,
        miss_threshold: float = 0.01,
        distance_lines: int = 6,
    ) -> None:
        if window < 10:
            raise ValueError("selection window too small to be meaningful")
        if not 0.0 < miss_threshold < 1.0:
            raise ValueError("miss threshold must be in (0, 1)")
        self._source = iter(base_stream)
        self.prefetch_pcs = prefetch_pcs
        self.window = window
        self.miss_threshold = miss_threshold
        self.distance_lines = distance_lines
        self.choices: List[str] = []
        self._window_misses = 0
        # A 1-instruction counting handler: the feedback channel.
        self.handler = CallbackHandler(self._on_miss,
                                       cost_model=GenericHandler(1))

    def _on_miss(self, ref: DynInst) -> None:
        self._window_misses += 1
        return None

    def informing_config(self) -> InformingConfig:
        return InformingConfig(mechanism=Mechanism.TRAP, handler=self.handler)

    def stream(self) -> Iterator[DynInst]:
        """The version-selected instruction stream."""
        use_prefetch = False
        while True:
            chunk = list(itertools.islice(self._source, self.window))
            if not chunk:
                return
            self.choices.append("prefetch" if use_prefetch else "plain")
            self._window_misses = 0
            if use_prefetch:
                yield from insert_static_prefetches(
                    iter(chunk), self.prefetch_pcs,
                    distance_lines=self.distance_lines)
            else:
                yield from chunk
            # Select the next window's version from this window's misses.
            rate = self._window_misses / len(chunk)
            use_prefetch = rate > self.miss_threshold

    @property
    def prefetch_windows(self) -> int:
        return sum(1 for choice in self.choices if choice == "prefetch")
