"""Operation classes and functional-unit kinds.

The op classes follow the granularity of Table 1 in the paper: integer ALU,
integer multiply/divide, FP divide/square-root, "all other FP", memory
operations, and control transfers.  Informing-specific operations
(``MHAR_SET``, ``MHRR_JUMP``, ``BLMISS``) are first-class op classes so the
instrumentation adapters in :mod:`repro.core` can insert them into any
stream.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Dynamic-instruction operation class."""

    IALU = "ialu"          # 1-cycle integer op (add, logical, shift, compare)
    IMUL = "imul"          # integer multiply
    IDIV = "idiv"          # integer divide
    FP = "fp"              # "all other FP" in Table 1 (add/mul/convert)
    FDIV = "fdiv"          # FP divide
    FSQRT = "fsqrt"        # FP square root
    LOAD = "load"          # data-cache read
    STORE = "store"        # data-cache write
    PREFETCH = "prefetch"  # non-binding cache fill hint
    BRANCH = "branch"      # conditional branch (predicted, has outcome)
    JUMP = "jump"          # unconditional direct jump / call
    MHAR_SET = "mhar_set"  # load the Miss Handler Address Register
    MHRR_JUMP = "mhrr_jump"  # jump to the Miss Handler Return Register
    BLMISS = "blmiss"      # branch-and-link-if-miss (condition-code scheme)
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpClass.{self.name}"


class FUKind(enum.Enum):
    """Functional-unit kind an op class executes on (Table 1 FU mix)."""

    INT = "int"
    FP = "fp"
    BRANCH = "branch"
    MEMORY = "memory"
    NONE = "none"  # NOPs consume an issue slot but no functional unit


#: Which functional unit each op class occupies.  On the in-order machine
#: (which has no dedicated memory unit, per Table 1) the cores remap
#: ``MEMORY`` to the integer pipes, mirroring the Alpha 21164's E0/E1 ports.
FU_FOR_OP = {
    OpClass.IALU: FUKind.INT,
    OpClass.IMUL: FUKind.INT,
    OpClass.IDIV: FUKind.INT,
    OpClass.FP: FUKind.FP,
    OpClass.FDIV: FUKind.FP,
    OpClass.FSQRT: FUKind.FP,
    OpClass.LOAD: FUKind.MEMORY,
    OpClass.STORE: FUKind.MEMORY,
    OpClass.PREFETCH: FUKind.MEMORY,
    OpClass.BRANCH: FUKind.BRANCH,
    OpClass.JUMP: FUKind.BRANCH,
    OpClass.MHAR_SET: FUKind.INT,
    OpClass.MHRR_JUMP: FUKind.BRANCH,
    OpClass.BLMISS: FUKind.BRANCH,
    OpClass.NOP: FUKind.NONE,
}

#: Dense integer codes for the FU kinds, in a fixed order the cores and
#: :class:`repro.pipeline.fu.FUPool` agree on.  Indexing a list by these
#: codes avoids Python-level ``Enum.__hash__`` calls on the issue path.
FU_INT, FU_FP, FU_BRANCH, FU_MEMORY, FU_NONE = range(5)

_FU_CODE = {
    FUKind.INT: FU_INT,
    FUKind.FP: FU_FP,
    FUKind.BRANCH: FU_BRANCH,
    FUKind.MEMORY: FU_MEMORY,
    FUKind.NONE: FU_NONE,
}

# Each member carries its code as a plain instance attribute so hot loops
# can read ``op.fu_code``/``kind.fu_code`` without any dict lookup.
for _kind, _code in _FU_CODE.items():
    _kind.fu_code = _code
for _op, _kind in FU_FOR_OP.items():
    _op.fu_code = _FU_CODE[_kind]

# A dense per-op index (declaration order) for list-backed per-op tables,
# e.g. LatencyTable.as_list().
for _index, _op in enumerate(OpClass):
    _op.op_code = _index

_MEM_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH})
_CTRL_OPS = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.MHRR_JUMP, OpClass.BLMISS}
)


def is_mem_op(op: OpClass) -> bool:
    """Return True if *op* accesses the data cache."""
    # Identity chain, not set membership: enum hashing is a Python-level
    # call and this predicate runs once per constructed instruction.
    return op is OpClass.LOAD or op is OpClass.STORE or op is OpClass.PREFETCH


def is_ctrl_op(op: OpClass) -> bool:
    """Return True if *op* may redirect the fetch stream."""
    return op in _CTRL_OPS
