"""Operation classes and functional-unit kinds.

The op classes follow the granularity of Table 1 in the paper: integer ALU,
integer multiply/divide, FP divide/square-root, "all other FP", memory
operations, and control transfers.  Informing-specific operations
(``MHAR_SET``, ``MHRR_JUMP``, ``BLMISS``) are first-class op classes so the
instrumentation adapters in :mod:`repro.core` can insert them into any
stream.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Dynamic-instruction operation class."""

    IALU = "ialu"          # 1-cycle integer op (add, logical, shift, compare)
    IMUL = "imul"          # integer multiply
    IDIV = "idiv"          # integer divide
    FP = "fp"              # "all other FP" in Table 1 (add/mul/convert)
    FDIV = "fdiv"          # FP divide
    FSQRT = "fsqrt"        # FP square root
    LOAD = "load"          # data-cache read
    STORE = "store"        # data-cache write
    PREFETCH = "prefetch"  # non-binding cache fill hint
    BRANCH = "branch"      # conditional branch (predicted, has outcome)
    JUMP = "jump"          # unconditional direct jump / call
    MHAR_SET = "mhar_set"  # load the Miss Handler Address Register
    MHRR_JUMP = "mhrr_jump"  # jump to the Miss Handler Return Register
    BLMISS = "blmiss"      # branch-and-link-if-miss (condition-code scheme)
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpClass.{self.name}"


class FUKind(enum.Enum):
    """Functional-unit kind an op class executes on (Table 1 FU mix)."""

    INT = "int"
    FP = "fp"
    BRANCH = "branch"
    MEMORY = "memory"
    NONE = "none"  # NOPs consume an issue slot but no functional unit


#: Which functional unit each op class occupies.  On the in-order machine
#: (which has no dedicated memory unit, per Table 1) the cores remap
#: ``MEMORY`` to the integer pipes, mirroring the Alpha 21164's E0/E1 ports.
FU_FOR_OP = {
    OpClass.IALU: FUKind.INT,
    OpClass.IMUL: FUKind.INT,
    OpClass.IDIV: FUKind.INT,
    OpClass.FP: FUKind.FP,
    OpClass.FDIV: FUKind.FP,
    OpClass.FSQRT: FUKind.FP,
    OpClass.LOAD: FUKind.MEMORY,
    OpClass.STORE: FUKind.MEMORY,
    OpClass.PREFETCH: FUKind.MEMORY,
    OpClass.BRANCH: FUKind.BRANCH,
    OpClass.JUMP: FUKind.BRANCH,
    OpClass.MHAR_SET: FUKind.INT,
    OpClass.MHRR_JUMP: FUKind.BRANCH,
    OpClass.BLMISS: FUKind.BRANCH,
    OpClass.NOP: FUKind.NONE,
}

_MEM_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH})
_CTRL_OPS = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.MHRR_JUMP, OpClass.BLMISS}
)


def is_mem_op(op: OpClass) -> bool:
    """Return True if *op* accesses the data cache."""
    return op in _MEM_OPS


def is_ctrl_op(op: OpClass) -> bool:
    """Return True if *op* may redirect the fetch stream."""
    return op in _CTRL_OPS
