"""Static program representation.

A :class:`Program` is an ordered list of static :class:`Instruction` entries
plus a label table.  Programs exist so that examples and tests can express
*real* kernels (loops over arrays, pointer chases, stencils) that the
functional interpreter in :mod:`repro.isa.interp` turns into dynamic traces
with genuine addresses and branch outcomes.  The large SPEC92-like workload
models in :mod:`repro.workloads` bypass this layer and generate dynamic
instructions directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

#: Byte size of one static instruction; pcs step by this.
INST_BYTES = 4

#: Mnemonics understood by the assembler/interpreter, with operand shapes.
#: r = register, i = immediate, l = label, m = memory operand "off(rbase)".
MNEMONICS = {
    "li": "ri",       # load immediate
    "mv": "rr",       # move register
    "add": "rrr",
    "addi": "rri",
    "sub": "rrr",
    "mul": "rrr",     # integer multiply (IMUL latency)
    "div": "rrr",     # integer divide (IDIV latency)
    "and": "rrr",
    "or": "rrr",
    "xor": "rrr",
    "sll": "rri",
    "srl": "rri",
    "slt": "rrr",
    "fadd": "rrr",
    "fsub": "rrr",
    "fmul": "rrr",
    "fdiv": "rrr",
    "fsqrt": "rr",
    "ld": "rm",       # load word
    "st": "rm",       # store word
    "prefetch": "m",
    "beq": "rrl",
    "bne": "rrl",
    "blt": "rrl",
    "bge": "rrl",
    "j": "l",
    "nop": "",
    "halt": "",
}


@dataclass(frozen=True)
class Instruction:
    """One static instruction: a mnemonic plus operands.

    Register operands are register ids (see :mod:`repro.isa.registers`),
    immediates are ints, labels are strings, and memory operands are
    ``(offset, base_register)`` tuples.
    """

    mnemonic: str
    operands: Tuple[Union[int, str, Tuple[int, int]], ...] = ()

    def __post_init__(self) -> None:
        if self.mnemonic not in MNEMONICS:
            raise ValueError(f"unknown mnemonic: {self.mnemonic!r}")


@dataclass(frozen=True)
class Label:
    """A named position in a program, used as a branch target."""

    name: str


@dataclass
class Program:
    """An assembled program: instructions plus a label→index table."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    base_pc: int = 0x1000

    def append(self, item: Union[Instruction, Label]) -> None:
        """Append an instruction, or bind a label to the current position."""
        if isinstance(item, Label):
            if item.name in self.labels:
                raise ValueError(f"duplicate label: {item.name}")
            self.labels[item.name] = len(self.instructions)
        else:
            self.instructions.append(item)

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def pc_of(self, index: int) -> int:
        """Static pc of the instruction at *index*."""
        return self.base_pc + index * INST_BYTES

    def target_index(self, label: str) -> int:
        """Instruction index a label refers to."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"undefined label: {label!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)
