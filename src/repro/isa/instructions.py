"""Dynamic instruction records.

A :class:`DynInst` is one executed instruction in a dynamic trace: its op
class, architectural register operands, effective address (for memory ops),
and resolved branch outcome (for control ops).  ``DynInst`` objects are
immutable in spirit: the cores never mutate them, so a squashed instruction
can be re-fetched (replayed) after a miss handler returns — the
branch-and-link semantics of an informing operation.

The module-level helper constructors (:func:`load`, :func:`alu`, ...) are the
recommended way to build instructions; they fill in sensible defaults and
validate operand shapes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opclass import OpClass, is_mem_op


class DynInst:
    """One dynamic instruction.

    Attributes:
        op: the :class:`~repro.isa.opclass.OpClass`.
        dest: destination register id, or None.
        srcs: tuple of source register ids (zero register entries are
            ignored by the dependence trackers).
        addr: effective byte address for memory ops, else None.
        taken: resolved outcome for conditional branches, else None.
        pc: static instruction address.  Distinct static references have
            distinct pcs; the profiling and unique-handler machinery keys
            on this.
        informing: True if a miss on this memory op should invoke the
            informing mechanism.  Ignored for non-memory ops.
        handler_code: marker set by the handler-injection engine so that
            statistics can separate application and handler instructions.
    """

    __slots__ = ("op", "dest", "srcs", "addr", "taken", "pc", "informing",
                 "handler_code")

    def __init__(
        self,
        op: OpClass,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        addr: Optional[int] = None,
        taken: Optional[bool] = None,
        pc: int = 0,
        informing: bool = True,
        handler_code: bool = False,
    ) -> None:
        if addr is None and (op is OpClass.LOAD or op is OpClass.STORE
                             or op is OpClass.PREFETCH):
            raise ValueError(f"{op} requires an effective address")
        if op is OpClass.BRANCH and taken is None:
            raise ValueError("conditional branch requires a resolved outcome")
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.pc = pc
        self.informing = informing
        self.handler_code = handler_code

    @property
    def is_mem(self) -> bool:
        """True if this instruction accesses the data cache."""
        return is_mem_op(self.op)

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [self.op.name, f"pc={self.pc:#x}"]
        if self.dest is not None:
            parts.append(f"d=r{self.dest}")
        if self.srcs:
            parts.append("s=" + ",".join(f"r{s}" for s in self.srcs))
        if self.addr is not None:
            parts.append(f"a={self.addr:#x}")
        if self.taken is not None:
            parts.append("T" if self.taken else "NT")
        if self.handler_code:
            parts.append("H")
        return "<" + " ".join(parts) + ">"


def load(addr: int, dest: int, srcs: Tuple[int, ...] = (), pc: int = 0,
         informing: bool = True) -> DynInst:
    """Build a LOAD of *addr* into register *dest*."""
    return DynInst(OpClass.LOAD, dest=dest, srcs=srcs, addr=addr, pc=pc,
                   informing=informing)


def store(addr: int, srcs: Tuple[int, ...] = (), pc: int = 0,
          informing: bool = True) -> DynInst:
    """Build a STORE to *addr* whose data/base registers are *srcs*."""
    return DynInst(OpClass.STORE, srcs=srcs, addr=addr, pc=pc,
                   informing=informing)


def prefetch(addr: int, pc: int = 0) -> DynInst:
    """Build a non-binding PREFETCH of *addr* (never informs)."""
    return DynInst(OpClass.PREFETCH, addr=addr, pc=pc, informing=False)


def alu(dest: int, srcs: Tuple[int, ...] = (), pc: int = 0,
        op: OpClass = OpClass.IALU) -> DynInst:
    """Build an integer op (default 1-cycle IALU)."""
    return DynInst(op, dest=dest, srcs=srcs, pc=pc)


def fp_op(dest: int, srcs: Tuple[int, ...] = (), pc: int = 0,
          op: OpClass = OpClass.FP) -> DynInst:
    """Build a floating-point op (default the generic 'all other FP' class)."""
    return DynInst(op, dest=dest, srcs=srcs, pc=pc)


def branch(taken: bool, srcs: Tuple[int, ...] = (), pc: int = 0) -> DynInst:
    """Build a conditional branch with resolved outcome *taken*."""
    return DynInst(OpClass.BRANCH, srcs=srcs, taken=taken, pc=pc)


def mhar_set(pc: int = 0, srcs: Tuple[int, ...] = ()) -> DynInst:
    """Build the set-miss-handler-address instruction (one issue slot)."""
    return DynInst(OpClass.MHAR_SET, srcs=srcs, pc=pc)


def mhrr_jump(pc: int = 0) -> DynInst:
    """Build the jump-to-miss-handler-return-register instruction."""
    return DynInst(OpClass.MHRR_JUMP, pc=pc, handler_code=True)


def nop(pc: int = 0) -> DynInst:
    return DynInst(OpClass.NOP, pc=pc)
