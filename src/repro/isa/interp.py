"""Functional interpreter: static :class:`Program` → dynamic trace.

The interpreter executes a program architecturally (register values, a
sparse word-addressed memory, real branch outcomes) and yields one
:class:`~repro.isa.instructions.DynInst` per executed instruction.  The
timing simulators then replay that trace.  This split — functional first,
timing second — is the classic trace-driven structure the paper's own
evaluation used.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass
from repro.isa.program import MNEMONICS, Program
from repro.isa.registers import NUM_REGS, REG_ZERO

_ALU_MNEMONICS = {
    "li", "mv", "add", "addi", "sub", "and", "or", "xor", "sll", "srl", "slt",
}
_FP_MNEMONICS = {"fadd", "fsub", "fmul"}
_BRANCH_MNEMONICS = {"beq", "bne", "blt", "bge"}


class TraceLimitExceeded(RuntimeError):
    """Raised when a program executes past ``max_insts`` without halting."""


class Interpreter:
    """Architectural executor for small programs.

    Args:
        program: the assembled program.
        memory: optional initial memory image (byte address → value).
        informing: whether the emitted memory ops are informing.
    """

    def __init__(
        self,
        program: Program,
        memory: Optional[Dict[int, float]] = None,
        informing: bool = True,
    ) -> None:
        self.program = program
        self.regs: List[float] = [0] * NUM_REGS
        self.memory: Dict[int, float] = dict(memory) if memory else {}
        self.informing = informing
        self.executed = 0

    # -- register helpers -------------------------------------------------
    def _read(self, reg: int) -> float:
        return 0 if reg == REG_ZERO else self.regs[reg]

    def _write(self, reg: int, value: float) -> None:
        if reg != REG_ZERO:
            self.regs[reg] = value

    # -- execution ---------------------------------------------------------
    def run(self, max_insts: int = 1_000_000) -> Iterator[DynInst]:
        """Execute until ``halt`` (or end of program), yielding DynInsts.

        Raises :class:`TraceLimitExceeded` if *max_insts* instructions
        execute without reaching a halt — the guard that turns an
        accidentally-infinite example loop into a test failure rather
        than a hang.
        """
        index = 0
        program = self.program
        while 0 <= index < len(program.instructions):
            if self.executed >= max_insts:
                raise TraceLimitExceeded(
                    f"program executed {self.executed} instructions without halting"
                )
            inst = program.instructions[index]
            pc = program.pc_of(index)
            mnemonic = inst.mnemonic
            ops = inst.operands

            if mnemonic == "halt":
                return
            self.executed += 1

            if mnemonic in _ALU_MNEMONICS:
                index += 1
                yield self._exec_alu(mnemonic, ops, pc)
            elif mnemonic in ("mul", "div"):
                index += 1
                yield self._exec_muldiv(mnemonic, ops, pc)
            elif mnemonic in _FP_MNEMONICS or mnemonic in ("fdiv", "fsqrt"):
                index += 1
                yield self._exec_fp(mnemonic, ops, pc)
            elif mnemonic == "ld":
                index += 1
                dest, (offset, base) = ops
                addr = int(self._read(base)) + offset
                self._write(dest, self.memory.get(addr, 0))
                yield DynInst(OpClass.LOAD, dest=dest, srcs=(base,),
                              addr=addr, pc=pc, informing=self.informing)
            elif mnemonic == "st":
                index += 1
                src, (offset, base) = ops
                addr = int(self._read(base)) + offset
                self.memory[addr] = self._read(src)
                yield DynInst(OpClass.STORE, srcs=(src, base), addr=addr,
                              pc=pc, informing=self.informing)
            elif mnemonic == "prefetch":
                index += 1
                (offset, base), = ops
                addr = int(self._read(base)) + offset
                yield DynInst(OpClass.PREFETCH, addr=addr, srcs=(base,),
                              pc=pc, informing=False)
            elif mnemonic in _BRANCH_MNEMONICS:
                rs, rt, label = ops
                taken = self._branch_taken(mnemonic, rs, rt)
                yield DynInst(OpClass.BRANCH, srcs=(rs, rt), taken=taken, pc=pc)
                index = program.target_index(label) if taken else index + 1
            elif mnemonic == "j":
                (label,) = ops
                yield DynInst(OpClass.JUMP, pc=pc)
                index = program.target_index(label)
            elif mnemonic == "nop":
                index += 1
                yield DynInst(OpClass.NOP, pc=pc)
            else:  # pragma: no cover - MNEMONICS and handlers kept in sync
                raise AssertionError(f"unhandled mnemonic {mnemonic!r}")

    def trace(self, max_insts: int = 1_000_000) -> List[DynInst]:
        """Run to completion and return the whole dynamic trace as a list."""
        return list(self.run(max_insts))

    # -- per-class helpers ---------------------------------------------------
    def _exec_alu(self, mnemonic, ops, pc) -> DynInst:
        if mnemonic == "li":
            dest, imm = ops
            self._write(dest, imm)
            return DynInst(OpClass.IALU, dest=dest, pc=pc)
        if mnemonic == "mv":
            dest, src = ops
            self._write(dest, self._read(src))
            return DynInst(OpClass.IALU, dest=dest, srcs=(src,), pc=pc)
        if mnemonic == "addi":
            dest, src, imm = ops
            self._write(dest, int(self._read(src)) + imm)
            return DynInst(OpClass.IALU, dest=dest, srcs=(src,), pc=pc)
        if mnemonic in ("sll", "srl"):
            dest, src, imm = ops
            value = int(self._read(src))
            self._write(dest, value << imm if mnemonic == "sll" else value >> imm)
            return DynInst(OpClass.IALU, dest=dest, srcs=(src,), pc=pc)
        dest, rs, rt = ops
        a, b = int(self._read(rs)), int(self._read(rt))
        result = {
            "add": a + b,
            "sub": a - b,
            "and": a & b,
            "or": a | b,
            "xor": a ^ b,
            "slt": int(a < b),
        }[mnemonic]
        self._write(dest, result)
        return DynInst(OpClass.IALU, dest=dest, srcs=(rs, rt), pc=pc)

    def _exec_muldiv(self, mnemonic, ops, pc) -> DynInst:
        dest, rs, rt = ops
        a, b = int(self._read(rs)), int(self._read(rt))
        if mnemonic == "mul":
            self._write(dest, a * b)
            op = OpClass.IMUL
        else:
            self._write(dest, a // b if b else 0)
            op = OpClass.IDIV
        return DynInst(op, dest=dest, srcs=(rs, rt), pc=pc)

    def _exec_fp(self, mnemonic, ops, pc) -> DynInst:
        if mnemonic == "fsqrt":
            dest, src = ops
            value = self._read(src)
            self._write(dest, value ** 0.5 if value >= 0 else 0.0)
            return DynInst(OpClass.FSQRT, dest=dest, srcs=(src,), pc=pc)
        dest, rs, rt = ops
        a, b = self._read(rs), self._read(rt)
        if mnemonic == "fadd":
            result, op = a + b, OpClass.FP
        elif mnemonic == "fsub":
            result, op = a - b, OpClass.FP
        elif mnemonic == "fmul":
            result, op = a * b, OpClass.FP
        else:  # fdiv
            result, op = (a / b if b else 0.0), OpClass.FDIV
        self._write(dest, result)
        return DynInst(op, dest=dest, srcs=(rs, rt), pc=pc)

    def _branch_taken(self, mnemonic: str, rs: int, rt: int) -> bool:
        a, b = self._read(rs), self._read(rt)
        return {
            "beq": a == b,
            "bne": a != b,
            "blt": a < b,
            "bge": a >= b,
        }[mnemonic]
