"""Compact dynamic-trace serialisation.

Traces captured from the functional interpreter (or any DynInst stream)
can be written to a line-oriented text format and replayed later, so an
experiment's exact input can be archived alongside its results.  Format,
one instruction per line::

    <op> pc=<hex> [d=<reg>] [s=<reg>,<reg>] [a=<hex>] [T|NT] [ni] [hc]

``ni`` marks a non-informing memory op, ``hc`` handler code.  Lines
starting with ``#`` are comments.  The format round-trips every field of
:class:`~repro.isa.instructions.DynInst`.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass

_OP_BY_NAME = {op.name: op for op in OpClass}


class TraceFormatError(ValueError):
    """Raised on malformed trace lines, with the line number."""


def format_inst(inst: DynInst) -> str:
    parts = [inst.op.name, f"pc={inst.pc:x}"]
    if inst.dest is not None:
        parts.append(f"d={inst.dest}")
    if inst.srcs:
        parts.append("s=" + ",".join(str(src) for src in inst.srcs))
    if inst.addr is not None:
        parts.append(f"a={inst.addr:x}")
    if inst.taken is not None:
        parts.append("T" if inst.taken else "NT")
    if inst.is_mem and not inst.informing:
        parts.append("ni")
    if inst.handler_code:
        parts.append("hc")
    return " ".join(parts)


def parse_line(line: str, lineno: int = 0) -> DynInst:
    tokens = line.split()
    try:
        op = _OP_BY_NAME[tokens[0]]
    except (KeyError, IndexError):
        raise TraceFormatError(f"line {lineno}: bad op in {line!r}") from None
    dest = None
    srcs = ()
    addr = None
    taken = None
    pc = 0
    informing = True
    handler_code = False
    for token in tokens[1:]:
        if token.startswith("pc="):
            pc = int(token[3:], 16)
        elif token.startswith("d="):
            dest = int(token[2:])
        elif token.startswith("s="):
            srcs = tuple(int(part) for part in token[2:].split(","))
        elif token.startswith("a="):
            addr = int(token[2:], 16)
        elif token == "T":
            taken = True
        elif token == "NT":
            taken = False
        elif token == "ni":
            informing = False
        elif token == "hc":
            handler_code = True
        else:
            raise TraceFormatError(
                f"line {lineno}: unknown field {token!r}")
    try:
        return DynInst(op, dest=dest, srcs=srcs, addr=addr, taken=taken,
                       pc=pc, informing=informing, handler_code=handler_code)
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from None


def write_trace(stream: Iterable[DynInst], fh: IO[str],
                header: str = "") -> int:
    """Write a trace; returns the instruction count."""
    if header:
        for line in header.splitlines():
            fh.write(f"# {line}\n")
    count = 0
    for inst in stream:
        fh.write(format_inst(inst) + "\n")
        count += 1
    return count


def read_trace(fh: IO[str]) -> Iterator[DynInst]:
    """Lazily parse a trace file written by :func:`write_trace`."""
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_line(line, lineno)


def save_trace(stream: Iterable[DynInst], path: str, header: str = "") -> int:
    with open(path, "w") as fh:
        return write_trace(stream, fh, header)


def load_trace(path: str) -> Iterator[DynInst]:
    with open(path) as fh:
        yield from read_trace(fh)
