"""A tiny text assembler for :class:`~repro.isa.program.Program`.

Syntax, one statement per line::

    # comment
    loop:                     ; label
        li   r1, 100
        ld   r2, 8(r1)        ; memory operand: offset(base)
        fadd f2, f2, f1       ; f-names map to the fp register file
        addi r1, r1, 4
        bne  r1, r3, loop
        halt

Registers are written ``r0``..``r31`` and ``f0``..``f31``.  Immediates may
be decimal or ``0x`` hex.  The assembler is deliberately small: it exists so
examples and tests read like programs rather than object graphs.
"""

from __future__ import annotations

import re
from typing import Tuple, Union

from repro.isa.program import MNEMONICS, Instruction, Label, Program
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, fp_reg, int_reg


class AssemblyError(ValueError):
    """Raised for any syntax or operand error, with a line number."""


_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((r\d+|f\d+)\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")


def _parse_reg(tok: str, lineno: int) -> int:
    match = re.fullmatch(r"([rf])(\d+)", tok)
    if not match:
        raise AssemblyError(f"line {lineno}: expected register, got {tok!r}")
    kind, idx = match.group(1), int(match.group(2))
    try:
        return int_reg(idx) if kind == "r" else fp_reg(idx)
    except ValueError as exc:
        raise AssemblyError(f"line {lineno}: {exc}") from None


def _parse_imm(tok: str, lineno: int) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AssemblyError(
            f"line {lineno}: expected immediate, got {tok!r}"
        ) from None


def _parse_operand(shape: str, tok: str, lineno: int
                   ) -> Union[int, str, Tuple[int, int]]:
    if shape == "r":
        return _parse_reg(tok, lineno)
    if shape == "i":
        return _parse_imm(tok, lineno)
    if shape == "l":
        return tok
    if shape == "m":
        match = _MEM_RE.match(tok)
        if not match:
            raise AssemblyError(
                f"line {lineno}: expected offset(base), got {tok!r}"
            )
        offset = int(match.group(1), 0)
        base = _parse_reg(match.group(2), lineno)
        return (offset, base)
    raise AssemblyError(f"line {lineno}: bad operand shape {shape!r}")


def assemble(text: str, base_pc: int = 0x1000) -> Program:
    """Assemble *text* into a :class:`Program`.

    Raises :class:`AssemblyError` on any malformed line or undefined label
    (labels are checked eagerly so errors surface at build time, not when
    the interpreter reaches the branch).
    """
    program = Program(base_pc=base_pc)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                program.append(Label(label_match.group(1)))
            except ValueError as exc:
                raise AssemblyError(f"line {lineno}: {exc}") from None
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        if mnemonic not in MNEMONICS:
            raise AssemblyError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        shapes = MNEMONICS[mnemonic]
        tokens = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
        if len(tokens) != len(shapes):
            raise AssemblyError(
                f"line {lineno}: {mnemonic} expects {len(shapes)} operands, "
                f"got {len(tokens)}"
            )
        operands = tuple(
            _parse_operand(shape, tok, lineno)
            for shape, tok in zip(shapes, tokens)
        )
        program.append(Instruction(mnemonic, operands))

    for label in _referenced_labels(program):
        if label not in program.labels:
            raise AssemblyError(f"undefined label: {label!r}")
    return program


def _referenced_labels(program: Program):
    for inst in program.instructions:
        shapes = MNEMONICS[inst.mnemonic]
        for shape, operand in zip(shapes, inst.operands):
            if shape == "l":
                yield operand
