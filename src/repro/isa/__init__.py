"""Instruction-set substrate for the informing-memory-operations simulators.

The simulators in :mod:`repro.inorder` and :mod:`repro.ooo` are trace driven:
they consume streams of :class:`~repro.isa.instructions.DynInst` records.
This package defines the op classes, the dynamic-instruction record, a small
static-program representation with an assembler, and a functional interpreter
that turns static programs into dynamic traces (used by the examples and the
application-level tests).
"""

from repro.isa.opclass import OpClass, FUKind, FU_FOR_OP, is_mem_op
from repro.isa.instructions import (
    DynInst,
    alu,
    branch,
    fp_op,
    load,
    mhar_set,
    mhrr_jump,
    nop,
    prefetch,
    store,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    NUM_REGS,
    REG_ZERO,
    RegisterAllocator,
    fp_reg,
    int_reg,
)
from repro.isa.program import Instruction, Label, Program
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.interp import Interpreter, TraceLimitExceeded
from repro.isa.tracefile import (
    TraceFormatError,
    load_trace,
    read_trace,
    save_trace,
    write_trace,
)

__all__ = [
    "OpClass",
    "FUKind",
    "FU_FOR_OP",
    "is_mem_op",
    "DynInst",
    "alu",
    "branch",
    "fp_op",
    "load",
    "mhar_set",
    "mhrr_jump",
    "nop",
    "prefetch",
    "store",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "NUM_REGS",
    "REG_ZERO",
    "RegisterAllocator",
    "fp_reg",
    "int_reg",
    "Instruction",
    "Label",
    "Program",
    "AssemblyError",
    "assemble",
    "Interpreter",
    "TraceLimitExceeded",
    "TraceFormatError",
    "save_trace",
    "load_trace",
    "read_trace",
    "write_trace",
]
