"""Architectural register namespace.

Registers are plain small integers.  Indices 0..31 are the integer file and
32..63 the floating-point file.  Index 0 is the hardwired zero register and
is never a true dependence source or destination.  The informing-operation
machinery reserves a small window of integer registers for the *single*
generic miss handler so that successive invocations are data dependent on
one another, exactly as the paper's pessimistic model assumes.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Hardwired zero; reads are always ready, writes are discarded.
REG_ZERO = 0

#: Integer registers reserved for miss-handler code (single-handler mode).
HANDLER_REG_BASE = 26
HANDLER_REG_COUNT = 4


def int_reg(index: int) -> int:
    """Return the register id of integer register *index* (0..31)."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the register id of floating-point register *index* (0..31)."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return NUM_INT_REGS + index


def is_fp_reg(reg: int) -> bool:
    """Return True if *reg* names a floating-point register."""
    return reg >= NUM_INT_REGS


class RegisterAllocator:
    """Round-robin allocator over a register window.

    Workload generators use one of these per value class so that generated
    code has a controllable dependence distance: a window of *n* registers
    means an instruction depends on the value produced ``n`` definitions
    ago at the earliest.
    """

    def __init__(self, base: int, count: int) -> None:
        if count <= 0:
            raise ValueError("allocator window must be positive")
        if base <= REG_ZERO:
            raise ValueError("allocator window may not include the zero register")
        if base + count > NUM_REGS:
            raise ValueError("allocator window exceeds the register file")
        self.base = base
        self.count = count
        self._next = 0

    def alloc(self) -> int:
        """Return the next register in the window."""
        reg = self.base + self._next
        self._next = (self._next + 1) % self.count
        return reg

    def reset(self) -> None:
        """Restart the rotation at the window base."""
        self._next = 0
