"""A small process-oriented discrete-event simulation kernel.

The multiprocessor coherence study (Section 4.3) is simulated TangoLite
style: each processor is a process that interleaves computation delays with
memory events; the kernel advances global time in event order.  Processes
are plain Python generators that ``yield`` either a cycle delay (int) or an
:class:`Event` to wait on; :class:`Barrier` builds the usual parallel-phase
synchronisation on top.
"""

from repro.sim.kernel import Barrier, Event, Simulator, SimError

__all__ = ["Simulator", "Event", "Barrier", "SimError"]
