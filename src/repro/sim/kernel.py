"""Discrete-event kernel: generator processes, events, barriers."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimError(RuntimeError):
    """Raised for misuse of the kernel (bad yields, negative delays...)."""


class Event:
    """A one-shot synchronisation point processes can wait on.

    A process waits by yielding the event; :meth:`trigger` wakes every
    waiter at the current simulation time.  Events may carry a value,
    readable via :attr:`value` after the trigger.
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._waiters: List[Generator] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self._sim._schedule(0, process)
        self._waiters.clear()

    def _add_waiter(self, process: Generator) -> None:
        if self.triggered:
            self._sim._schedule(0, process)
        else:
            self._waiters.append(process)


class Barrier:
    """Reusable barrier for *parties* processes.

    Yield the result of :meth:`wait` from a process; the last arriver
    releases everyone and the barrier resets for the next phase.
    """

    def __init__(self, sim: "Simulator", parties: int) -> None:
        if parties < 1:
            raise SimError("barrier needs at least one party")
        self._sim = sim
        self.parties = parties
        self._event = Event(sim)
        self._count = 0
        self.generations = 0

    def wait(self) -> Event:
        """Return the event to yield on; triggers when all parties arrive."""
        self._count += 1
        event = self._event
        if self._count == self.parties:
            self._count = 0
            self.generations += 1
            self._event = Event(self._sim)
            event.trigger()
        return event


class Simulator:
    """Event queue plus process scheduler."""

    def __init__(self) -> None:
        self.now = 0
        self._queue: List[Tuple[int, int, Generator]] = []
        self._seq = 0
        self._live = 0

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, delay: int, process: Generator) -> None:
        if delay < 0:
            raise SimError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, process))

    def spawn(self, process: Generator) -> Generator:
        """Register a generator process to start at the current time."""
        self._live += 1
        self._schedule(0, process)
        return process

    def event(self) -> Event:
        return Event(self)

    def barrier(self, parties: int) -> Barrier:
        return Barrier(self, parties)

    def at(self, delay: int, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* cycles (wrapped as a tiny process)."""
        def runner() -> Generator:
            callback()
            return
            yield  # pragma: no cover - makes runner a generator

        self._live += 1
        self._schedule(delay, runner())

    # -- main loop -------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Run until no events remain (or past *until*); return final time."""
        while self._queue:
            time, _seq, process = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            self._step(process)
        return self.now

    def _step(self, process: Generator) -> None:
        try:
            yielded = next(process)
        except StopIteration:
            self._live -= 1
            return
        if isinstance(yielded, bool):
            raise SimError(f"process yielded a bool: {yielded!r}")
        if isinstance(yielded, int):
            self._schedule(yielded, process)
        elif isinstance(yielded, Event):
            yielded._add_waiter(process)
        else:
            raise SimError(
                f"process yielded {yielded!r}; expected int delay or Event")

    @property
    def live_processes(self) -> int:
        """Processes spawned and not yet finished."""
        return self._live
