"""The run manifest store: one ``manifest.json`` per grid run.

A manifest freezes everything a later comparison needs about one
:class:`repro.exec.JobRunner` invocation — provenance (git sha, CLI
argv, seed, machine fingerprint, config digest), the scheduler's
aggregate stats, and a per-cell record holding each job's identity,
wall time, cache state and *simulated* result dict.  Simulated numbers
are deterministic, so two manifests of the same config/seed must agree
digit-for-digit; wall times are noise and get statistical treatment
instead (see :mod:`repro.perf.compare`).

Layout: ``<runs_root>/<run_id>/manifest.json`` with ``runs_root``
defaulting to ``results/runs`` (override with ``REPRO_RUNS_DIR`` or the
CLI's ``--manifest-dir``).  Run ids are ``<UTC stamp>-<experiment>-
<pid>-<seq>``: sortable, unique within and across processes, and
human-greppable.  Writes are atomic (tmp + rename), like every baseline
file in this repo.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.bench import atomic_write_json
from repro.exec.telemetry import DRAINED, FINISHED, JobEvent, git_sha

#: Manifest layout version; compare/load reject versions they don't know.
MANIFEST_SCHEMA = 1
#: Discriminator so sniffing code can tell a manifest from a BENCH file.
MANIFEST_KIND = "run_manifest"

ENV_RUNS_DIR = "REPRO_RUNS_DIR"
DEFAULT_RUNS_ROOT = os.path.join("results", "runs")

#: Result fields that are *simulated* outputs (deterministic given the
#: job) for bar cells; everything listed here is compared digit-exact.
_BAR_SIM_FIELDS = (
    "cycles", "busy", "cache_stall", "other_stall", "app_instructions",
    "handler_instructions", "handler_invocations", "l1_miss_rate",
)

_run_seq = itertools.count()


def runs_root(explicit: Optional[str] = None) -> str:
    """The manifest root: *explicit*, ``REPRO_RUNS_DIR``, or the default."""
    return (explicit or os.environ.get(ENV_RUNS_DIR, "").strip()
            or DEFAULT_RUNS_ROOT)


def new_run_id(experiment: Optional[str] = None) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    tag = (experiment or "run").replace("/", "_")
    return f"{stamp}-{tag}-{os.getpid()}-{next(_run_seq)}"


def machine_fingerprint() -> Dict[str, Any]:
    """Where this run happened: enough to explain wall-time deltas."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count(),
        "hostname": platform.node(),
    }


def config_digest(jobs: Sequence) -> str:
    """One hex digest over the whole grid's content addresses.

    Two runs with equal digests simulated the exact same cells (same
    benchmarks, machines, bars, run lengths, seeds and code version), so
    their simulated stats are directly comparable.
    """
    digest = hashlib.sha256()
    for key in sorted(job.cache_key() for job in jobs):
        digest.update(key.encode("ascii"))
    return digest.hexdigest()


def _metrics_digest(label: str) -> Optional[str]:
    """Digest of the cell's repro.obs metrics.json, when one was written."""
    from repro.obs import obs_trace_dir

    directory = obs_trace_dir()
    if not directory:
        return None
    path = os.path.join(directory,
                        label.replace("/", "_") + ".metrics.json")
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return None


def _sim_view(result: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The deterministic (simulated) slice of a job result dict."""
    if result is None:
        return None
    if result.get("status") == "invariant_violation":
        return {"status": "invariant_violation"}
    if all(field in result for field in _BAR_SIM_FIELDS):
        return {field: result[field] for field in _BAR_SIM_FIELDS}
    # Non-bar kinds (access_control, test payloads): every field the
    # executor returned is simulated output.
    return dict(result)


def build_cells(jobs: Sequence, results: Sequence[Optional[Dict[str, Any]]],
                events: Sequence[JobEvent]) -> List[Dict[str, Any]]:
    """Fold the telemetry stream + results into per-cell records."""
    finished: Dict[str, JobEvent] = {}
    attempts: Dict[str, int] = {}
    drained = set()
    for event in events:
        if event.event == FINISHED:
            finished[event.key] = event
        elif event.event == DRAINED:
            drained.add(event.key)
        attempts[event.key] = max(attempts.get(event.key, 0), event.attempt)
    cells = []
    for job, result in zip(jobs, results):
        key = job.cache_key()
        done = finished.get(key)
        status = "ok"
        if result is None:
            status = "drained" if key in drained else "unfinished"
        elif result.get("status") == "invariant_violation":
            status = "invariant_violation"
        cells.append({
            "label": job.label,
            "key": key[:16],
            "kind": job.kind,
            "benchmark": job.benchmark,
            "machine": job.machine,
            "status": status,
            "cache": done.cache if done is not None else None,
            "wall": done.wall if done is not None else None,
            # The cell's repro.obs event trace (runs under --trace-events
            # only); ``harness explain <run_id>`` reads it back.
            "trace": done.trace if done is not None else None,
            "attempts": attempts.get(key, 0),
            "sim": _sim_view(result),
            "metrics_digest": _metrics_digest(job.label),
        })
    return cells


def build_manifest(jobs: Sequence,
                   results: Sequence[Optional[Dict[str, Any]]],
                   events: Sequence[JobEvent], runner,
                   error: Optional[BaseException] = None,
                   run_id: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the manifest dict for one finished (or aborted) run."""
    meta = runner.options.run_meta or {}
    experiment = meta.get("experiment")
    return {
        "kind": MANIFEST_KIND,
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id or new_run_id(experiment),
        "experiment": experiment,
        "argv": meta.get("argv"),
        "seed": meta.get("seed"),
        "git_sha": git_sha(),
        "written": time.time(),
        "machine": machine_fingerprint(),
        "config_digest": config_digest(jobs),
        "workers": runner.options.jobs,
        "cache_enabled": runner.cache is not None,
        "telemetry_path": runner.options.trace_path,
        "journal_path": getattr(runner, "last_journal", None),
        "spans_path": getattr(runner, "last_spans", None),
        "resumed_from": meta.get("resumed_from"),
        "status": ("failed" if error is not None else
                   "drained" if getattr(runner, "draining", False) else "ok"),
        "error": (f"{type(error).__name__}: {error}"
                  if error is not None else None),
        "stats": runner.stats.as_dict(),
        "cells": build_cells(jobs, results, events),
    }


def write_run_manifest(directory: Optional[str], jobs, results, events,
                       runner, error: Optional[BaseException] = None,
                       run_id: Optional[str] = None) -> str:
    """Write ``<directory>/<run_id>/manifest.json``; return its path.

    *run_id* pins the directory when the engine already minted one for
    its journal, so journal and manifest land side by side.
    """
    manifest = build_manifest(jobs, results, events, runner, error=error,
                              run_id=run_id)
    run_dir = os.path.join(runs_root(directory), manifest["run_id"])
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, "manifest.json")
    atomic_write_json(path, manifest)
    return path


class ManifestError(ValueError):
    """A manifest could not be located or has an unknown schema."""


def resolve_manifest_path(ref: str,
                          root: Optional[str] = None) -> Optional[str]:
    """Resolve *ref* (run id, run dir, or manifest path) to a file path."""
    candidates = [
        ref,
        os.path.join(ref, "manifest.json"),
        os.path.join(runs_root(root), ref, "manifest.json"),
    ]
    for candidate in candidates:
        if os.path.isfile(candidate):
            return candidate
    return None


def load_manifest(ref: str, root: Optional[str] = None) -> Dict[str, Any]:
    """Load and validate a manifest by run id, directory or file path."""
    path = resolve_manifest_path(ref, root)
    if path is None:
        raise ManifestError(
            f"no manifest found for {ref!r} (tried the path itself, "
            f"<ref>/manifest.json, and {runs_root(root)}/<ref>/manifest.json)")
    with open(path) as fh:
        data = json.load(fh)
    if data.get("kind") != MANIFEST_KIND:
        raise ManifestError(f"{path} is not a run manifest")
    if data.get("schema") != MANIFEST_SCHEMA:
        raise ManifestError(
            f"{path} has manifest schema {data.get('schema')!r}; this "
            f"build understands schema {MANIFEST_SCHEMA} — regenerate the "
            f"run or upgrade")
    return data


def list_runs(root: Optional[str] = None) -> List[str]:
    """Run ids under the manifest root, oldest first (ids sort by time)."""
    base = runs_root(root)
    try:
        entries = sorted(os.listdir(base))
    except OSError:
        return []
    return [entry for entry in entries
            if os.path.isfile(os.path.join(base, entry, "manifest.json"))]
