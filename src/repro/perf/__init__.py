"""repro.perf — the cross-run performance observatory.

The paper's thesis is that memory-performance feedback must be cheap,
continuous and actionable; :mod:`repro.obs` (PR 4) delivers that *within*
a run, and this package delivers it *across* runs:

* **run manifests** — every :class:`repro.exec.JobRunner` grid run with
  ``manifest_dir`` set (the harness CLI default) writes
  ``results/runs/<run_id>/manifest.json``: git sha, config digest, seed,
  machine fingerprint, per-cell wall/simulated stats, obs metrics
  digests and the telemetry path (:mod:`repro.perf.manifest`);
* **compare** — ``python -m repro.harness compare RUN_A RUN_B`` diffs
  two manifests (or BENCH snapshots, or ``--trace-dir`` obs artifact
  directories): simulated statistics digit-exact — any drift is a
  correctness alarm — and wall times through repeated-cell bootstrap
  confidence intervals (:mod:`repro.perf.compare`);
* **watch** — ``python -m repro.harness watch telemetry.jsonl`` follows
  a running grid's telemetry stream live: per-job state, worker
  utilization, cache-hit ratio, throughput, ETA
  (:mod:`repro.perf.watch`);
* **trajectory** — bench runs append (never overwrite) one line per run
  to ``BENCH_trajectory.jsonl`` so the timing history survives snapshot
  updates (:mod:`repro.perf.trajectory`).

The ``perf-gate`` CI job wires these together: fresh hotpath timings are
``compare``'d against ``BENCH_hotpath.json`` (fail >25%, warn >10%) and
the run manifest is uploaded as an artifact, so every future perf PR is
measured against an enforced baseline instead of a hand-edited JSON.
"""

from repro.perf.compare import (
    DEFAULT_FAIL_ABOVE,
    DEFAULT_WARN_ABOVE,
    bootstrap_ci,
    classify_ratio,
    compare_bench,
    compare_main,
    compare_manifests,
    compare_trace_dirs,
    render_compare,
)
from repro.perf.manifest import (
    DEFAULT_RUNS_ROOT,
    ENV_RUNS_DIR,
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    ManifestError,
    build_manifest,
    config_digest,
    list_runs,
    load_manifest,
    machine_fingerprint,
    new_run_id,
    runs_root,
    write_run_manifest,
)
from repro.perf.trajectory import (
    DEFAULT_TRAJECTORY_NAME,
    TRAJECTORY_SCHEMA,
    append_bench_run,
    append_trajectory,
    read_trajectory,
    trajectory_path_for,
)
from repro.perf.watch import (
    TelemetryFollower,
    WatchError,
    follow,
    replay,
    watch_main,
)

__all__ = [
    "DEFAULT_FAIL_ABOVE",
    "DEFAULT_RUNS_ROOT",
    "DEFAULT_TRAJECTORY_NAME",
    "DEFAULT_WARN_ABOVE",
    "ENV_RUNS_DIR",
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "TRAJECTORY_SCHEMA",
    "TelemetryFollower",
    "WatchError",
    "append_bench_run",
    "append_trajectory",
    "bootstrap_ci",
    "build_manifest",
    "classify_ratio",
    "compare_bench",
    "compare_main",
    "compare_manifests",
    "compare_trace_dirs",
    "config_digest",
    "follow",
    "list_runs",
    "load_manifest",
    "machine_fingerprint",
    "new_run_id",
    "read_trajectory",
    "render_compare",
    "replay",
    "runs_root",
    "trajectory_path_for",
    "watch_main",
    "write_run_manifest",
]
