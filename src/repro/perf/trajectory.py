"""The append-only bench trajectory: ``BENCH_trajectory.jsonl``.

``BENCH_harness.json`` / ``BENCH_hotpath.json`` are *snapshots* — each
slot holds only the most recent run, so the history that would reveal a
slow drift (or pinpoint the commit that caused a cliff) used to be
thrown away.  The trajectory keeps it: every recorded bench run appends
exactly one JSON line — experiment, temperature, wall, cache
accounting, git sha, timestamp — and nothing ever rewrites previous
lines.  ``repro.perf.compare`` and ad-hoc scripts can then plot or diff
the whole history.

Lines are self-describing (``schema`` field) and the reader skips
corrupt or truncated lines instead of dying: an interrupted append
costs one line, not the file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

TRAJECTORY_SCHEMA = 1
DEFAULT_TRAJECTORY_NAME = "BENCH_trajectory.jsonl"

#: Snapshot-entry fields worth carrying into the trajectory line.
_CARRIED_FIELDS = (
    "temperature", "wall_seconds", "mean_job_seconds", "jobs", "executed",
    "finished", "failed", "retries", "cache_hits", "cache_misses",
    "cache_hit_rate", "workers", "timestamp",
)


def trajectory_path_for(bench_path) -> str:
    """The trajectory file that rides along a given BENCH_*.json path."""
    return str(Path(bench_path).parent / DEFAULT_TRAJECTORY_NAME)


def append_trajectory(path, entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append one record (plus the schema tag) as a JSON line."""
    record = dict(entry)
    record.setdefault("schema", TRAJECTORY_SCHEMA)
    path = Path(path)
    if path.parent and not path.parent.exists():
        os.makedirs(str(path.parent), exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def append_bench_run(bench_path, experiment: str,
                     entry: Dict[str, Any]) -> Dict[str, Any]:
    """Trajectory line for one :func:`repro.exec.record_run` entry."""
    from repro.exec.telemetry import git_sha

    record: Dict[str, Any] = {"experiment": experiment,
                              "git_sha": git_sha()}
    for field in _CARRIED_FIELDS:
        if field in entry:
            record[field] = entry[field]
    return append_trajectory(trajectory_path_for(bench_path), record)


def read_trajectory(path, experiment: Optional[str] = None
                    ) -> List[Dict[str, Any]]:
    """Load trajectory lines, oldest first, skipping corrupt lines.

    *experiment* filters to one experiment's history.  A missing file is
    an empty history, matching "no runs recorded yet".
    """
    records: List[Dict[str, Any]] = []
    try:
        fh = open(path)
    except OSError:
        return records
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # truncated append; lose the line, not the file
            if not isinstance(record, dict):
                continue
            if experiment is None or record.get("experiment") == experiment:
                records.append(record)
    return records
