"""``python -m repro.harness watch telemetry.jsonl`` — live grid monitor.

The exec engine's ``--trace PATH`` stream is append-only JSONL with a
self-describing :data:`~repro.exec.telemetry.RUN_HEADER` first record.
``watch`` follows that file while a grid runs — from another terminal,
over NFS, wherever — and renders per-job state, worker utilization,
cache-hit ratio, throughput and an ETA without touching the run itself.

All derived numbers come from the **event timestamps in the stream**,
never from the watcher's own clock, so replaying a recorded stream
(the default when ``--follow`` is not given) produces the exact same
panel every time — which is how the tests pin this code down.

Streams whose header declares an unknown schema version are rejected
with a clear error (exit 2); headerless streams from pre-header builds
are tolerated with a note.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.exec.telemetry import (
    CACHE_HIT,
    DRAINED,
    FAILED,
    FINISHED,
    POOL_BROKEN,
    QUEUED,
    REPLAYED,
    RETRIED,
    RUN_HEADER,
    STARTED,
    TELEMETRY_SCHEMA,
)

#: Job states, in lifecycle order.
ST_QUEUED = "queued"
ST_RUNNING = "running"
ST_DONE = "done"
ST_FAILED = "failed"
ST_CACHED = "cached"
ST_REPLAYED = "replayed"
ST_DRAINED = "drained"


class WatchError(ValueError):
    """The stream cannot be followed (unknown schema, unreadable file)."""


class TelemetryFollower:
    """Incremental reducer of a telemetry JSONL stream.

    Feed it lines (complete or not — partial trailing lines are buffered
    until their newline arrives) and ask for :meth:`snapshot` /
    :meth:`render` at any point.  Corrupt lines are counted and skipped,
    so a stream truncated by a dying run stays watchable.
    """

    def __init__(self) -> None:
        self.header: Optional[Dict[str, Any]] = None
        #: Sum of the per-grid ``jobs`` counts: a multi-grid experiment
        #: (``sensitivity``) writes one header per grid into one stream.
        self.header_jobs = 0
        self.jobs: Dict[str, Dict[str, Any]] = {}
        self.order: List[str] = []
        self.retries = 0
        self.pool_breaks = 0
        self.corrupt_lines = 0
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.last_label: Optional[str] = None
        self._records = 0
        self._partial = ""

    # -- ingestion -----------------------------------------------------------
    def feed_text(self, text: str) -> None:
        """Consume a chunk of the file (any split is fine)."""
        self._partial += text
        while "\n" in self._partial:
            line, self._partial = self._partial.split("\n", 1)
            self.feed_line(line)

    def feed_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except ValueError:
            self.corrupt_lines += 1
            return
        if not isinstance(record, dict) or "event" not in record:
            self.corrupt_lines += 1
            return
        self._apply(record)

    def _apply(self, record: Dict[str, Any]) -> None:
        kind = record["event"]
        if kind == RUN_HEADER:
            schema = record.get("schema")
            if schema != TELEMETRY_SCHEMA:
                raise WatchError(
                    f"telemetry stream declares schema {schema!r}; this "
                    f"build understands schema {TELEMETRY_SCHEMA} — "
                    f"regenerate the trace or upgrade")
            if self.header is None:
                self.header = record
            self.header_jobs += record.get("jobs") or 0
            return
        self._records += 1
        ts = record.get("timestamp")
        if isinstance(ts, (int, float)):
            if self.first_ts is None:
                self.first_ts = ts
            self.last_ts = ts
        key = record.get("key")
        if key is None:
            return
        job = self.jobs.get(key)
        if job is None:
            job = self.jobs[key] = {"label": record.get("label"),
                                    "state": ST_QUEUED, "wall": None,
                                    "attempts": 0, "error": None}
            self.order.append(key)
        if kind == QUEUED:
            pass
        elif kind == STARTED:
            job["state"] = ST_RUNNING
            job["attempts"] = max(job["attempts"], record.get("attempt", 0))
        elif kind == CACHE_HIT:
            job["state"] = ST_CACHED
        elif kind == REPLAYED:
            job["state"] = ST_REPLAYED
        elif kind == FINISHED:
            if job["state"] not in (ST_CACHED, ST_REPLAYED):
                # A resumed run's journal replays also carry
                # cache="replay" on FINISHED (wall 0) in case the
                # REPLAYED record itself was lost to a torn tail.
                if record.get("cache") == "replay":
                    job["state"] = ST_REPLAYED
                else:
                    job["state"] = ST_DONE
            job["wall"] = record.get("wall")
            self.last_label = job["label"]
        elif kind == FAILED:
            job["state"] = ST_FAILED
            job["error"] = record.get("error")
            self.last_label = job["label"]
        elif kind == RETRIED:
            self.retries += 1
        elif kind == POOL_BROKEN:
            self.pool_breaks += 1
        elif kind == DRAINED:
            job["state"] = ST_DRAINED
            self.last_label = job["label"]

    # -- derived state -------------------------------------------------------
    def _count(self, state: str) -> int:
        return sum(1 for job in self.jobs.values() if job["state"] == state)

    @property
    def total(self) -> int:
        if self.header_jobs:
            return max(self.header_jobs, len(self.jobs))
        return len(self.jobs)

    @property
    def complete(self) -> bool:
        """Every known job reached a terminal state (and any job exists)."""
        if not self.jobs or len(self.jobs) < self.total:
            return False
        return all(job["state"] in (ST_DONE, ST_FAILED, ST_CACHED,
                                    ST_REPLAYED, ST_DRAINED)
                   for job in self.jobs.values())

    def snapshot(self) -> Dict[str, Any]:
        """The panel's numbers, derived purely from stream timestamps."""
        done = self._count(ST_DONE)
        cached = self._count(ST_CACHED)
        replayed = self._count(ST_REPLAYED)
        failed = self._count(ST_FAILED)
        running = self._count(ST_RUNNING)
        # Journal replays (resumed runs) count as finished work for
        # progress and ETA — they will never run again — but are kept
        # out of the throughput numerator: their wall is 0, and folding
        # them in would claim a resumed grid simulates faster than it
        # does.
        finished = done + cached + replayed
        lookups = len(self.jobs)
        walls = [job["wall"] for job in self.jobs.values()
                 if job["state"] == ST_DONE and job["wall"]]
        elapsed = ((self.last_ts - self.first_ts)
                   if self.first_ts is not None and self.last_ts is not None
                   else 0.0)
        workers = (self.header or {}).get("workers") or 1
        mean_wall = sum(walls) / len(walls) if walls else 0.0
        remaining = max(self.total - finished - failed, 0)
        eta = (remaining * mean_wall / workers) if mean_wall else None
        throughput = ((done + cached + failed) / elapsed) if elapsed > 0 else None
        utilization = (min(sum(walls) / (elapsed * workers), 1.0)
                       if elapsed > 0 and walls else None)
        return {
            "schema": (self.header or {}).get("schema"),
            "git_sha": (self.header or {}).get("git_sha"),
            "experiment": (self.header or {}).get("experiment"),
            "workers": workers,
            "total": self.total,
            "queued": self._count(ST_QUEUED),
            "running": running,
            "done": done,
            "cached": cached,
            "replayed": replayed,
            "failed": failed,
            "drained": self._count(ST_DRAINED),
            "retries": self.retries,
            "pool_breaks": self.pool_breaks,
            "corrupt_lines": self.corrupt_lines,
            "cache_hit_ratio": (cached / lookups) if lookups else 0.0,
            "elapsed": round(elapsed, 4),
            "mean_wall": round(mean_wall, 4),
            "throughput": (round(throughput, 4)
                           if throughput is not None else None),
            "eta": round(eta, 4) if eta is not None else None,
            "utilization": (round(utilization, 4)
                            if utilization is not None else None),
            "complete": self.complete,
            "last_label": self.last_label,
        }

    # -- rendering -----------------------------------------------------------
    def status_line(self) -> str:
        """One-line live view (the ``--follow`` refresh)."""
        snap = self.snapshot()
        finished = snap["done"] + snap["cached"] + snap["replayed"]
        bits = [f"[{finished + snap['failed']}/{snap['total']}]",
                f"run {snap['running']}",
                f"hit {snap['cached']}"]
        if snap["replayed"]:
            bits.append(f"replay {snap['replayed']}")
        if snap["failed"]:
            bits.append(f"FAILED {snap['failed']}")
        if snap["throughput"] is not None:
            bits.append(f"{snap['throughput']:.2f} jobs/s")
        if snap["eta"] is not None:
            bits.append(f"eta ~{snap['eta']:.1f}s")
        if snap["last_label"]:
            bits.append(snap["last_label"])
        return " ".join(bits)

    def render(self, jobs_detail: int = 0) -> str:
        """The multi-line panel (replay mode / final screen)."""
        snap = self.snapshot()
        head = ["watch — "
                + (f"{snap['experiment']} " if snap["experiment"] else "")
                + f"{snap['total']} jobs, {snap['workers']} worker(s)"]
        if self.header is None:
            head.append("  note: headerless (pre-schema) stream")
        else:
            sha = snap["git_sha"] or "unknown"
            head.append(f"  schema {snap['schema']}, git {sha[:12]}")
        if snap["corrupt_lines"]:
            head.append(f"  note: skipped {snap['corrupt_lines']} "
                        f"corrupt line(s)")
        finished = snap["done"] + snap["cached"] + snap["replayed"]
        head.append(
            f"  state       {finished} finished "
            f"({snap['cached']} cache hits, "
            f"{100.0 * snap['cache_hit_ratio']:.0f}% hit ratio), "
            f"{snap['failed']} failed, {snap['running']} running, "
            f"{snap['queued']} queued"
            + (f", {snap['replayed']} journal-replayed"
               if snap["replayed"] else "")
            + (f", {snap['drained']} drained" if snap["drained"] else ""))
        if snap["retries"] or snap["pool_breaks"]:
            head.append(f"  recoveries  {snap['retries']} retries, "
                        f"{snap['pool_breaks']} pool break(s)")
        line = f"  timing      {snap['elapsed']:.2f}s elapsed"
        if snap["mean_wall"]:
            line += f", {snap['mean_wall']:.3f}s mean/job"
        if snap["throughput"] is not None:
            line += f", {snap['throughput']:.2f} jobs/s"
        head.append(line)
        extras = []
        if snap["utilization"] is not None:
            extras.append(f"utilization {100.0 * snap['utilization']:.0f}%")
        if snap["eta"] is not None:
            extras.append(f"eta ~{snap['eta']:.1f}s")
        extras.append("complete" if snap["complete"] else "in progress")
        head.append("  status      " + ", ".join(extras))
        if jobs_detail:
            head.append("  jobs:")
            for key in self.order[:jobs_detail]:
                job = self.jobs[key]
                wall = (f" {job['wall']:.3f}s" if job["wall"] else "")
                err = f" ({job['error']})" if job["error"] else ""
                head.append(f"    {job['state']:<8} {job['label']}"
                            f"{wall}{err}")
            hidden = len(self.order) - jobs_detail
            if hidden > 0:
                head.append(f"    ... and {hidden} more")
        return "\n".join(head)


def replay(path: str) -> TelemetryFollower:
    """Reduce an entire recorded stream; deterministic for a given file."""
    follower = TelemetryFollower()
    try:
        with open(path) as fh:
            follower.feed_text(fh.read())
    except OSError as exc:
        raise WatchError(f"cannot read {path}: {exc}")
    return follower


def follow(path: str, interval: float = 0.5,
           timeout: Optional[float] = None, stream=None,
           _sleep=time.sleep) -> TelemetryFollower:
    """Tail *path* until the run completes (or *timeout* seconds pass)."""
    out = stream if stream is not None else sys.stderr
    follower = TelemetryFollower()
    deadline = (time.monotonic() + timeout) if timeout else None
    try:
        fh = open(path)
    except OSError as exc:
        raise WatchError(f"cannot read {path}: {exc}")
    with fh:
        while True:
            chunk = fh.read()
            if chunk:
                follower.feed_text(chunk)
            out.write(f"\r{follower.status_line():<78}")
            out.flush()
            if follower.complete:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            _sleep(interval)
    out.write("\n")
    return follower


def watch_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness watch",
        description="Follow an exec-engine telemetry JSONL stream: "
                    "per-job state, utilization, cache hits, throughput "
                    "and ETA.")
    parser.add_argument("trace", metavar="TELEMETRY_JSONL",
                        help="the --trace file an engine run is writing "
                             "(or wrote)")
    parser.add_argument("--follow", action="store_true",
                        help="keep tailing until the run completes "
                             "(default: replay what is there and exit)")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="poll interval in seconds (default 0.5)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="give up following after this many seconds")
    parser.add_argument("--jobs-detail", type=int, default=0, metavar="N",
                        help="also list per-job state for the first N jobs")
    args = parser.parse_args(argv)

    try:
        if args.follow:
            follower = follow(args.trace, interval=args.interval,
                              timeout=args.timeout)
        else:
            follower = replay(args.trace)
    except WatchError as exc:
        print(f"watch: error: {exc}")
        return 2
    print(follower.render(jobs_detail=args.jobs_detail))
    return 0


if __name__ == "__main__":
    sys.exit(watch_main())
