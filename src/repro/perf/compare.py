"""``python -m repro.harness compare A B`` — diff two recorded runs.

Three comparison modes, picked from what A and B actually are:

* **manifest mode** — A/B are run ids under ``results/runs`` (or run
  directories, or ``manifest.json`` paths).  Simulated statistics are
  compared **digit-exact**: the simulators are deterministic, so any
  drift between equal-config runs is a correctness alarm, never noise.
  Wall times get the opposite treatment — per-cell wall ratios are
  resampled (bootstrap over the repeated cells) into a confidence
  interval, and a delta whose CI straddles 1.0 is classified
  ``no change`` rather than eyeballed.
* **bench mode** — A/B are ``BENCH_harness.json`` / ``BENCH_hotpath.json``
  style snapshot files; named scalar timings are compared as ratios
  against ``--warn-above`` / ``--fail-above`` thresholds (the perf-gate
  CI job runs exactly this against fresh microbenchmark timings).  When
  both snapshots carry the ``micro/calibration`` host-speed yardstick,
  micro ratios are calibration-normalized so host/sitting wall drift
  cancels out of the committed-vs-fresh comparison.
* **trace mode** (``--trace-dir``) — A/B are ``repro.obs`` artifact
  directories; per-cell ``*.metrics.json`` payloads are compared
  digit-exact.

Exit status: 0 when nothing regressed (warnings included), 1 on any
simulated-stat drift or a wall regression at/above ``--fail-above``,
2 on usage/schema errors.  ``--json`` emits the full machine-readable
report instead of text.
"""

from __future__ import annotations

import argparse
import json
import os
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perf.manifest import (
    MANIFEST_KIND,
    ManifestError,
    load_manifest,
    resolve_manifest_path,
)

#: Default noise thresholds on wall-time ratios (B over A).
DEFAULT_FAIL_ABOVE = 1.25
DEFAULT_WARN_ABOVE = 1.10

#: Bench snapshot schemas this build understands, by discriminator key.
_BENCH_SCHEMAS = {"experiments": 2, "microbenchmarks": 1}

#: Verdicts that carry exit status 1.
FAILING_VERDICTS = ("regression", "sim drift")


# -- statistics ---------------------------------------------------------------

def bootstrap_ci(samples: Sequence[float], resamples: int = 2000,
                 seed: int = 1234, confidence: float = 0.95
                 ) -> Tuple[float, float, float]:
    """(mean, ci_lo, ci_hi) of *samples* via a seeded percentile bootstrap.

    Deterministic for a given seed, so test runs and CI retries agree.
    With a single sample the interval degenerates to the point.
    """
    k = len(samples)
    if k == 0:
        raise ValueError("bootstrap_ci needs at least one sample")
    mean = sum(samples) / k
    if k == 1:
        return mean, samples[0], samples[0]
    rng = random.Random(seed)
    means = sorted(
        sum(rng.choice(samples) for _ in range(k)) / k
        for _ in range(resamples))
    alpha = (1.0 - confidence) / 2.0
    lo = means[int(alpha * (resamples - 1))]
    hi = means[int((1.0 - alpha) * (resamples - 1))]
    return mean, lo, hi


def classify_ratio(mean: float, lo: float, hi: float,
                   fail_above: float = DEFAULT_FAIL_ABOVE,
                   warn_above: float = DEFAULT_WARN_ABOVE) -> str:
    """Noise-aware verdict for a wall-time ratio with its bootstrap CI."""
    if lo <= 1.0 <= hi:
        return "no change"
    if mean >= fail_above:
        return "regression"
    if mean >= warn_above:
        return "warn"
    return "faster" if mean < 1.0 else "slower (within threshold)"


# -- input resolution ---------------------------------------------------------

def _load_side(ref: str, root: Optional[str]) -> Tuple[str, Dict[str, Any]]:
    """Classify one positional as ('manifest'|'bench', payload)."""
    if os.path.isfile(ref) and not ref.endswith(os.sep + "manifest.json") \
            and os.path.basename(ref) != "manifest.json":
        with open(ref) as fh:
            try:
                data = json.load(fh)
            except ValueError as exc:
                raise ManifestError(f"{ref} is not valid JSON: {exc}")
        if data.get("kind") == MANIFEST_KIND:
            return "manifest", load_manifest(ref, root)
        for key, schema in _BENCH_SCHEMAS.items():
            if key in data:
                if data.get("schema") != schema:
                    raise ManifestError(
                        f"{ref} has bench schema {data.get('schema')!r}; "
                        f"expected {schema} for a file with {key!r}")
                return "bench", data
        raise ManifestError(
            f"{ref} is neither a run manifest nor a recognised BENCH file")
    return "manifest", load_manifest(ref, root)


# -- manifest mode ------------------------------------------------------------

def _cells_by_label(manifest: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {cell["label"]: cell for cell in manifest.get("cells", [])}


def compare_manifests(a: Dict[str, Any], b: Dict[str, Any],
                      fail_above: float = DEFAULT_FAIL_ABOVE,
                      warn_above: float = DEFAULT_WARN_ABOVE,
                      resamples: int = 2000, seed: int = 1234
                      ) -> Dict[str, Any]:
    """The manifest-mode report dict (see the module docstring)."""
    cells_a, cells_b = _cells_by_label(a), _cells_by_label(b)
    common = [label for label in cells_a if label in cells_b]
    notes: List[str] = []
    if a.get("config_digest") != b.get("config_digest"):
        notes.append("config digests differ: the runs did not simulate "
                     "the same grid; stats compared for matching labels "
                     "only")
    only_a = sorted(set(cells_a) - set(cells_b))
    only_b = sorted(set(cells_b) - set(cells_a))
    if only_a:
        notes.append(f"{len(only_a)} cell(s) only in A "
                     f"(e.g. {only_a[0]})")
    if only_b:
        notes.append(f"{len(only_b)} cell(s) only in B "
                     f"(e.g. {only_b[0]})")

    # Digit-exact simulated statistics: any difference is drift.
    drift: List[Dict[str, Any]] = []
    for label in common:
        sim_a = cells_a[label].get("sim")
        sim_b = cells_b[label].get("sim")
        if sim_a == sim_b:
            continue
        if sim_a is None or sim_b is None:
            drift.append({"label": label, "field": "sim",
                          "a": sim_a, "b": sim_b})
            continue
        for field in sorted(set(sim_a) | set(sim_b)):
            if sim_a.get(field) != sim_b.get(field):
                drift.append({"label": label, "field": field,
                              "a": sim_a.get(field),
                              "b": sim_b.get(field)})

    # Noise-aware wall-time deltas over the executed (non-cache-hit)
    # cells present in both runs.
    ratios: List[float] = []
    by_benchmark: Dict[str, List[float]] = {}
    for label in common:
        cell_a, cell_b = cells_a[label], cells_b[label]
        wall_a, wall_b = cell_a.get("wall"), cell_b.get("wall")
        if not wall_a or not wall_b:
            continue
        if cell_a.get("cache") == "hit" or cell_b.get("cache") == "hit":
            continue
        ratio = wall_b / wall_a
        ratios.append(ratio)
        by_benchmark.setdefault(cell_a.get("benchmark", "?"),
                                []).append(ratio)

    def _summary(samples: List[float]) -> Optional[Dict[str, Any]]:
        if not samples:
            return None
        mean, lo, hi = bootstrap_ci(samples, resamples=resamples, seed=seed)
        return {"cells": len(samples), "ratio": round(mean, 4),
                "ci": [round(lo, 4), round(hi, 4)],
                "verdict": classify_ratio(mean, lo, hi, fail_above,
                                          warn_above)}

    wall = {
        "overall": _summary(ratios),
        "benchmarks": {name: _summary(samples)
                       for name, samples in sorted(by_benchmark.items())},
    }
    verdicts = [entry["verdict"] for entry in
                [wall["overall"], *wall["benchmarks"].values()] if entry]
    if drift:
        overall = "sim drift"
    elif any(v == "regression" for v in verdicts):
        overall = "regression"
    elif any(v == "warn" for v in verdicts):
        overall = "warn"
    else:
        overall = "ok"
    return {
        "mode": "manifest",
        "a": {"run_id": a.get("run_id"), "git_sha": a.get("git_sha"),
              "experiment": a.get("experiment")},
        "b": {"run_id": b.get("run_id"), "git_sha": b.get("git_sha"),
              "experiment": b.get("experiment")},
        "compared_cells": len(common),
        "sim_drift": drift,
        "wall": wall,
        "notes": notes,
        "verdict": overall,
    }


# -- bench mode ---------------------------------------------------------------

def _bench_timings(data: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a BENCH snapshot into ``name -> seconds``."""
    timings: Dict[str, float] = {}
    micro = data.get("microbenchmarks", {}).get("timings", {})
    for name, seconds in micro.items():
        timings[f"micro/{name}"] = seconds
    for experiment, slots in data.get("experiments", {}).items():
        for temperature, entry in slots.items():
            wall = entry.get("wall_seconds")
            if wall is not None:
                timings[f"{experiment}/{temperature}"] = wall
    return timings


#: The host-speed yardstick scenario recorded by test_hotpath_micro.py;
#: when both snapshots carry it, micro timings are compared as
#: calibration-normalized ratios (host/sitting drift divided out).
CALIBRATION_TIMING = "micro/calibration"


def compare_bench(a: Dict[str, Any], b: Dict[str, Any],
                  fail_above: float = DEFAULT_FAIL_ABOVE,
                  warn_above: float = DEFAULT_WARN_ABOVE) -> Dict[str, Any]:
    """Bench-mode report: single-sample timing ratios vs thresholds.

    Raw walls from two different sittings (or hosts) disagree by tens of
    percent without any code change, so when both snapshots recorded the
    :data:`CALIBRATION_TIMING` yardstick, every other ``micro/*`` ratio
    is divided by the calibration ratio first — comparing "times the
    host's own Python speed" instead of seconds against seconds.
    """
    timings_a, timings_b = _bench_timings(a), _bench_timings(b)
    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    scale = None
    cal_a = timings_a.get(CALIBRATION_TIMING)
    cal_b = timings_b.get(CALIBRATION_TIMING)
    if cal_a and cal_b:
        scale = cal_b / cal_a
        notes.append(f"micro/* ratios normalized by the calibration "
                     f"ratio x{scale:.3f} (host/sitting speed drift)")
    for name in sorted(set(timings_a) | set(timings_b)):
        if name == CALIBRATION_TIMING:
            continue
        if name not in timings_a or name not in timings_b:
            notes.append(f"{name} present in only one snapshot; skipped")
            continue
        ta, tb = timings_a[name], timings_b[name]
        if not ta:
            notes.append(f"{name} has a zero baseline; skipped")
            continue
        ratio = tb / ta
        if scale is not None and name.startswith("micro/"):
            ratio /= scale
        if ratio >= fail_above:
            verdict = "regression"
        elif ratio >= warn_above:
            verdict = "warn"
        elif ratio <= 1.0:
            verdict = "faster"
        else:
            verdict = "ok"
        rows.append({"name": name, "a": ta, "b": tb,
                     "ratio": round(ratio, 4), "verdict": verdict})
    if any(row["verdict"] == "regression" for row in rows):
        overall = "regression"
    elif any(row["verdict"] == "warn" for row in rows):
        overall = "warn"
    else:
        overall = "ok"
    return {"mode": "bench", "timings": rows, "notes": notes,
            "verdict": overall}


# -- trace mode ---------------------------------------------------------------

def compare_trace_dirs(dir_a: str, dir_b: str) -> Dict[str, Any]:
    """Digit-exact diff of two repro.obs artifact directories."""
    def _metrics(directory: str) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(directory))
        except OSError as exc:
            raise ManifestError(f"cannot list {directory}: {exc}")
        for name in names:
            if not name.endswith(".metrics.json"):
                continue
            with open(os.path.join(directory, name)) as fh:
                out[name[:-len(".metrics.json")]] = json.load(fh)
        return out

    cells_a, cells_b = _metrics(dir_a), _metrics(dir_b)
    notes = [f"{stem} present in only one directory; skipped"
             for stem in sorted(set(cells_a) ^ set(cells_b))]
    drift: List[Dict[str, Any]] = []
    common = sorted(set(cells_a) & set(cells_b))
    for stem in common:
        for section in ("metrics", "conflict_heat", "mshr_timeline",
                        "events"):
            if cells_a[stem].get(section) != cells_b[stem].get(section):
                drift.append({"label": stem, "field": section,
                              "a": cells_a[stem].get(section),
                              "b": cells_b[stem].get(section)})
    return {"mode": "trace", "compared_cells": len(common),
            "sim_drift": drift, "notes": notes,
            "verdict": "sim drift" if drift else "ok"}


# -- rendering ----------------------------------------------------------------

def render_compare(report: Dict[str, Any], ref_a: str, ref_b: str) -> str:
    lines = [f"compare — {ref_a} vs {ref_b}  [{report['mode']} mode]"]
    for note in report.get("notes", []):
        lines.append(f"  note: {note}")
    drift = report.get("sim_drift")
    if drift is not None:
        lines.append(f"  simulated stats: "
                     + (f"{len(drift)} DRIFTING field(s) — correctness "
                        f"alarm" if drift else
                        f"digit-exact over "
                        f"{report.get('compared_cells', 0)} cell(s)"))
        for row in drift[:20]:
            lines.append(f"    {row['label']}.{row['field']}: "
                         f"{row['a']!r} -> {row['b']!r}")
        if len(drift) > 20:
            lines.append(f"    ... and {len(drift) - 20} more")
    wall = report.get("wall")
    if wall and wall.get("overall"):
        overall = wall["overall"]
        lines.append(
            f"  wall time: ratio {overall['ratio']:.3f} "
            f"(95% CI [{overall['ci'][0]:.3f}, {overall['ci'][1]:.3f}] "
            f"over {overall['cells']} cells) — {overall['verdict']}")
        for name, entry in wall["benchmarks"].items():
            if entry is None:
                continue
            lines.append(
                f"    {name:<12} ratio {entry['ratio']:.3f} "
                f"CI [{entry['ci'][0]:.3f}, {entry['ci'][1]:.3f}] "
                f"({entry['cells']} cells) — {entry['verdict']}")
    for row in report.get("timings", []):
        lines.append(f"    {row['name']:<28} {row['a']:.4f}s -> "
                     f"{row['b']:.4f}s  x{row['ratio']:.3f}  "
                     f"{row['verdict']}")
    lines.append(f"  verdict: {report['verdict'].upper()}")
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------

def compare_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness compare",
        description="Diff two recorded runs: digit-exact on simulated "
                    "statistics, bootstrap-CI noise analysis on wall "
                    "times.")
    parser.add_argument("a", metavar="RUN_A",
                        help="run id, run directory, manifest.json, or "
                             "BENCH_*.json snapshot")
    parser.add_argument("b", metavar="RUN_B", help="same, the candidate")
    parser.add_argument("--trace-dir", action="store_true",
                        help="treat RUN_A/RUN_B as repro.obs artifact "
                             "directories and diff their *.metrics.json "
                             "digit-exact")
    parser.add_argument("--runs-root", default=None, metavar="DIR",
                        help="manifest root for bare run ids (default "
                             "results/runs or REPRO_RUNS_DIR)")
    parser.add_argument("--fail-above", type=float,
                        default=DEFAULT_FAIL_ABOVE, metavar="R",
                        help="wall ratio at/above which the verdict is a "
                             "failing regression (default 1.25)")
    parser.add_argument("--warn-above", type=float,
                        default=DEFAULT_WARN_ABOVE, metavar="R",
                        help="wall ratio at/above which to warn "
                             "(default 1.10)")
    parser.add_argument("--resamples", type=int, default=2000,
                        help="bootstrap resamples (default 2000)")
    parser.add_argument("--bootstrap-seed", type=int, default=1234,
                        help="bootstrap RNG seed (default 1234)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    args = parser.parse_args(argv)

    try:
        if args.trace_dir:
            report = compare_trace_dirs(args.a, args.b)
        else:
            mode_a, data_a = _load_side(args.a, args.runs_root)
            mode_b, data_b = _load_side(args.b, args.runs_root)
            if mode_a != mode_b:
                raise ManifestError(
                    f"cannot compare a {mode_a} against a {mode_b}; pass "
                    f"two manifests or two BENCH snapshots")
            if mode_a == "bench":
                report = compare_bench(data_a, data_b,
                                       fail_above=args.fail_above,
                                       warn_above=args.warn_above)
            else:
                report = compare_manifests(
                    data_a, data_b, fail_above=args.fail_above,
                    warn_above=args.warn_above, resamples=args.resamples,
                    seed=args.bootstrap_seed)
    except ManifestError as exc:
        print(f"compare: error: {exc}")
        return 2

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_compare(report, args.a, args.b))
    return 1 if report["verdict"] in FAILING_VERDICTS else 0
