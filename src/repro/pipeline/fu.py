"""Per-cycle functional-unit availability.

Table 1's functional units are fully pipelined (the paper's stated
simplification), so a unit accepts a new operation every cycle regardless of
operation latency.  Availability therefore reduces to per-cycle issue
counters per unit kind.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.opclass import FUKind
from repro.pipeline.config import CoreConfig


class FUPool:
    """Issue-bandwidth tracker for one cycle at a time."""

    def __init__(self, config: CoreConfig) -> None:
        self._counts: Dict[FUKind, int] = {
            FUKind.INT: config.int_units,
            FUKind.FP: config.fp_units,
            FUKind.BRANCH: config.branch_units,
            FUKind.MEMORY: config.mem_units,
        }
        # No dedicated memory unit: memory ops flow through the integer
        # pipes (the Alpha 21164 arrangement).
        self._mem_on_int = config.mem_units == 0
        self._avail: Dict[FUKind, int] = dict(self._counts)

    def new_cycle(self) -> None:
        """Reset availability at the start of a cycle."""
        self._avail = dict(self._counts)

    def try_take(self, kind: FUKind) -> bool:
        """Claim a unit of *kind* this cycle; False if none remain."""
        if kind is FUKind.NONE:
            return True
        if kind is FUKind.MEMORY and self._mem_on_int:
            kind = FUKind.INT
        if self._avail[kind] > 0:
            self._avail[kind] -= 1
            return True
        return False

    def available(self, kind: FUKind) -> int:
        if kind is FUKind.NONE:
            return 1
        if kind is FUKind.MEMORY and self._mem_on_int:
            kind = FUKind.INT
        return self._avail[kind]
