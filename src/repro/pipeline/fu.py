"""Per-cycle functional-unit availability.

Table 1's functional units are fully pipelined (the paper's stated
simplification), so a unit accepts a new operation every cycle regardless of
operation latency.  Availability therefore reduces to per-cycle issue
counters per unit kind.

The counters live in a plain list indexed by the dense FU codes from
:mod:`repro.isa.opclass` (``op.fu_code``): the issue loops of both cores
claim units tens of thousands of times per simulated run, and list indexing
by a small int sidesteps the Python-level ``Enum.__hash__`` a dict keyed by
:class:`FUKind` would pay on every claim.
"""

from __future__ import annotations

from repro.isa.opclass import FU_BRANCH, FU_FP, FU_INT, FU_MEMORY, FU_NONE, FUKind
from repro.pipeline.config import CoreConfig


class FUPool:
    """Issue-bandwidth tracker for one cycle at a time."""

    __slots__ = ("_counts", "_avail", "_code_map")

    def __init__(self, config: CoreConfig) -> None:
        # FU_NONE gets a count wider than any issue width so NOPs always
        # succeed without a special case on the claim path.
        self._counts = [config.int_units, config.fp_units,
                        config.branch_units, config.mem_units, 1 << 30]
        # No dedicated memory unit: memory ops flow through the integer
        # pipes (the Alpha 21164 arrangement).  The remap is baked into a
        # code-translation table so the claim path stays branch-free.
        mem_on_int = config.mem_units == 0
        self._code_map = [FU_INT, FU_FP, FU_BRANCH,
                          FU_INT if mem_on_int else FU_MEMORY, FU_NONE]
        self._avail = list(self._counts)

    def new_cycle(self) -> None:
        """Reset availability at the start of a cycle."""
        self._avail[:] = self._counts

    def take_code(self, code: int) -> bool:
        """Claim a unit by dense FU code (``op.fu_code``); False if none."""
        avail = self._avail
        code = self._code_map[code]
        if avail[code] > 0:
            avail[code] = avail[code] - 1
            return True
        return False

    def try_take(self, kind: FUKind) -> bool:
        """Claim a unit of *kind* this cycle; False if none remain."""
        return self.take_code(kind.fu_code)

    def available(self, kind: FUKind) -> int:
        if kind is FUKind.NONE:
            return 1
        return self._avail[self._code_map[kind.fu_code]]
