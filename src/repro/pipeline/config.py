"""Pipeline configuration: the left half of Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opclass import OpClass


@dataclass(frozen=True)
class LatencyTable:
    """Execution latency (cycles) per op class.

    Table 1 gives the class latencies that differ between the machines;
    the single-cycle classes are fixed.  Load latency is owned by the
    memory hierarchy (hit latency / miss ready times), so LOAD/STORE here
    carry only the 1-cycle address-generation/agen slot cost.
    """

    imul: int = 12
    idiv: int = 76
    fdiv: int = 15
    fsqrt: int = 20
    fp_other: int = 2

    def latency_of(self, op: OpClass) -> int:
        getter = _LATENCY_DISPATCH.get(op)
        return getter(self) if getter is not None else 1

    def as_list(self) -> list:
        """Latencies indexed by ``OpClass.op_code``.

        The cores index this list on the issue path instead of calling
        :meth:`latency_of`; enum-keyed dict lookups hash through a
        Python-level ``Enum.__hash__``.
        """
        return [self.latency_of(op) for op in OpClass]


_LATENCY_DISPATCH: Dict[OpClass, object] = {
    OpClass.IMUL: lambda t: t.imul,
    OpClass.IDIV: lambda t: t.idiv,
    OpClass.FDIV: lambda t: t.fdiv,
    OpClass.FSQRT: lambda t: t.fsqrt,
    OpClass.FP: lambda t: t.fp_other,
}


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline parameters for one machine model.

    Attributes:
        issue_width: instructions fetched/issued/graduated per cycle (4).
        int_units / fp_units / branch_units / mem_units: FU mix.  The
            in-order machine sets ``mem_units = 0`` — per Table 1 it has no
            dedicated memory unit, so memory ops use the integer pipes as
            on the Alpha 21164.
        rob_size: reorder-buffer entries; None means in-order (no ROB).
        shadow_branches: maximum unresolved predicted branches in flight
            (R10000 shadow rename state; the paper notes ~3).  When
            informing traps are handled branch-style, in-flight informing
            memory ops consume the same resource (Section 3.2).
        mispredict_penalty: fetch-redirect cycles after a mispredicted
            branch resolves; the same penalty applies to taking an
            informing trap (the implicit branch is predicted not-taken).
        latencies: the machine's :class:`LatencyTable`.
        predictor_entries: 2-bit-counter table size.
    """

    name: str
    issue_width: int = 4
    int_units: int = 2
    fp_units: int = 2
    branch_units: int = 1
    mem_units: int = 1
    rob_size: int = 32
    shadow_branches: int = 3
    mispredict_penalty: int = 4
    latencies: LatencyTable = field(default_factory=LatencyTable)
    predictor_entries: int = 2048

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        if self.int_units < 1:
            raise ValueError("need at least one integer unit")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict penalty cannot be negative")
