"""Replayable fetch streams with handler injection.

A core fetches from a :class:`StreamStack`: a stack of instruction frames.
The bottom frame is the application's dynamic trace; taking an informing
trap pushes a *handler frame* on top, and the handler's terminating
MHRR-jump simply lets the frame exhaust, resuming the frame below.

Every fetched instruction carries a :class:`FetchPoint`; squashing younger
instructions (a mispredicted branch-style trap, or an exception-style flush)
is :meth:`StreamStack.rewind_after` — the stack pops any frames pushed after
the point and rewinds the owning frame so the same instructions are fetched
again.  This replay is exactly the paper's semantics: the instruction after
a trapping memory op is squashed and later re-fetched after the handler
returns.

Frames buffer fetched instructions until the core commits them
(:meth:`StreamStack.committed`), which bounds memory while allowing
arbitrary rewinds to uncommitted points.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.isa.instructions import DynInst

#: Instructions pulled from a frame's source per refill.  Batching the
#: generator drain through ``islice`` replaces one interpreter-level
#: ``next()`` round-trip per fetched instruction with one per chunk.
_REFILL_CHUNK = 64


class StreamError(RuntimeError):
    """Raised on rewinds to unavailable points (a core bug, not a workload)."""


class FetchPoint(NamedTuple):
    """Identity of one fetched instruction: owning frame plus index."""

    frame_serial: int
    index: int


class _Frame:
    __slots__ = ("serial", "source", "buffer", "base", "pos", "end")

    def __init__(self, source: Iterable[DynInst], serial: int) -> None:
        self.serial = serial
        self.source: Iterator[DynInst] = iter(source)
        self.buffer: Deque[DynInst] = deque()
        self.base = 0            # absolute index of buffer[0]
        self.pos = 0             # absolute index of the next fetch
        self.end: Optional[int] = None  # absolute length once exhausted

    def fetch(self) -> Optional[DynInst]:
        buffer = self.buffer
        offset = self.pos - self.base
        if offset >= len(buffer):
            if self.end is not None:
                return None
            buffer.extend(islice(self.source, _REFILL_CHUNK))
            if offset >= len(buffer):
                self.end = self.pos
                return None
        inst = buffer[offset]
        self.pos += 1
        return inst

    @property
    def finished(self) -> bool:
        return self.end is not None and self.pos >= self.end

    def rewind_to(self, index: int) -> None:
        if index < self.base:
            raise StreamError(
                f"rewind to {index} below committed base {self.base}")
        if index > self.pos:
            raise StreamError(f"rewind to {index} beyond fetch point {self.pos}")
        self.pos = index

    def trim_to(self, index: int) -> None:
        """Drop buffered instructions before absolute *index*."""
        while self.base < index and self.buffer:
            self.buffer.popleft()
            self.base += 1


class StreamStack:
    """The fetch source: application frame at the bottom, handlers above."""

    def __init__(self, main: Iterable[DynInst]) -> None:
        self._frames: List[_Frame] = [_Frame(main, 0)]
        self._next_serial = 1

    # -- fetching ------------------------------------------------------------
    def fetch(self) -> Optional[Tuple[DynInst, FetchPoint]]:
        """Fetch the next instruction, popping exhausted handler frames.

        Returns None when the application frame itself is exhausted.
        """
        frames = self._frames
        tuple_new = tuple.__new__
        while True:
            top = frames[-1]
            # Inlined buffered-hit path of _Frame.fetch: one instruction is
            # fetched per simulated issue slot, so the extra call frame and
            # the NamedTuple constructor both showed up in profiles.
            offset = top.pos - top.base
            buffer = top.buffer
            if offset < len(buffer):
                top.pos += 1
                return buffer[offset], tuple_new(
                    FetchPoint, (top.serial, top.pos - 1))
            inst = top.fetch()
            if inst is not None:
                return inst, tuple_new(FetchPoint, (top.serial, top.pos - 1))
            if len(frames) == 1:
                return None
            frames.pop()

    # -- handler injection ---------------------------------------------------
    def push_handler(self, instructions: Iterable[DynInst]) -> int:
        """Push a handler frame; fetch resumes from it immediately."""
        serial = self._next_serial
        self._next_serial += 1
        self._frames.append(_Frame(instructions, serial))
        return serial

    # -- squash / replay -------------------------------------------------------
    def rewind_after(self, point: FetchPoint) -> None:
        """Squash everything fetched after *point*; next fetch follows it."""
        self._pop_to(point).rewind_to(point.index + 1)

    def rewind_to(self, point: FetchPoint) -> None:
        """Squash *point* itself too; it will be re-fetched."""
        self._pop_to(point).rewind_to(point.index)

    def _pop_to(self, point: FetchPoint) -> _Frame:
        while self._frames and self._frames[-1].serial != point.frame_serial:
            if len(self._frames) == 1:
                raise StreamError(
                    f"rewind target frame {point.frame_serial} is gone")
            self._frames.pop()
        return self._frames[-1]

    # -- retirement ---------------------------------------------------------
    def committed(self, point: FetchPoint) -> None:
        """The instruction at *point* is committed; free replay storage.

        Commits arrive in program order, so everything before the point in
        its frame can be dropped.  Points in already-popped handler frames
        are ignored — their storage died with the frame.
        """
        serial = point.frame_serial
        for frame in self._frames:
            if frame.serial == serial:
                # Inlined trim_to: one commit per graduated instruction.
                index = point.index + 1
                buffer = frame.buffer
                base = frame.base
                while base < index and buffer:
                    buffer.popleft()
                    base += 1
                frame.base = base
                return

    @property
    def depth(self) -> int:
        """Number of frames on the stack (1 = no handler active)."""
        return len(self._frames)

    @property
    def buffered(self) -> int:
        """Total instructions held for potential replay."""
        return sum(len(frame.buffer) for frame in self._frames)
