"""Graduation-slot accounting — the methodology behind Figures 2 and 3.

Each cycle contributes ``issue_width`` graduation slots.  A slot is *busy*
when an instruction graduates in it; a lost slot is charged to *cache stall*
when the oldest unfinished instruction is waiting on a data-cache miss, and
to *other* otherwise.  Normalized execution time between two runs of the
same workload is the ratio of their total slots (equivalently, cycles).

The paper's footnote applies here too: the cache-stall section is a
first-order attribution — miss delays also lengthen later dependence
stalls, which land in *other*.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GraduationStats:
    """Totals for one simulation run."""

    width: int
    cycles: int = 0
    busy_slots: int = 0
    cache_stall_slots: int = 0
    other_stall_slots: int = 0
    app_instructions: int = 0
    handler_instructions: int = 0
    handler_invocations: int = 0
    informing_mispredicts: int = 0
    branch_mispredicts: int = 0

    def record_cycle(self, graduated: int, cache_blame: bool) -> None:
        """Account one cycle: *graduated* slots busy, the rest blamed."""
        if graduated > self.width:
            raise ValueError(
                f"graduated {graduated} exceeds width {self.width}")
        self.cycles += 1
        self.busy_slots += graduated
        lost = self.width - graduated
        if cache_blame:
            self.cache_stall_slots += lost
        else:
            self.other_stall_slots += lost

    def record_cycles(self, cycles: int, busy_slots: int,
                      cache_stall_slots: int, other_stall_slots: int) -> None:
        """Account a block of cycles accumulated by a core's inner loop.

        The cores batch per-cycle slot accounting in local integers (a
        method call per simulated cycle was measurable) and flush here at
        stats-reset boundaries and at end of run.  Equivalent to calling
        :meth:`record_cycle` once per cycle with the same totals.
        """
        if busy_slots + cache_stall_slots + other_stall_slots != (
                cycles * self.width):
            raise ValueError("slot block does not add up to cycles x width")
        self.cycles += cycles
        self.busy_slots += busy_slots
        self.cache_stall_slots += cache_stall_slots
        self.other_stall_slots += other_stall_slots

    @property
    def total_slots(self) -> int:
        return self.cycles * self.width

    @property
    def instructions(self) -> int:
        return self.app_instructions + self.handler_instructions

    @property
    def ipc(self) -> float:
        """Graduated instructions per cycle (busy fraction × width)."""
        if self.cycles == 0:
            return 0.0
        return self.busy_slots / self.cycles

    def breakdown(self) -> dict:
        """Slot fractions in Figure 2's three categories."""
        total = self.total_slots
        if total == 0:
            return {"busy": 0.0, "cache_stall": 0.0, "other_stall": 0.0}
        return {
            "busy": self.busy_slots / total,
            "cache_stall": self.cache_stall_slots / total,
            "other_stall": self.other_stall_slots / total,
        }

    def normalized_to(self, baseline: "GraduationStats") -> float:
        """Execution time of this run relative to *baseline* (same width)."""
        if baseline.width != self.width:
            raise ValueError("runs being compared must share issue width")
        if baseline.cycles == 0:
            raise ValueError("baseline run has no cycles")
        return self.cycles / baseline.cycles
