"""Shared pipeline machinery for the in-order and out-of-order cores.

* :mod:`repro.pipeline.config` — pipeline-half of Table 1 (widths, FU mix,
  latencies, shadow state, penalties).
* :mod:`repro.pipeline.fu` — per-cycle functional-unit availability.
* :mod:`repro.pipeline.stream` — the replayable fetch-stream stack that
  implements handler injection and squash/replay.
* :mod:`repro.pipeline.gradstats` — Figure 2's graduation-slot accounting.
"""

from repro.pipeline.config import CoreConfig, LatencyTable
from repro.pipeline.fu import FUPool
from repro.pipeline.gradstats import GraduationStats
from repro.pipeline.stream import FetchPoint, StreamStack, StreamError

__all__ = [
    "CoreConfig",
    "LatencyTable",
    "FUPool",
    "GraduationStats",
    "FetchPoint",
    "StreamStack",
    "StreamError",
]
