"""A small blocking client for the gateway (stdlib ``http.client``).

For tests, the smoke script and notebook-style use.  One
:class:`ServeClient` holds one keep-alive connection; every method
returns parsed JSON (or text for ``/metrics``) plus the HTTP status, so
callers can assert on structured error bodies as easily as on results.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple


class ServeClient:
    """Blocking keep-alive client for one gateway endpoint."""

    def __init__(self, host: str, port: int,
                 tenant: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, bytes, Dict[str, str]]:
        """One request/response cycle; reconnects once on a dead socket."""
        headers = {}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for retry in (True, False):
            conn = self._connection()
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                return (response.status, payload,
                        {k.lower(): v for k, v in response.getheaders()})
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if not retry:
                    raise
        raise AssertionError("unreachable")

    def json(self, method: str, path: str,
             body: Optional[Dict[str, Any]] = None
             ) -> Tuple[int, Any]:
        status, payload, _ = self.request(method, path, body)
        return status, json.loads(payload.decode("utf-8"))

    # -- endpoints -----------------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Tuple[int, Any]:
        """POST a job spec; returns (status, outcome-or-error body)."""
        return self.json("POST", "/v1/jobs", spec)

    def submit_stream(self, spec: Dict[str, Any]) -> Tuple[int, list]:
        """POST with SSE; returns (status, parsed event list).

        Each event is ``{"event": <name or None>, "data": <object>}`` in
        arrival order.  On a pre-admission error the status is the error
        code and the list holds the single JSON error body.
        """
        status, payload, headers = self.request(
            "POST", "/v1/jobs?stream=1", spec)
        if "text/event-stream" not in headers.get("content-type", ""):
            return status, [json.loads(payload.decode("utf-8"))]
        events = []
        name = None
        for line in payload.decode("utf-8").splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                events.append({"event": name,
                               "data": json.loads(line[len("data: "):])})
                name = None
        return status, events

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/healthz")

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/stats")

    def runs(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/runs")

    def run_manifest(self, run_id: str) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", f"/runs/{run_id}")

    def metrics_text(self) -> Tuple[int, str]:
        status, payload, _ = self.request("GET", "/metrics")
        return status, payload.decode("utf-8")
