"""A small blocking client for the gateway (stdlib ``http.client``).

For tests, the smoke script and notebook-style use.  One
:class:`ServeClient` holds one keep-alive connection; every method
returns parsed JSON (or text for ``/metrics``) plus the HTTP status, so
callers can assert on structured error bodies as easily as on results.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Optional, Tuple

from repro.trace import TraceContext, format_traceparent, new_span_id, new_trace_id


def mint_traceparent(sampled: bool = True) -> str:
    """A fresh client-side ``traceparent`` header value.

    Submitting with this makes the request traced end to end (gateway →
    engine → workers) under the returned header's trace id; pass
    ``sampled=False`` to assert the unsampled path stays span-free.
    """
    return format_traceparent(
        TraceContext(new_trace_id(), new_span_id(), sampled=sampled))

#: Cap on a single 429 backoff sleep, whatever ``retry_after`` claims.
MAX_RETRY_WAIT = 5.0
#: Fallback delay when a 429 body carries no usable ``retry_after``.
DEFAULT_RETRY_AFTER = 0.25


class ServeClient:
    """Blocking keep-alive client for one gateway endpoint."""

    def __init__(self, host: str, port: int,
                 tenant: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        #: 429 responses this client retried (test/telemetry hook).
        self.rate_limit_retries = 0
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                traceparent: Optional[str] = None
                ) -> Tuple[int, bytes, Dict[str, str]]:
        """One request/response cycle; reconnects once on a dead socket."""
        headers = {}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        if traceparent:
            headers["traceparent"] = traceparent
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for retry in (True, False):
            conn = self._connection()
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                return (response.status, payload,
                        {k.lower(): v for k, v in response.getheaders()})
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if not retry:
                    raise
        raise AssertionError("unreachable")

    def json(self, method: str, path: str,
             body: Optional[Dict[str, Any]] = None,
             traceparent: Optional[str] = None) -> Tuple[int, Any]:
        status, payload, _ = self.request(method, path, body,
                                          traceparent=traceparent)
        return status, json.loads(payload.decode("utf-8"))

    # -- endpoints -----------------------------------------------------------
    def submit(self, spec: Dict[str, Any],
               retries: int = 0,
               traceparent: Optional[str] = None) -> Tuple[int, Any]:
        """POST a job spec; returns (status, outcome-or-error body).

        With *retries* > 0, a 429 is retried up to that many times,
        honoring the ``retry_after`` hint the gateway puts in the body
        (jittered up to +25% so a herd of limited clients does not
        reconverge on the same instant, capped at
        :data:`MAX_RETRY_WAIT`).  Any other status — success or error —
        returns immediately; the final 429, if the budget runs out, is
        returned rather than raised.

        *traceparent* (see :func:`mint_traceparent`) propagates a trace
        context with the submission; retries reuse the same context —
        one logical request, one trace.
        """
        attempt = 0
        while True:
            status, body = self.json("POST", "/v1/jobs", spec,
                                     traceparent=traceparent)
            if status != 429 or attempt >= retries:
                return status, body
            try:
                hint = float(body.get("retry_after"))
            except (AttributeError, TypeError, ValueError):
                hint = DEFAULT_RETRY_AFTER
            delay = min(MAX_RETRY_WAIT,
                        max(hint, 0.0) * (1.0 + random.uniform(0.0, 0.25)))
            self.rate_limit_retries += 1
            attempt += 1
            time.sleep(delay)

    def submit_stream(self, spec: Dict[str, Any]) -> Tuple[int, list]:
        """POST with SSE; returns (status, parsed event list).

        Each event is ``{"event": <name or None>, "data": <object>}`` in
        arrival order.  On a pre-admission error the status is the error
        code and the list holds the single JSON error body.
        """
        status, payload, headers = self.request(
            "POST", "/v1/jobs?stream=1", spec)
        if "text/event-stream" not in headers.get("content-type", ""):
            return status, [json.loads(payload.decode("utf-8"))]
        events = []
        name = None
        for line in payload.decode("utf-8").splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                events.append({"event": name,
                               "data": json.loads(line[len("data: "):])})
                name = None
        return status, events

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/healthz")

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/stats")

    def runs(self) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", "/runs")

    def run_manifest(self, run_id: str) -> Tuple[int, Dict[str, Any]]:
        return self.json("GET", f"/runs/{run_id}")

    def metrics_text(self) -> Tuple[int, str]:
        status, payload, _ = self.request("GET", "/metrics")
        return status, payload.decode("utf-8")
