"""The serving core: admission, coalescing, rate limits, worker shards.

One :class:`Gateway` owns the whole request path between the HTTP layer
and the exec engine::

    request -> token bucket (per tenant) -> spec validation
            -> content-addressed cache probe          (hit: answer now)
            -> in-flight coalescing on the cache key  (dup: join the run)
            -> bounded admission queue                (full: 503)
            -> worker shard -> JobRunner -> result + run manifest

Worker shards are asyncio tasks that hand admitted tickets to a
``ThreadPoolExecutor`` (one thread per shard) where a per-request
:class:`~repro.exec.JobRunner` executes the cell inline — the same
engine, cache and manifest machinery a CLI run uses, so a served result
is byte-identical to ``python -m repro.harness`` running the same cell
(the manifest config digest is the proof).

Coalescing: two identical in-flight requests share one
:class:`Ticket` — the engine runs once, both responses are fed from the
same future, and the ``serve.coalesced`` counter records the join.

Every decision increments a counter or histogram in an
:class:`repro.obs.metrics.Registry`, exported at ``/metrics`` as
OpenMetrics by the app layer.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.exec import ExecOptions, JobRunner, ResultCache, SimJob
from repro.exec.job import execute_job
from repro.obs.metrics import Registry
from repro.serve.spec import SpecError, validate_job_spec
from repro.trace import flight, maybe_tracer, parse_traceparent


class RateLimited(Exception):
    """The tenant's token bucket is empty; renders as 429."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(f"tenant {tenant!r} is rate limited")
        self.tenant = tenant
        self.retry_after = retry_after


class QueueFull(Exception):
    """The admission queue is at capacity; renders as 503."""


class Draining(Exception):
    """The gateway is shutting down and admits no new work; 503."""


class JobError(Exception):
    """The engine failed the job (after retries); renders as 500."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float,
                 now: Optional[float] = None) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = time.monotonic() if now is None else now

    def try_acquire(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one token is available (at the current fill)."""
        if self.rate <= 0:
            return 1.0
        return max(0.0, (1.0 - self.tokens) / self.rate)


@dataclass
class ServeOptions:
    """Knobs for one gateway instance (CLI flags map 1:1)."""

    shards: int = 2                 # worker threads running JobRunners
    queue_limit: int = 64           # bounded admission queue depth
    rate: float = 0.0               # tokens/s per tenant; 0 = unlimited
    burst: float = 20.0             # bucket capacity
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    manifest_dir: Optional[str] = None  # per-served-run manifests; None off
    job_timeout: Optional[float] = None
    drain_grace: float = 30.0       # seconds to wait for in-flight on drain
    #: Service write-ahead journal (repro.durable): every accepted job is
    #: recorded before it runs and marked finished/failed after, so a
    #: killed gateway replays the journal on boot and re-enqueues the
    #: jobs it had accepted but not finished.  None disables.
    journal_path: Optional[str] = None
    #: repro.trace head-based sampling rate for requests without their
    #: own ``traceparent`` header ([0, 1]); a request arriving with a
    #: sampled context is always traced, an unsampled one never.  0.0
    #: (the default) keeps the request path span-free.
    trace_sample: float = 0.0
    #: Fallback span destination for traced requests that never reach a
    #: run directory (cache hits, rejections): ``<trace_dir>/
    #: serve_spans.jsonl``.  None falls back to ``manifest_dir``.
    trace_dir: Optional[str] = None


class Ticket:
    """One admitted execution; coalesced requests share it."""

    __slots__ = ("job", "key", "future", "subscribers", "events",
                 "waiters", "created", "tracer", "parent_span",
                 "queue_span")

    def __init__(self, job: SimJob, key: str,
                 future: "asyncio.Future") -> None:
        self.job = job
        self.key = key
        self.future = future
        #: SSE subscriber queues; fed from the engine's telemetry sink.
        self.subscribers: List["asyncio.Queue"] = []
        #: Telemetry records already published (late subscribers replay).
        self.events: List[Dict[str, Any]] = []
        self.waiters = 1
        self.created = time.monotonic()
        #: repro.trace state of the admitting request (None untraced):
        #: the shard thread finishes ``queue_span`` when it picks the
        #: ticket up and parents its dispatch span on ``parent_span``.
        self.tracer = None
        self.parent_span = None
        self.queue_span = None


class _TicketSink:
    """Engine telemetry sink that republishes events onto the loop.

    Runs on the shard thread; hops to the event loop with
    ``call_soon_threadsafe`` so subscriber queues are only touched from
    the loop.
    """

    def __init__(self, loop, publish: Callable, ticket: Ticket) -> None:
        self.loop = loop
        self.publish = publish
        self.ticket = ticket

    def emit(self, event) -> None:
        record = json.loads(event.to_json())
        self.loop.call_soon_threadsafe(self.publish, self.ticket, record)


def run_id_of(manifest_path: Optional[str]) -> Optional[str]:
    """``.../<run_id>/manifest.json`` -> ``<run_id>``."""
    if not manifest_path:
        return None
    return os.path.basename(os.path.dirname(manifest_path))


def _swallow_outcome(future: "asyncio.Future") -> None:
    """Done-callback for recovered tickets nobody is awaiting: retrieve
    the exception (if any) so asyncio never logs it as unretrieved."""
    if future.cancelled():
        return
    future.exception()


class Gateway:
    """The simulation-as-a-service core (transport-agnostic).

    ``execute`` is pluggable exactly like :class:`JobRunner`'s — tests
    inject slow or flaky payloads to pin down coalescing and admission
    behaviour without real simulations.
    """

    def __init__(self, options: Optional[ServeOptions] = None, *,
                 execute=execute_job) -> None:
        self.options = options or ServeOptions()
        self.execute = execute
        self.registry = Registry()
        self.cache = ResultCache(
            **({"root": self.options.cache_dir}
               if self.options.cache_dir else {}),
            max_bytes=self.options.cache_max_bytes)
        self.in_flight: Dict[str, Ticket] = {}
        self.buckets: Dict[str, TokenBucket] = {}
        self.draining = False
        self.journal = None
        #: Boot-time journal replay summary (see :meth:`_recover_journal`).
        self.recovery: Dict[str, Any] = {
            "recovered": 0, "orphaned": 0, "already_cached": 0,
            "bad_lines": 0, "truncated": False}
        self.started_at = time.time()
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.queue: Optional[asyncio.Queue] = None
        self._shard_tasks: List["asyncio.Task"] = []
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start the worker shards.

        With a journal configured, the previous incarnation's journal is
        replayed first: jobs it had accepted but never finished are
        re-enqueued (``serve.recovered``), unrebuildable records are
        counted as ``serve.orphaned``, and the journal is rewritten fresh
        seeded with the re-accepted jobs — so a crash during recovery is
        itself recoverable.
        """
        self.loop = asyncio.get_running_loop()
        self.queue = asyncio.Queue(maxsize=self.options.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=self.options.shards,
            thread_name_prefix="serve-shard")
        self._shard_tasks = [
            asyncio.ensure_future(self._shard_loop(shard))
            for shard in range(self.options.shards)]
        if self.options.journal_path:
            self._recover_journal()

    # -- durability ----------------------------------------------------------
    SERVE_KIND = "serve"

    def _journal_record(self, rec: str, **fields) -> None:
        """Best-effort journal append; failures are counted, never raised
        (mirrors the engine: the service must outlive its log)."""
        if self.journal is None:
            return
        if not self.journal.record(rec, **fields):
            self.registry.counter("serve.journal_errors").inc()

    def _recover_journal(self) -> None:
        """Replay the previous incarnation's journal, then start fresh.

        An accepted-but-unfinished job is *incomplete*: if its result
        meanwhile sits in the cache (the crash hit between the cache
        store and the journal mark) it is already served and only
        counted; otherwise the job is rebuilt from its journaled spec
        and re-enqueued as a fresh ticket — a later identical request
        coalesces onto it.  Records that cannot be rebuilt (torn spec,
        schema drift, queue at capacity) become ``serve.orphaned``: a
        named, counted outcome instead of silent loss.
        """
        from repro.durable.journal import (RunJournal, check_header,
                                           header_record, read_records)

        path = self.options.journal_path
        records, bad_lines, truncated = read_records(path)
        self.recovery["bad_lines"] = bad_lines
        self.recovery["truncated"] = truncated
        accepted: Dict[str, Dict[str, Any]] = {}
        settled = set()
        if records and check_header(records, self.SERVE_KIND):
            for record in records[1:]:
                rec, key = record.get("rec"), record.get("key")
                if rec == "job_accepted" and key:
                    accepted[key] = record
                elif rec in ("job_finished", "job_failed"):
                    settled.add(key)
        elif records:
            # Unreadable or alien header: trust nothing in the file.
            self.recovery["orphaned"] += len(records)

        # Rewrite the journal fresh ("w"): settled history is dead
        # weight, and re-accepted jobs are re-journaled below so a crash
        # during recovery loses nothing.
        self.journal = RunJournal(path, mode="w")
        self.journal.append(header_record(
            self.SERVE_KIND, started=self.started_at, pid=os.getpid()))
        for key, record in accepted.items():
            if key in settled:
                continue
            try:
                job = SimJob.from_dict(record["job"])
            except (KeyError, TypeError, ValueError):
                self.recovery["orphaned"] += 1
                continue
            if self.cache.get(job) is not None:
                # Finished in fact, just not in the journal: the next
                # request for it is a plain cache hit.
                self.recovery["already_cached"] += 1
                self.recovery["recovered"] += 1
                continue
            ticket = Ticket(job, key, self.loop.create_future())
            ticket.waiters = 0
            # Nobody awaits a recovered ticket unless a new request
            # coalesces onto it; consume the future's outcome so an
            # execution failure never logs "exception never retrieved".
            ticket.future.add_done_callback(_swallow_outcome)
            try:
                self.queue.put_nowait(ticket)
            except asyncio.QueueFull:
                self.recovery["orphaned"] += 1
                continue
            self.in_flight[key] = ticket
            self._journal_record("job_accepted", key=key,
                                 job=record["job"],
                                 tenant=record.get("tenant"),
                                 recovered=True)
            self.recovery["recovered"] += 1
        self.registry.counter("serve.recovered").inc(
            self.recovery["recovered"])
        self.registry.counter("serve.orphaned").inc(
            self.recovery["orphaned"])

    async def drain(self, grace: Optional[float] = None) -> int:
        """Stop admitting, wait for in-flight work, stop the shards.

        Returns the number of tickets abandoned at the grace deadline
        (each of their waiters gets a :class:`Draining` error rather
        than a hang).
        """
        self.draining = True
        # Crash-path observability: the drain moment is one of the
        # flight recorder's dump triggers (SIGTERM forensics).
        directory = self.options.trace_dir or self.options.manifest_dir
        if directory:
            flight().dump("serve_drain", directory)
        grace = self.options.drain_grace if grace is None else grace
        deadline = time.monotonic() + grace
        while self.in_flight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        abandoned = 0
        for ticket in list(self.in_flight.values()):
            if not ticket.future.done():
                ticket.future.set_exception(Draining("drain deadline"))
                abandoned += 1
            self.in_flight.pop(ticket.key, None)
        for task in self._shard_tasks:
            task.cancel()
        if self._shard_tasks:
            await asyncio.gather(*self._shard_tasks, return_exceptions=True)
        self._shard_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.journal is not None:
            self.journal.close()
        return abandoned

    # -- submission ----------------------------------------------------------
    def _start_trace(self, traceparent: Optional[str], tenant: str):
        """Head-based sampling decision for one request.

        Returns ``(tracer, root_span)`` — ``(None, None)`` (the common,
        zero-overhead case) unless the request carried a sampled
        ``traceparent`` or won the ``trace_sample`` coin toss.  Malformed
        and foreign contexts are counted, never fatal.
        """
        if traceparent:
            if parse_traceparent(traceparent) is None:
                self.registry.counter("serve.trace.malformed_context").inc()
                traceparent = None
            else:
                self.registry.counter("serve.trace.foreign_context").inc()
        tracer = maybe_tracer(self.options.trace_sample, traceparent)
        if tracer is None:
            self.registry.counter("serve.trace.unsampled").inc()
            return None, None
        self.registry.counter("serve.trace.sampled").inc()
        root = tracer.start_span("http.request", tenant=tenant)
        return tracer, root

    def _fallback_spans_path(self) -> Optional[str]:
        root = self.options.trace_dir or self.options.manifest_dir
        return os.path.join(root, "serve_spans.jsonl") if root else None

    async def submit(self, payload: Any, tenant: str = "anonymous",
                     subscriber: Optional["asyncio.Queue"] = None,
                     traceparent: Optional[str] = None) -> Dict[str, Any]:
        """Validate, admit and execute one job spec; return the outcome.

        The outcome dict is ``{"result": <engine result>, "meta": {...}}``
        with meta carrying cache state, run id/manifest and wall time.
        *subscriber*, when given, receives schema-1 telemetry records as
        they happen (and ``None`` as the end-of-stream sentinel).

        *traceparent* is the request's W3C trace context header, if any:
        a sampled context makes this request traced end to end — gateway
        spans here, engine and worker spans via
        :attr:`ExecOptions.trace_parent` — all under one trace id, and
        the response meta gains ``trace_id`` / ``spans``.

        Raises SpecError / RateLimited / QueueFull / Draining / JobError.
        """
        t0 = time.monotonic()
        self.registry.counter("serve.requests").inc()
        tracer, root = self._start_trace(traceparent, tenant)
        ok = False
        try:
            outcome = await self._submit(payload, tenant, subscriber,
                                         tracer, root)
            ok = True
        except SpecError:
            self.registry.counter("serve.rejected.invalid_spec").inc()
            raise
        except RateLimited:
            self.registry.counter("serve.rejected.rate_limited").inc()
            raise
        except QueueFull:
            self.registry.counter("serve.rejected.queue_full").inc()
            raise
        except Draining:
            self.registry.counter("serve.rejected.draining").inc()
            raise
        except JobError:
            self.registry.counter("serve.failures").inc()
            raise
        finally:
            if tracer is not None:
                root.finish(None if ok else "error")
                if not ok and tracer.flush(self._fallback_spans_path()):
                    self.registry.counter("serve.trace.flushed").inc()
        if tracer is not None:
            # The engine wrote its spans next to the run's manifest; the
            # gateway's spans follow so one file holds the whole tree.
            meta = dict(outcome.get("meta") or {})
            meta["trace_id"] = tracer.trace_id
            meta["spans"] = meta.get("spans") or self._fallback_spans_path()
            if tracer.flush(meta["spans"]):
                self.registry.counter("serve.trace.flushed").inc()
            outcome = {"result": outcome.get("result"), "meta": meta}
        self.registry.histogram("serve.request_latency_ms").record(
            int((time.monotonic() - t0) * 1000))
        return outcome

    async def _submit(self, payload, tenant, subscriber,
                      tracer=None, root=None) -> Dict[str, Any]:
        if self.draining:
            raise Draining("gateway is draining")
        if self.options.rate > 0:
            admit_span = (tracer.start_span("admission", parent=root)
                          if tracer is not None else None)
            bucket = self.buckets.get(tenant)
            if bucket is None:
                bucket = self.buckets[tenant] = TokenBucket(
                    self.options.rate, self.options.burst)
            acquired = bucket.try_acquire()
            if admit_span is not None:
                admit_span.finish(None if acquired else "error")
            if not acquired:
                raise RateLimited(tenant, bucket.retry_after())
        if tracer is not None:
            with tracer.span("request.parse", parent=root):
                job = validate_job_spec(payload)
        else:
            job = validate_job_spec(payload)
        key = job.cache_key()

        probe_span = (tracer.start_span("cache.probe", parent=root)
                      if tracer is not None else None)
        cached = self.cache.get(job)
        if probe_span is not None:
            probe_span.set_attr("hit", cached is not None)
            probe_span.finish()
        if cached is not None:
            self.registry.counter("serve.cache_hits").inc()
            if subscriber is not None:
                subscriber.put_nowait(None)
            return {"result": cached,
                    "meta": {"key": key[:16], "label": job.label,
                             "cache": "hit", "coalesced": False,
                             "run_id": None, "wall": 0.0}}

        ticket = self.in_flight.get(key)
        if ticket is not None:
            self.registry.counter("serve.coalesced").inc()
            ticket.waiters += 1
            if subscriber is not None:
                for record in ticket.events:  # replay, then follow live
                    subscriber.put_nowait(record)
                ticket.subscribers.append(subscriber)
            if tracer is not None:
                with tracer.span("coalesce.wait", parent=root,
                                 key=key[:16]):
                    outcome = await asyncio.shield(ticket.future)
            else:
                outcome = await asyncio.shield(ticket.future)
            return self._coalesced_view(outcome)

        if self.queue is None:
            raise Draining("gateway not started")
        ticket = Ticket(job, key, self.loop.create_future())
        if subscriber is not None:
            ticket.subscribers.append(subscriber)
        if tracer is not None:
            ticket.tracer = tracer
            ticket.parent_span = root
            ticket.queue_span = tracer.start_span("queue.wait", parent=root)
        try:
            self.queue.put_nowait(ticket)
        except asyncio.QueueFull:
            raise QueueFull(f"admission queue at capacity "
                            f"({self.options.queue_limit})")
        self.in_flight[key] = ticket
        self.registry.counter("serve.admitted").inc()
        # Write-ahead: the job is journaled the moment it is admitted,
        # before any execution, so a crash from here on re-enqueues it.
        self._journal_record("job_accepted", key=key, job=job.to_dict(),
                             tenant=tenant)
        self.registry.histogram("serve.queue_depth").record(
            self.queue.qsize())
        return await asyncio.shield(ticket.future)

    @staticmethod
    def _coalesced_view(outcome: Dict[str, Any]) -> Dict[str, Any]:
        meta = dict(outcome["meta"], coalesced=True)
        return {"result": outcome["result"], "meta": meta}

    # -- execution (shards) --------------------------------------------------
    async def _shard_loop(self, shard: int) -> None:
        while True:
            ticket = await self.queue.get()
            try:
                outcome = await self.loop.run_in_executor(
                    self._executor, self._run_ticket, ticket, shard)
            except Exception as exc:
                self._finish(ticket, error=self._as_job_error(exc))
            else:
                self._finish(ticket, outcome=outcome)
            finally:
                self.queue.task_done()

    @staticmethod
    def _as_job_error(exc: Exception) -> JobError:
        return JobError(type(exc).__name__, str(exc))

    def _run_ticket(self, ticket: Ticket, shard: int) -> Dict[str, Any]:
        """Shard-thread body: one JobRunner run for one ticket.

        A fresh runner per request keeps per-run accounting (and the run
        manifest) isolated while sharing the gateway's result cache, so
        concurrent shards never fight over scheduler state.
        """
        tracer = ticket.tracer
        if ticket.queue_span is not None:
            ticket.queue_span.finish()
        dispatch_span = (tracer.start_span("dispatch",
                                           parent=ticket.parent_span,
                                           shard=shard)
                         if tracer is not None else None)
        options = ExecOptions(
            jobs=1,
            timeout=self.options.job_timeout,
            retries=0,
            manifest_dir=self.options.manifest_dir,
            # The gateway's own journal covers served jobs; a per-request
            # engine journal would just double the fsync traffic.
            journal=False,
            # Traced requests hand their context across the engine
            # boundary; untraced ones pin sampling to 0 so a stray
            # REPRO_TRACE_SAMPLE cannot trace half a request.
            trace_sample=0.0,
            trace_parent=(tracer.traceparent(dispatch_span)
                          if tracer is not None else None),
            run_meta={"experiment": "serve",
                      "argv": ["serve", ticket.job.label],
                      "seed": ticket.job.seed})
        sink = _TicketSink(self.loop, self._publish, ticket)
        runner = JobRunner(options, execute=self.execute, sinks=[sink],
                           cache=self.cache)
        t0 = time.monotonic()
        try:
            result = runner.run([ticket.job])[0]
        finally:
            if dispatch_span is not None:
                dispatch_span.finish()
        wall = time.monotonic() - t0
        self.registry.counter("serve.executed").inc()
        self.registry.histogram("serve.job_wall_ms").record(
            int(wall * 1000))
        return {"result": result,
                "meta": {"key": ticket.key[:16], "label": ticket.job.label,
                         "cache": "miss", "coalesced": False,
                         "shard": shard,
                         "run_id": run_id_of(runner.last_manifest),
                         "manifest": runner.last_manifest,
                         "spans": runner.last_spans,
                         "wall": round(wall, 6)}}

    # -- completion / streaming ----------------------------------------------
    def _publish(self, ticket: Ticket, record: Dict[str, Any]) -> None:
        """Loop-side: fan a telemetry record out to the subscribers."""
        ticket.events.append(record)
        for queue in ticket.subscribers:
            queue.put_nowait(record)

    def _finish(self, ticket: Ticket, outcome=None,
                error: Optional[JobError] = None) -> None:
        self.in_flight.pop(ticket.key, None)
        if error is not None:
            self._journal_record("job_failed", key=ticket.key,
                                 error=f"{error.kind}: {error.message}")
        else:
            # The engine stored the result in the cache before returning,
            # so a journaled finish implies the result is durable.
            self._journal_record("job_finished", key=ticket.key)
        if not ticket.future.done():
            if error is not None:
                ticket.future.set_exception(error)
            else:
                ticket.future.set_result(outcome)
        for queue in ticket.subscribers:
            queue.put_nowait(None)  # end-of-stream sentinel
        ticket.subscribers.clear()

    # -- introspection -------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Liveness plus identity: what build and which subsystems this
        gateway is actually running, so smoke jobs can assert what they
        are testing instead of inferring it (git sha, every on-disk
        schema version, and the enabled observability/durability
        subsystems)."""
        from repro.durable.journal import JOURNAL_SCHEMA
        from repro.exec.job import SCHEMA_VERSION
        from repro.exec.telemetry import TELEMETRY_SCHEMA, git_sha
        from repro.obs import obs_enabled
        from repro.perf.manifest import MANIFEST_SCHEMA
        from repro.sanitize import sanitize_enabled
        from repro.trace import SPAN_SCHEMA

        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "shards": self.options.shards,
            "queue_depth": self.queue.qsize() if self.queue else 0,
            "queue_limit": self.options.queue_limit,
            "in_flight": len(self.in_flight),
            "git_sha": git_sha(),
            "schemas": {
                "job": SCHEMA_VERSION,
                "telemetry": TELEMETRY_SCHEMA,
                "manifest": MANIFEST_SCHEMA,
                "journal": JOURNAL_SCHEMA,
                "spans": SPAN_SCHEMA,
            },
            "subsystems": {
                "obs": obs_enabled(),
                "sanitize": sanitize_enabled(),
                "trace": self.options.trace_sample > 0.0,
                "durable": self.journal is not None,
            },
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "health": self.health(),
            "metrics": self.registry.to_dict(),
            "cache": self.cache.describe(),
            "tenants": len(self.buckets),
            "durability": self.durability(),
            "trace": {
                "sample": self.options.trace_sample,
                "flight": flight().stats(),
            },
        }

    def durability(self) -> Dict[str, Any]:
        """Journal + boot-recovery state for ``/stats``."""
        counters = self.registry.counters()
        return {
            "journal": self.options.journal_path,
            "enabled": self.journal is not None,
            "degraded": (self.journal.disabled
                         if self.journal is not None else False),
            "journal_errors": counters.get("serve.journal_errors", 0),
            "recovered": self.recovery["recovered"],
            "orphaned": self.recovery["orphaned"],
            "already_cached": self.recovery["already_cached"],
            "journal_bad_lines": self.recovery["bad_lines"],
            "journal_truncated": self.recovery["truncated"],
        }
