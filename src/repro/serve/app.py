"""HTTP routing for the gateway: the asyncio server and its endpoints.

Routes::

    POST /v1/jobs          submit a job spec; JSON response, or SSE when
                           ``?stream=1`` / ``Accept: text/event-stream``
    GET  /healthz          liveness/readiness (503 while draining)
    GET  /metrics          OpenMetrics exposition of the serve registry
    GET  /stats            registry + cache + admission state as JSON
    GET  /runs             run ids of served manifests (when enabled)
    GET  /runs/<id>        one served run's manifest.json

Every error — malformed spec, rate limit, full queue, engine failure —
renders as a structured JSON body with a definite status code; a client
never sees a traceback.  SSE responses replay the run's schema-1
telemetry records (the same objects a JSONL trace holds) as ``data:``
lines, then a terminal ``result`` or ``error`` event.
"""

from __future__ import annotations

import asyncio
import os
import sys
from typing import Any, Dict, Optional, Tuple

from repro.exec import run_header_record
from repro.obs.export import to_openmetrics
from repro.serve.gateway import (
    Draining,
    Gateway,
    JobError,
    QueueFull,
    RateLimited,
)
from repro.serve.http import (
    HttpError,
    Request,
    SseStream,
    json_response,
    read_request,
    text_response,
)
from repro.serve.spec import SpecError


def _swallow_task_outcome(task: "asyncio.Task") -> None:
    """Done-callback for a submit task whose SSE client vanished:
    retrieve the exception so asyncio never logs it as unretrieved."""
    if task.cancelled():
        return
    task.exception()


def error_payload(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map a gateway exception to (status, structured JSON body)."""
    if isinstance(exc, SpecError):
        return 400, exc.to_dict()
    if isinstance(exc, RateLimited):
        return 429, {"error": "rate_limited", "tenant": exc.tenant,
                     "retry_after": round(exc.retry_after, 3)}
    if isinstance(exc, QueueFull):
        return 503, {"error": "queue_full", "message": str(exc)}
    if isinstance(exc, Draining):
        return 503, {"error": "draining",
                     "message": "gateway is shutting down"}
    if isinstance(exc, JobError):
        return 500, {"error": "job_failed", "kind": exc.kind,
                     "message": exc.message}
    if isinstance(exc, HttpError):
        return exc.status, exc.payload
    return 500, {"error": "internal", "kind": type(exc).__name__}


class App:
    """Route table + connection loop over one :class:`Gateway`."""

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self.server: Optional[asyncio.AbstractServer] = None

    # -- server lifecycle ----------------------------------------------------
    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Start the shards and the listening socket; return (host, port)."""
        await self.gateway.start()
        # A deep accept backlog: the load benchmark opens 1000+
        # connections in one burst and must not see connection resets.
        self.server = await asyncio.start_server(
            self.handle_connection, host, port, backlog=2048)
        bound = self.server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def shutdown(self, grace: Optional[float] = None) -> int:
        """Graceful stop: close the listener, then drain the gateway."""
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        return await self.gateway.drain(grace)

    # -- connection loop -----------------------------------------------------
    async def handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    json_response(writer, exc.status, exc.payload,
                                  keep_alive=False)
                    break
                if request is None:
                    break
                keep_alive = await self.dispatch(request, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # last-resort: never leak a traceback
            print(f"serve: connection handler error: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -------------------------------------------------------------
    async def dispatch(self, request: Request, writer) -> bool:
        """Handle one request; returns whether to keep the connection."""
        path, method = request.path, request.method
        try:
            if path == "/v1/jobs":
                if method != "POST":
                    return self._method_not_allowed(request, writer, "POST")
                if request.wants_stream():
                    return await self.handle_job_stream(request, writer)
                return await self.handle_job(request, writer)
            if method != "GET":
                return self._method_not_allowed(request, writer, "GET")
            if path == "/healthz":
                return self.handle_healthz(request, writer)
            if path == "/metrics":
                return self.handle_metrics(request, writer)
            if path == "/stats":
                return self.handle_stats(request, writer)
            if path == "/runs":
                return self.handle_runs_index(request, writer)
            if path.startswith("/runs/"):
                return self.handle_run(request, writer, path[len("/runs/"):])
            json_response(writer, 404, {"error": "not_found", "path": path},
                          keep_alive=request.keep_alive)
            return request.keep_alive
        except HttpError as exc:
            json_response(writer, exc.status, exc.payload,
                          keep_alive=request.keep_alive)
            return request.keep_alive

    def _method_not_allowed(self, request, writer, allowed: str) -> bool:
        json_response(writer, 405, {"error": "method_not_allowed",
                                    "allowed": allowed},
                      keep_alive=request.keep_alive)
        return request.keep_alive

    # -- job submission ------------------------------------------------------
    async def handle_job(self, request: Request, writer) -> bool:
        payload = request.json()
        try:
            outcome = await self.gateway.submit(
                payload, request.tenant,
                traceparent=request.headers.get("traceparent"))
        except (SpecError, RateLimited, QueueFull, Draining,
                JobError) as exc:
            status, body = error_payload(exc)
            json_response(writer, status, body,
                          keep_alive=request.keep_alive)
            return request.keep_alive
        json_response(writer, 200, outcome, keep_alive=request.keep_alive)
        return request.keep_alive

    async def handle_job_stream(self, request: Request, writer) -> bool:
        """SSE submission: telemetry records live, then result/error.

        Pre-admission failures (bad spec, rate limit, full queue) are
        still plain JSON errors with their real status code — the SSE
        response only starts once the job is admitted (or served from
        cache / a coalesced run).
        """
        payload = request.json()
        events: asyncio.Queue = asyncio.Queue()
        task = asyncio.ensure_future(
            self.gateway.submit(
                payload, request.tenant, subscriber=events,
                traceparent=request.headers.get("traceparent")))
        first = asyncio.ensure_future(events.get())
        await asyncio.wait({task, first},
                           return_when=asyncio.FIRST_COMPLETED)
        if task.done() and task.exception() is not None:
            first.cancel()
            status, body = error_payload(task.exception())
            json_response(writer, status, body,
                          keep_alive=request.keep_alive)
            return request.keep_alive

        stream = SseStream(writer)
        pending = first
        try:
            await stream.start()
            await stream.send(run_header_record(experiment="serve",
                                                argv=["serve", "/v1/jobs"],
                                                seed=None, workers=1,
                                                jobs=1),
                              event="header")
            while True:
                if pending is None:
                    pending = asyncio.ensure_future(events.get())
                await asyncio.wait({task, pending},
                                   return_when=asyncio.FIRST_COMPLETED)
                if pending.done():
                    record = pending.result()
                    pending = None
                    if record is None:  # end-of-stream sentinel
                        break
                    await stream.send(record, event="telemetry")
                    continue
                # Task finished exceptionally without a sentinel.
                pending.cancel()
                pending = None
                break
            outcome = await task
            await stream.send(outcome, event="result")
        except (SpecError, RateLimited, QueueFull, Draining,
                JobError) as exc:
            _, body = error_payload(exc)
            try:
                await stream.send(body, event="error")
            except ConnectionError:
                self.gateway.registry.counter(
                    "serve.client_disconnects").inc()
                return False
        except ConnectionError:
            # The client dropped mid-stream.  The run itself keeps going
            # (its result still lands in the cache and its ticket still
            # resolves for any coalesced waiters) — only this stream dies,
            # as a counted outcome.
            self.gateway.registry.counter("serve.client_disconnects").inc()
            if pending is not None:
                pending.cancel()
            task.add_done_callback(_swallow_task_outcome)
            return False
        finally:
            if pending is not None and not pending.done():
                pending.cancel()
        try:
            await stream.close()
        except ConnectionError:
            self.gateway.registry.counter("serve.client_disconnects").inc()
        return False  # chunked stream ends the connection

    # -- introspection endpoints ---------------------------------------------
    def handle_healthz(self, request: Request, writer) -> bool:
        health = self.gateway.health()
        status = 503 if self.gateway.draining else 200
        json_response(writer, status, health, keep_alive=request.keep_alive)
        return request.keep_alive

    def handle_metrics(self, request: Request, writer) -> bool:
        text = to_openmetrics(self.gateway.registry)
        text_response(writer, 200, text,
                      content_type=("application/openmetrics-text; "
                                    "version=1.0.0; charset=utf-8"),
                      keep_alive=request.keep_alive)
        return request.keep_alive

    def handle_stats(self, request: Request, writer) -> bool:
        json_response(writer, 200, self.gateway.stats(),
                      keep_alive=request.keep_alive)
        return request.keep_alive

    def handle_runs_index(self, request: Request, writer) -> bool:
        from repro.perf.manifest import list_runs

        root = self.gateway.options.manifest_dir
        if root is None:
            json_response(writer, 404, {"error": "manifests_disabled"},
                          keep_alive=request.keep_alive)
            return request.keep_alive
        json_response(writer, 200, {"runs": list_runs(root)},
                      keep_alive=request.keep_alive)
        return request.keep_alive

    def handle_run(self, request: Request, writer, run_id: str) -> bool:
        from repro.perf.manifest import (ManifestError, load_manifest,
                                         runs_root)

        root = self.gateway.options.manifest_dir
        if root is None:
            json_response(writer, 404, {"error": "manifests_disabled"},
                          keep_alive=request.keep_alive)
            return request.keep_alive
        try:
            manifest = load_manifest(run_id, root)
        except ManifestError as exc:
            json_response(writer, 404, {"error": "run_not_found",
                                        "run": run_id,
                                        "message": str(exc)},
                          keep_alive=request.keep_alive)
            return request.keep_alive
        # Link the run's span artifact even when the gateway appended
        # its spans after the manifest was written (traced requests).
        if not manifest.get("spans_path"):
            spans = os.path.join(runs_root(root), run_id, "spans.jsonl")
            if os.path.isfile(spans):
                manifest["spans_path"] = spans
        json_response(writer, 200, manifest, keep_alive=request.keep_alive)
        return request.keep_alive
