"""Minimal asyncio HTTP/1.1 layer for the gateway — no framework.

Just enough protocol for a JSON service: request parsing off an
``asyncio.StreamReader`` (request line, headers, ``Content-Length``
bodies), keep-alive, JSON and plain-text responses, and chunked
transfer encoding for Server-Sent Events streams.  Limits are enforced
while *reading* (oversized headers or bodies are rejected with 431/413
before being buffered), so a misbehaving client cannot balloon the
process.

This is intentionally not a general web server: no TLS, no pipelining
beyond sequential keep-alive, no multipart.  The gateway fronts trusted
lab/LAN traffic; anything bigger belongs behind a real reverse proxy.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Protocol limits.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 2 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with a definite HTTP status and structured JSON body."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"{status}: {payload}")
        self.status = status
        self.payload = payload


class BadRequest(HttpError):
    def __init__(self, message: str, **extra: Any) -> None:
        super().__init__(400, dict({"error": "bad_request",
                                    "message": message}, **extra))


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "target", "path", "query", "headers", "body",
                 "keep_alive")

    def __init__(self, method: str, target: str,
                 headers: Dict[str, str], body: bytes,
                 keep_alive: bool) -> None:
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = unquote(split.path)
        self.query = dict(parse_qsl(split.query))
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json(self) -> Any:
        """The request body as JSON; raises BadRequest on garbage."""
        if not self.body:
            raise BadRequest("expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}")

    @property
    def tenant(self) -> str:
        """Rate-limit identity: the X-Tenant header, else ``"anonymous"``."""
        return self.headers.get("x-tenant", "anonymous").strip() or "anonymous"

    def wants_stream(self) -> bool:
        """SSE requested? ``?stream=1`` or ``Accept: text/event-stream``."""
        if self.query.get("stream", "") in ("1", "true", "yes"):
            return True
        return "text/event-stream" in self.headers.get("accept", "")


async def read_request(reader) -> Optional[Request]:
    """Parse one request off *reader*; None on a clean EOF between requests.

    Raises:
        HttpError: 400/413/431 on malformed or oversized input.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between keep-alive requests
        raise BadRequest("connection closed inside request line")
    except asyncio.LimitOverrunError:
        raise HttpError(431, {"error": "request_line_too_long"})
    except ConnectionError:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(431, {"error": "request_line_too_long"})
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise BadRequest(f"malformed request line {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError:
            raise HttpError(431, {"error": "headers_too_large"})
        except (asyncio.IncompleteReadError, ConnectionError):
            raise BadRequest("connection closed inside headers")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(431, {"error": "headers_too_large"})
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_str = headers.get("content-length")
    if length_str is not None:
        try:
            length = int(length_str)
        except ValueError:
            raise BadRequest(f"bad Content-Length {length_str!r}")
        if length < 0:
            raise BadRequest(f"bad Content-Length {length_str!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, {"error": "body_too_large",
                                  "limit": MAX_BODY_BYTES})
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError):
                raise BadRequest("connection closed inside body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, {"error": "bad_request",
                              "message": "chunked request bodies are not "
                                         "supported; send Content-Length"})

    keep_alive = (version != "HTTP/1.0"
                  and headers.get("connection", "").lower() != "close")
    return Request(method.upper(), target, headers, body, keep_alive)


def _head(status: int, content_type: str, extra: Tuple[Tuple[str, str], ...],
          length: Optional[int], keep_alive: bool) -> bytes:
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in extra:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(writer, status: int, payload: Any, *,
                  keep_alive: bool = True) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    writer.write(_head(status, "application/json", (), len(body),
                       keep_alive))
    writer.write(body)


def text_response(writer, status: int, body: str,
                  content_type: str = "text/plain; charset=utf-8", *,
                  keep_alive: bool = True) -> None:
    data = body.encode("utf-8")
    writer.write(_head(status, content_type, (), len(data), keep_alive))
    writer.write(data)


class SseStream:
    """A Server-Sent Events response over chunked transfer encoding.

    Usage: ``await stream.start()``, then any number of
    ``await stream.send(record, event=...)``, then ``await stream.close()``.
    Each record is one ``data:`` line of JSON — exactly the objects a
    telemetry JSONL stream holds, so SSE consumers and trace readers
    share a schema.
    """

    def __init__(self, writer) -> None:
        self.writer = writer
        self._open = False

    async def start(self) -> None:
        self.writer.write(_head(
            200, "text/event-stream",
            (("Cache-Control", "no-store"),
             ("Transfer-Encoding", "chunked")), None, False))
        self._open = True
        await self.writer.drain()

    def _chunk(self, data: bytes) -> None:
        self.writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self.writer.write(data)
        self.writer.write(b"\r\n")

    async def send(self, record: Any, event: Optional[str] = None) -> None:
        lines = []
        if event:
            lines.append(f"event: {event}")
        lines.append("data: " + json.dumps(record, sort_keys=True))
        self._chunk(("\n".join(lines) + "\n\n").encode("utf-8"))
        await self.writer.drain()

    async def close(self) -> None:
        if self._open:
            self.writer.write(b"0\r\n\r\n")
            self._open = False
            await self.writer.drain()
