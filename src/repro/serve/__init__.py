"""repro.serve — simulation-as-a-service gateway over the exec engine.

A long-lived asyncio HTTP/JSON service that fronts the repro.exec
engine: typed job-spec validation (:mod:`~repro.serve.spec`), a
content-addressed cache probe, per-tenant token-bucket rate limiting,
request coalescing of identical in-flight cells, a bounded admission
queue, worker shards running :class:`~repro.exec.JobRunner`, streaming
progress over schema-1 telemetry events (SSE), an OpenMetrics
``/metrics`` endpoint, and graceful drain on SIGTERM.

A served result is byte-identical to the same cell run through
``python -m repro.harness`` — specs build jobs through the exact CLI
constructors, so HTTP and CLI invocations share one cache key, and the
run-manifest config digest proves the equivalence.

``python -m repro.serve`` runs the server; :class:`ServeClient` is the
blocking client used by the tests, the bench and the CI smoke job.
"""

from repro.serve.client import ServeClient, mint_traceparent
from repro.serve.gateway import (
    Draining,
    Gateway,
    JobError,
    QueueFull,
    RateLimited,
    ServeOptions,
    TokenBucket,
)
from repro.serve.spec import (
    MAX_INSTRUCTIONS,
    SpecError,
    job_to_spec,
    validate_job_spec,
)

__all__ = [
    "Draining",
    "Gateway",
    "JobError",
    "MAX_INSTRUCTIONS",
    "QueueFull",
    "RateLimited",
    "ServeClient",
    "ServeOptions",
    "SpecError",
    "TokenBucket",
    "job_to_spec",
    "mint_traceparent",
    "validate_job_spec",
]
