"""Typed job-spec validation shared between the gateway and the CLI.

A job spec is the HTTP wire form of one :class:`repro.exec.SimJob`: a
JSON object naming the kind-specific knobs.  :func:`validate_job_spec`
turns an untrusted payload into a ``SimJob`` **through the same
constructors the harness CLI uses** (:meth:`SimJob.bar` /
:meth:`SimJob.access_control`), so an accepted HTTP spec and the
equivalent CLI invocation serialize to the *same* content address —
the cache key is the proof of equivalence, and the service can never
serve a result the harness would not have computed.

Malformed payloads raise :class:`SpecError`, which carries the failing
field and a message and renders as a structured 4xx JSON body — a bad
request must never surface as a traceback.

Spec shapes::

    {"kind": "bar", "benchmark": "compress", "machine": "ooo",
     "label": "S10", "instructions": 30000, "warmup": 15000, "seed": 0}

    {"kind": "access_control", "workload": "migratory",
     "method": "INFORMING", "machine_params": {...}}

``instructions``/``warmup`` default to the harness defaults and
``seed`` to 0, matching ``python -m repro.harness figure2``'s cells.
A bar spec may name a ``backend`` (``"interp"`` | ``"vec"``, see
:mod:`repro.vec`): it is validated — an unknown backend is a 400 —
but deliberately excluded from the SimJob, because backends produce
digit-exact results and the cache key must stay backend-free.
``instructions`` is capped (:data:`MAX_INSTRUCTIONS`) so one request
cannot wedge a worker shard for hours.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.exec.job import KIND_ACCESS_CONTROL, KIND_BAR, SimJob

#: Hard per-request ceiling on simulated instructions (and warmup): the
#: admission layer's guard against a single spec monopolizing a shard.
MAX_INSTRUCTIONS = 2_000_000

#: Spec fields accepted per kind (anything else is rejected loudly —
#: a typo like "benchmrk" must not silently fall back to a default).
_BAR_FIELDS = frozenset(
    ["kind", "benchmark", "machine", "label", "instructions", "warmup",
     "seed", "backend", "policy"])
_AC_FIELDS = frozenset(["kind", "workload", "method", "machine_params"])


class SpecError(ValueError):
    """A job spec failed validation; renders as a structured 400."""

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field
        self.message = message

    def to_dict(self) -> Dict[str, Any]:
        return {"error": "invalid_spec", "field": self.field,
                "message": self.message}


def _require_str(payload: Mapping[str, Any], field: str,
                 choices) -> str:
    value = payload.get(field)
    if not isinstance(value, str):
        raise SpecError(field, f"required and must be a string, "
                               f"got {type(value).__name__}")
    if choices is not None and value not in choices:
        raise SpecError(field, f"unknown value {value!r}; expected one of "
                               f"{sorted(choices)}")
    return value


def _optional_int(payload: Mapping[str, Any], field: str, default: int,
                  minimum: int, maximum: int) -> int:
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(field, f"must be an integer, "
                               f"got {type(value).__name__}")
    if not minimum <= value <= maximum:
        raise SpecError(field, f"must be between {minimum} and {maximum}, "
                               f"got {value}")
    return value


def _reject_unknown(payload: Mapping[str, Any], allowed: frozenset) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SpecError(unknown[0],
                        f"unknown field(s) {unknown}; allowed: "
                        f"{sorted(allowed)}")


def _validate_bar(payload: Mapping[str, Any]) -> SimJob:
    from repro.harness.configs import MACHINES
    from repro.harness.runner import (
        DEFAULT_INSTRUCTIONS,
        DEFAULT_WARMUP,
        bar_config,
    )
    from repro.workloads import SPEC92

    _reject_unknown(payload, _BAR_FIELDS)
    benchmark = _require_str(payload, "benchmark", SPEC92)
    machine = _require_str(payload, "machine", MACHINES)
    label = _require_str(payload, "label", None)
    try:
        bar_config(label)
    except ValueError as exc:
        raise SpecError("label", str(exc))
    instructions = _optional_int(payload, "instructions",
                                 DEFAULT_INSTRUCTIONS, 1, MAX_INSTRUCTIONS)
    warmup = _optional_int(payload, "warmup", DEFAULT_WARMUP, 0,
                           MAX_INSTRUCTIONS)
    seed = _optional_int(payload, "seed", 0, -(2 ** 31), 2 ** 31)
    if "backend" in payload:
        # Validated for explicitness (a typo'd backend must 400, not be
        # silently dropped) but *never* part of the SimJob: backends are
        # digit-exact, so the job's cache key — the service's identity —
        # is backend-free, and which backend a shard actually runs is
        # the server operator's choice (REPRO_BACKEND).
        from repro.vec import BackendError, resolve_backend

        backend = payload["backend"]
        if not isinstance(backend, str):
            raise SpecError("backend", f"must be a string, got "
                                       f"{type(backend).__name__}")
        try:
            resolve_backend(backend)
        except BackendError as exc:
            raise SpecError("backend", str(exc))
    policy = "lru"
    if "policy" in payload:
        # Unlike backend, the policy changes simulated results, so it IS
        # part of the SimJob (and hence the cache key) — but the default
        # "lru" is normalized away by SimJob.bar, keeping pre-registry
        # keys reachable.
        from repro.memory import available_policies

        policy = _require_str(payload, "policy",
                              set(available_policies()))
    return SimJob.bar(benchmark=benchmark, machine=machine, label=label,
                      instructions=instructions, warmup=warmup, seed=seed,
                      policy=policy)


def _validate_access_control(payload: Mapping[str, Any]) -> SimJob:
    from dataclasses import asdict, fields

    from repro.coherence import (
        TABLE2_MACHINE,
        AccessControlMethod,
        CoherenceMachineParams,
    )
    from repro.workloads.parallel import PARALLEL_KERNELS

    _reject_unknown(payload, _AC_FIELDS)
    workload = _require_str(payload, "workload", PARALLEL_KERNELS)
    method = _require_str(payload, "method",
                          {m.name for m in AccessControlMethod})
    params = payload.get("machine_params", None)
    if params is None:
        machine_params = asdict(TABLE2_MACHINE)
    else:
        if not isinstance(params, Mapping):
            raise SpecError("machine_params",
                            f"must be an object, got "
                            f"{type(params).__name__}")
        known = {f.name for f in fields(CoherenceMachineParams)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise SpecError("machine_params",
                            f"unknown parameter(s) {unknown}; allowed: "
                            f"{sorted(known)}")
        for name, value in params.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError("machine_params",
                                f"{name} must be an integer, got "
                                f"{type(value).__name__}")
        machine_params = dict(asdict(TABLE2_MACHINE), **params)
    return SimJob.access_control(workload=workload, method=method,
                                 machine_params=machine_params)


_VALIDATORS = {
    KIND_BAR: _validate_bar,
    KIND_ACCESS_CONTROL: _validate_access_control,
}


def validate_job_spec(payload: Any) -> SimJob:
    """Validate an untrusted spec payload into a :class:`SimJob`.

    Raises:
        SpecError: naming the offending field, for any malformed spec.
    """
    if not isinstance(payload, Mapping):
        raise SpecError("spec", f"job spec must be a JSON object, got "
                                f"{type(payload).__name__}")
    kind = payload.get("kind", KIND_BAR)
    if not isinstance(kind, str) or kind not in _VALIDATORS:
        raise SpecError("kind", f"unknown kind {kind!r}; expected one of "
                                f"{sorted(_VALIDATORS)}")
    return _VALIDATORS[kind](payload)


def job_to_spec(job: SimJob) -> Dict[str, Any]:
    """The wire spec for *job* — the inverse of :func:`validate_job_spec`.

    Round-trip guarantee (tested property):
    ``validate_job_spec(job_to_spec(j)).cache_key() == j.cache_key()``
    for every job the validator accepts.
    """
    cfg = job.config_dict()
    if job.kind == KIND_BAR:
        spec = {"kind": KIND_BAR, "benchmark": job.benchmark,
                "machine": job.machine, "label": cfg["label"],
                "instructions": job.instructions, "warmup": job.warmup,
                "seed": job.seed}
        if "policy" in cfg:
            spec["policy"] = cfg["policy"]
        return spec
    return {"kind": KIND_ACCESS_CONTROL, "workload": job.benchmark,
            "method": cfg["method"],
            "machine_params": cfg["machine_params"]}
