"""``python -m repro.serve`` — run the simulation gateway.

::

    python -m repro.serve --port 8123 --shards 4 \
        --manifest-dir results/runs --max-cache-bytes 500M

    curl -s localhost:8123/healthz
    curl -s localhost:8123/metrics
    curl -s -XPOST localhost:8123/v1/jobs -d \
        '{"kind": "bar", "benchmark": "compress", "machine": "ooo",
          "label": "S10"}'

The process runs until SIGTERM/SIGINT, then drains gracefully: the
listener closes, in-flight jobs finish and flush their manifests, new
submissions get a structured 503, and the process exits 0.  A second
signal aborts the drain.  ``--port 0`` binds an ephemeral port (printed
on stdout and to ``--ready-file``), which is how the tests and the CI
smoke job boot throwaway instances.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional

from repro.exec.cache import parse_size
from repro.serve.app import App
from repro.serve.gateway import Gateway, ServeOptions
from repro.trace import trace_sample


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="simulation-as-a-service gateway over the exec engine")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123,
                        help="listen port; 0 picks an ephemeral one")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker threads executing jobs (default 2)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission queue depth; beyond it, 503")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-tenant requests/second (0 = unlimited)")
    parser.add_argument("--burst", type=float, default=20.0,
                        help="per-tenant token-bucket capacity")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "REPRO_CACHE_DIR or ~/.cache/repro-exec)")
    parser.add_argument("--max-cache-bytes", default=None, metavar="SIZE",
                        help="cache size cap (K/M/G suffix ok); evicts "
                             "oldest entries under service traffic")
    parser.add_argument("--manifest-dir", default=None,
                        help="write a repro.perf run manifest per served "
                             "execution under this root (enables /runs)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-job wall-clock limit in seconds")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="service write-ahead journal (repro.durable): "
                             "accepted jobs are journaled before running, "
                             "and a restarted gateway replays the file to "
                             "re-enqueue incomplete ones")
    parser.add_argument("--trace-sample", type=float, default=None,
                        metavar="RATE",
                        help="repro.trace sampling rate in [0,1] for "
                             "requests without their own traceparent "
                             "header (default: REPRO_TRACE_SAMPLE, then "
                             "0 = off); sampled requests write a span "
                             "tree next to their run manifest")
    parser.add_argument("--trace-dir", default=None,
                        help="span destination for traced requests that "
                             "produce no run directory (cache hits, "
                             "rejections): <dir>/serve_spans.jsonl "
                             "(default: --manifest-dir)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds to wait for in-flight jobs on "
                             "shutdown")
    parser.add_argument("--ready-file", default=None,
                        help="write 'host port' here once listening "
                             "(test/smoke handshake)")
    return parser


def options_from_args(args) -> ServeOptions:
    max_bytes: Optional[int] = None
    if args.max_cache_bytes is not None:
        max_bytes = parse_size(args.max_cache_bytes)
    return ServeOptions(
        shards=args.shards,
        queue_limit=args.queue_limit,
        rate=args.rate,
        burst=args.burst,
        cache_dir=args.cache_dir,
        cache_max_bytes=max_bytes,
        manifest_dir=args.manifest_dir,
        job_timeout=args.job_timeout,
        drain_grace=args.drain_grace,
        journal_path=args.journal,
        trace_sample=trace_sample(args.trace_sample),
        trace_dir=args.trace_dir,
    )


async def serve(options: ServeOptions, host: str, port: int,
                ready_file: Optional[str] = None) -> int:
    """Boot the gateway, run until a signal, drain, exit."""
    app = App(Gateway(options))
    bound_host, bound_port = await app.start(host, port)
    print(f"repro.serve listening on http://{bound_host}:{bound_port} "
          f"({options.shards} shard(s), queue {options.queue_limit})",
          flush=True)
    recovery = app.gateway.recovery
    if options.journal_path and (recovery["recovered"]
                                 or recovery["orphaned"]):
        print(f"repro.serve: journal replay recovered "
              f"{recovery['recovered']} job(s) "
              f"({recovery['already_cached']} already cached), "
              f"{recovery['orphaned']} orphaned", flush=True)
    if ready_file:
        with open(ready_file, "w") as fh:
            fh.write(f"{bound_host} {bound_port}\n")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _on_signal() -> None:
        if stop.is_set():  # second signal: abort the drain
            raise KeyboardInterrupt
        print("repro.serve: shutdown requested, draining...", flush=True)
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, _on_signal)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread / exotic platform: Ctrl-C still works

    await stop.wait()
    abandoned = await app.shutdown()
    if abandoned:
        print(f"repro.serve: drain deadline hit, {abandoned} job(s) "
              f"abandoned", file=sys.stderr, flush=True)
    print("repro.serve: drained, bye", flush=True)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        options = options_from_args(args)
    except ValueError as exc:
        build_parser().error(str(exc))
    try:
        return asyncio.run(serve(options, args.host, args.port,
                                 args.ready_file))
    except KeyboardInterrupt:
        print("repro.serve: aborted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
