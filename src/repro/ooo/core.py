"""Cycle-level out-of-order 4-wide superscalar timing model (R10000-like).

The model tracks the two dependence kinds Section 3.2 identifies: program
order in a 32-entry reorder buffer (graduation in order, 4 wide), and true
data dependences through register renaming (producer links captured at
dispatch; write-after-write and write-after-read hazards do not exist).
Unresolved predicted branches consume *shadow state*; fetch stalls when all
shadow slots are in use.  When informing traps are handled branch-style,
in-flight informing memory operations consume the same resource — the
hardware cost the paper calls out.

Informing trap handling (Section 3.2):

* **branch-like** — the implicit branch-and-link resolves when the hit/miss
  outcome is known (two cycles after the reference issues).  A miss squashes
  younger instructions, redirects fetch to the handler, and pays the
  mispredict penalty; handler execution overlaps the outstanding miss.
* **exception-like** — the trap waits until the reference reaches the head
  of the reorder buffer and graduates; the machine is then flushed as if
  the next instruction excepted.  Cheaper hardware, slower invocation (the
  paper measured 7-9% on compress).

With ``wrong_path_factory`` set, a mispredicted branch keeps fetching down
the wrong path (synthetic instructions from the factory) until it resolves;
wrong-path loads access the cache speculatively and are squashed at resolve,
exercising the Section 3.3 MSHR-lifetime/invalidate mechanism.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.branch import TwoBitCounterPredictor
from repro.core.engine import InformingEngine
from repro.core.mechanisms import InformingConfig, Mechanism, TrapStyle
from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass
from repro.isa.registers import REG_ZERO
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import CoreConfig, FUPool, GraduationStats, StreamStack

#: Cycles after issue at which a reference's hit/miss outcome is known.
TAG_CHECK_DELAY = 2

#: Instruction classes counted as informing/optimization overhead rather
#: than application work (the graduation loops test these by identity).
_OVERHEAD_OPS = (OpClass.MHAR_SET, OpClass.BLMISS, OpClass.PREFETCH)

_WAITING = 0
_ISSUED = 1


class _Entry:
    """One reorder-buffer entry."""

    __slots__ = ("inst", "point", "seq", "state", "deps", "complete_cycle",
                 "was_miss", "needs_inform", "mshr_id", "holds_shadow",
                 "trap_pending", "cc_ref", "wrong_path", "squashed",
                 "outcome_cycle")

    def __init__(self, inst: DynInst, point, seq: int) -> None:
        self.inst = inst
        self.point = point
        self.seq = seq
        self.state = _WAITING
        self.deps: Tuple["_Entry", ...] = ()
        self.complete_cycle: Optional[int] = None
        self.was_miss = False
        self.needs_inform = False
        self.mshr_id: Optional[int] = None
        self.holds_shadow = False
        self.trap_pending = False
        self.cc_ref: Optional["_Entry"] = None
        self.wrong_path = False
        self.squashed = False
        self.outcome_cycle: Optional[int] = None


class OutOfOrderCore:
    """The out-of-order machine model of Table 1.

    Args:
        config: pipeline parameters (ROB size, shadow slots, FU mix...).
        hierarchy: the memory hierarchy.  Pass one built with
            ``extended_mshr_lifetime=True`` to enable the Section 3.3
            speculative-update guarantee.
        informing: informing-operation configuration.
        observer: Python hook per handler invocation.
        wrong_path_factory: optional ``f(branch_inst) -> iterator of
            DynInst`` producing synthetic wrong-path instructions fetched
            after a mispredicted branch until it resolves.
    """

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        informing: Optional[InformingConfig] = None,
        observer=None,
        wrong_path_factory: Optional[
            Callable[[DynInst], Iterator[DynInst]]] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.engine = InformingEngine(informing or InformingConfig(), observer)
        self.predictor = TwoBitCounterPredictor(config.predictor_entries)
        self.stats = GraduationStats(width=config.issue_width)
        self.wrong_path_factory = wrong_path_factory
        self.wrong_path_squashed = 0

    # -- main loop ------------------------------------------------------------
    def run(self, stream: Iterable[DynInst],
            max_app_insts: Optional[int] = None,
            warmup_insts: int = 0) -> GraduationStats:
        """Simulate *stream* to completion; return graduation statistics.

        ``warmup_insts`` application instructions run first, after which all
        statistics reset (caches stay warm); ``max_app_insts`` counts
        warm-up plus measured instructions.
        """
        config = self.config
        engine = self.engine
        hierarchy = self.hierarchy
        predictor = self.predictor
        stats = self.stats
        width = config.issue_width
        rob_size = config.rob_size
        stack = StreamStack(stream)
        fu = FUPool(config)
        rob: List[_Entry] = []
        # Unissued rob entries in program order.  The issue scan walks this
        # instead of the whole rob (most entries are already issued);
        # entries that issue, squash, or leave the rob are compacted away
        # lazily during the scan.
        waiting: List[_Entry] = []
        rename: dict = {}
        shadow_in_use = 0
        fetch_blocked_until = 0
        halted_on_branch: Optional[_Entry] = None  # mispredict, no wrong path
        wrong_path_branch: Optional[_Entry] = None  # mispredict, wrong path on
        last_fetch_line = -1
        last_mem_entry: Optional[_Entry] = None  # for BLMISS binding
        armed_traps: List[Tuple[int, _Entry]] = []
        cycle = 0
        seq = 0
        app_committed = 0
        stream_done = False
        branch_like = (engine.config.trap_style is TrapStyle.BRANCH_LIKE)
        is_trap = engine.mechanism is Mechanism.TRAP
        is_cc = engine.mechanism is Mechanism.CONDITION_CODE
        informing_needs_shadow = (is_trap and branch_like and
                                  engine.config.active)

        # Hot-loop bindings: the issue scan walks the reorder buffer every
        # cycle, so attribute lookups and enum hashing are hoisted out.
        op_load = OpClass.LOAD
        op_store = OpClass.STORE
        op_prefetch = OpClass.PREFETCH
        op_branch = OpClass.BRANCH
        op_blmiss = OpClass.BLMISS
        op_mhar_set = OpClass.MHAR_SET
        entry_cls = _Entry
        stack_fetch = stack.fetch
        stack_committed = stack.committed
        # Same-package private access: resetting availability is one slice
        # assignment per cycle, not worth a method call.
        fu_avail = fu._avail
        fu_counts = fu._counts
        fu_take = fu.take_code
        hier_ifetch = hierarchy.ifetch
        rename_get = rename.get
        lat_list = config.latencies.as_list()
        mispredict_penalty = config.mispredict_penalty
        engine_wants = engine.wants
        extended_mshrs = hierarchy.mshrs.extended_lifetime
        issue_memory = self._issue_memory
        # Runtime invariant checker (repro.sanitize); None in normal runs,
        # so every hook below costs a single identity test.
        san = hierarchy._san
        # Observer (repro.obs), same pattern and same off cost.
        obs = hierarchy._obs
        shadow_branches = config.shadow_branches
        # Graduation slots accumulate in locals and flush in blocks
        # (see GraduationStats.record_cycles).
        acc_cycles = acc_busy = acc_cache = acc_other = 0

        def squash_after(boundary: _Entry) -> None:
            """Remove everything younger than *boundary* from the machine."""
            nonlocal shadow_in_use, last_mem_entry, last_fetch_line
            nonlocal halted_on_branch, wrong_path_branch, stream_done
            while rob and rob[-1].seq > boundary.seq:
                victim = rob.pop()
                victim.squashed = True
                if victim.wrong_path:
                    self.wrong_path_squashed += 1
                if victim.holds_shadow:
                    shadow_in_use -= 1
                if victim.mshr_id is not None and hierarchy.mshrs.extended_lifetime:
                    hierarchy.release_mshr(victim.mshr_id, squashed=True)
            rename.clear()
            for entry in rob:
                dest = entry.inst.dest
                if dest is not None and dest != REG_ZERO:
                    rename[dest] = entry
            armed_traps[:] = [
                (fire, e) for fire, e in armed_traps if not e.squashed]
            if last_mem_entry is not None and last_mem_entry.squashed:
                last_mem_entry = None
            if halted_on_branch is not None and halted_on_branch.squashed:
                halted_on_branch = None
            if wrong_path_branch is not None and wrong_path_branch.squashed:
                wrong_path_branch = None
            last_fetch_line = -1
            stream_done = False

        def take_trap(boundary: _Entry, missed_ref: DynInst,
                      fire_cycle: int, mshr_id: Optional[int]) -> None:
            nonlocal fetch_blocked_until
            # Fire once per line fetch: skip if another trap for the same
            # fetch already ran.
            if mshr_id is not None and hierarchy.mshrs.is_informed(mshr_id):
                return
            if obs is not None:
                obs.cycle = fire_cycle  # stamp for the engine's trap.fire
            body = engine.on_miss(missed_ref)
            if body is None:
                return
            if san is not None:
                san.on_trap(engine, missed_ref, fire_cycle)
            if mshr_id is not None:
                hierarchy.mark_informed(mshr_id)
            squash_after(boundary)
            stack.rewind_after(boundary.point)
            stack.push_handler(body)
            fetch_blocked_until = max(fetch_blocked_until,
                                      fire_cycle + config.mispredict_penalty)
            stats.informing_mispredicts += 1
            stats.handler_invocations += 1

        while True:
            # ---- branch-like informing traps fire --------------------------
            if armed_traps:
                due = [(f, e) for f, e in armed_traps
                       if f <= cycle and not e.squashed]
                if due:
                    due.sort(key=lambda pair: pair[1].seq)
                    fire, entry = due[0]
                    armed_traps.remove((fire, entry))
                    take_trap(entry, entry.inst, cycle, entry.mshr_id)
                armed_traps[:] = [
                    (f, e) for f, e in armed_traps if not e.squashed]

            # ---- graduation -------------------------------------------------
            graduated = 0
            trap_fired_at_head = False
            while (rob and graduated < width
                   and rob[0].state == _ISSUED
                   and rob[0].complete_cycle <= cycle):
                entry = rob.pop(0)
                if san is not None:
                    san.on_graduate(entry, cycle, armed_traps)
                if extended_mshrs and entry.mshr_id is not None:
                    hierarchy.release_mshr(entry.mshr_id, squashed=False)
                inst = entry.inst
                if rename_get(inst.dest) is entry:
                    del rename[inst.dest]
                stack_committed(entry.point)
                op = inst.op
                if (inst.handler_code or op is op_mhar_set
                        or op is op_blmiss or op is op_prefetch):
                    stats.handler_instructions += 1
                    if obs is not None:
                        obs.on_handler_commit(cycle)
                else:
                    stats.app_instructions += 1
                    if obs is not None:
                        obs.on_app_commit(cycle)
                    app_committed += 1
                    if app_committed == warmup_insts:
                        # Pre-warm-up slots die with the old stats object.
                        acc_cycles = acc_busy = acc_cache = acc_other = 0
                        stats = self._reset_stats()
                graduated += 1
                if entry.trap_pending:
                    # Exception-style informing trap: flush as though the
                    # next instruction excepted.
                    if rob:
                        take_trap(entry, inst, cycle, entry.mshr_id)
                    else:
                        # Nothing younger to squash; still invoke handler.
                        body = engine.on_miss(inst)
                        if body is not None:
                            if san is not None:
                                san.on_trap(engine, inst, cycle)
                            if entry.mshr_id is not None:
                                hierarchy.mark_informed(entry.mshr_id)
                            stack.rewind_after(entry.point)
                            stack.push_handler(body)
                            fetch_blocked_until = max(
                                fetch_blocked_until,
                                cycle + config.mispredict_penalty)
                            stats.informing_mispredicts += 1
                            stats.handler_invocations += 1
                    trap_fired_at_head = True
                    break
            head = rob[0] if rob else None
            acc_cycles += 1
            acc_busy += graduated
            lost = width - graduated
            if (head is not None and head.was_miss
                    and head.state == _ISSUED and head.complete_cycle > cycle):
                acc_cache += lost
                if obs is not None:
                    obs.on_slots(cycle, graduated, lost, True)
            else:
                acc_other += lost
                if obs is not None:
                    obs.on_slots(cycle, graduated, lost, False)

            if max_app_insts is not None and app_committed >= max_app_insts:
                break
            if stream_done and not rob:
                break

            # ---- fetch / dispatch ------------------------------------------
            if (cycle >= fetch_blocked_until and halted_on_branch is None
                    and not trap_fired_at_head):
                fetched = 0
                while fetched < width and len(rob) < rob_size:
                    if (shadow_in_use >= shadow_branches):
                        break  # out of shadow state: front end stalls
                    item = stack_fetch()
                    if item is None:
                        stream_done = True
                        break
                    inst, point = item
                    line = inst.pc >> 5
                    if line != last_fetch_line:
                        ready = hier_ifetch(inst.pc, cycle)
                        last_fetch_line = line
                        if ready > cycle:
                            stack.rewind_to(point)
                            fetch_blocked_until = ready
                            last_fetch_line = -1
                            break
                    seq += 1
                    entry = entry_cls(inst, point, seq)
                    entry.wrong_path = wrong_path_branch is not None
                    deps = []
                    for src in inst.srcs:
                        if src != REG_ZERO:
                            producer = rename_get(src)
                            if producer is not None:
                                deps.append(producer)
                    entry.deps = tuple(deps)
                    dest = inst.dest
                    if dest is not None and dest != REG_ZERO:
                        rename[dest] = entry
                    op = inst.op
                    if op is op_branch and entry.wrong_path:
                        # Wrong-path branches consume shadow state but take
                        # no control action — the machine is already off in
                        # the weeds until the real branch resolves.
                        entry.holds_shadow = True
                        shadow_in_use += 1
                    elif op is op_branch:
                        entry.holds_shadow = True
                        shadow_in_use += 1
                        predicted = predictor.predict(inst.pc)
                        predictor.update(inst.pc, inst.taken)
                        if predicted != inst.taken:
                            predictor.record_mispredict()
                            stats.branch_mispredicts += 1
                            rob.append(entry)
                            waiting.append(entry)
                            fetched += 1
                            if (self.wrong_path_factory is not None
                                    and not entry.wrong_path):
                                wrong_path_branch = entry
                                stack.push_handler(
                                    self.wrong_path_factory(inst))
                                continue
                            halted_on_branch = entry
                            break
                        if inst.taken:
                            # Correct taken prediction: one fetch bubble.
                            rob.append(entry)
                            waiting.append(entry)
                            fetched += 1
                            fetch_blocked_until = max(fetch_blocked_until,
                                                      cycle + 1)
                            break
                    elif op is op_blmiss:
                        entry.holds_shadow = True
                        shadow_in_use += 1
                        entry.cc_ref = last_mem_entry
                    elif (informing_needs_shadow
                          and (op is op_load or op is op_store)
                          and engine_wants(inst)):
                        entry.holds_shadow = True
                        shadow_in_use += 1
                    if ((op is op_load or op is op_store)
                            and not inst.handler_code):
                        last_mem_entry = entry
                    rob.append(entry)
                    waiting.append(entry)
                    fetched += 1

            # ---- issue -------------------------------------------------------
            fu_avail[:] = fu_counts
            issued = 0
            # Scan only the unissued entries, in program order, compacting
            # the list in place as entries issue (or turn out squashed /
            # graduated).  The rob itself is mostly issued entries, so this
            # is much shorter than a full rob walk.  Paths that mutate the
            # machine wholesale (squash_after / take_trap) break out; the
            # unscanned tail is spliced back and squashed stragglers are
            # dropped lazily on the next scan.
            read = 0
            write = 0
            waiting_len = len(waiting)
            while read < waiting_len:
                entry = waiting[read]
                read += 1
                if entry.state != _WAITING or entry.squashed:
                    continue  # compact away
                ready = True
                for dep in entry.deps:
                    if dep.complete_cycle is None or dep.complete_cycle > cycle:
                        ready = False
                        break
                if not ready:
                    waiting[write] = entry
                    write += 1
                    continue
                inst = entry.inst
                op = inst.op
                ref = entry.cc_ref
                if ref is not None:
                    if ref.outcome_cycle is None or ref.outcome_cycle > cycle:
                        # hit/miss condition code not yet written
                        waiting[write] = entry
                        write += 1
                        continue
                if not fu_take(op.fu_code):
                    waiting[write] = entry
                    write += 1
                    continue

                if op is op_load or op is op_store or op is op_prefetch:
                    if not issue_memory(entry, cycle):
                        # MSHR full: retry next cycle
                        waiting[write] = entry
                        write += 1
                        continue
                    issued += 1
                    if (entry.needs_inform and op is not op_prefetch
                            and not entry.wrong_path
                            and is_trap and engine_wants(inst)):
                        if branch_like:
                            armed_traps.append(
                                (entry.outcome_cycle, entry))
                            # The implicit branch resolves at the tag check;
                            # the op cannot graduate before its trap fires
                            # (otherwise the squash point would be stale).
                            entry.complete_cycle = max(entry.complete_cycle,
                                                       entry.outcome_cycle)
                        else:
                            entry.trap_pending = True
                    if entry.holds_shadow and branch_like:
                        # Shadow state frees once the outcome is known; we
                        # approximate release at issue+tag-check by simply
                        # releasing here (the two-cycle window is small).
                        entry.holds_shadow = False
                        shadow_in_use -= 1
                    if issued >= width:
                        break
                    continue

                entry.state = _ISSUED
                entry.complete_cycle = cycle + lat_list[op.op_code]
                issued += 1
                if op is op_branch:
                    if entry.holds_shadow:
                        entry.holds_shadow = False
                        shadow_in_use -= 1
                    if halted_on_branch is entry:
                        halted_on_branch = None
                        squash_after(entry)  # nothing younger in this mode
                        fetch_blocked_until = max(
                            fetch_blocked_until,
                            entry.complete_cycle + mispredict_penalty)
                        break  # the machine just flushed; stop issuing
                    if wrong_path_branch is entry:
                        wrong_path_branch = None
                        squash_after(entry)
                        stack.rewind_after(entry.point)
                        fetch_blocked_until = max(
                            fetch_blocked_until,
                            entry.complete_cycle + mispredict_penalty)
                        break  # younger (wrong-path) work was squashed
                elif op is op_blmiss:
                    if entry.holds_shadow:
                        entry.holds_shadow = False
                        shadow_in_use -= 1
                    ref = entry.cc_ref
                    if (is_cc and ref is not None and ref.needs_inform
                            and not entry.wrong_path
                            and engine_wants(ref.inst)):
                        take_trap(entry, ref.inst, cycle, ref.mshr_id)
                        break  # the machine state just changed wholesale
                if issued >= width:
                    break
            # Splice the unscanned tail (empty when the scan ran to the end)
            # over the compacted-away prefix.
            waiting[write:] = waiting[read:]

            cycle += 1

        stats.record_cycles(acc_cycles, acc_busy, acc_cache, acc_other)
        if san is not None:
            san.on_run_end(hierarchy)
        if obs is not None:
            obs.finish()
        return stats

    def _reset_stats(self) -> GraduationStats:
        """End of warm-up: fresh counters, warm caches."""
        from repro.memory.stats import MemStats
        self.stats = GraduationStats(width=self.config.issue_width)
        self.hierarchy.stats = MemStats()
        self.hierarchy.i_accesses = 0
        self.hierarchy.i_misses = 0
        self.engine.invocations = 0
        self.engine.injected_instructions = 0
        if self.hierarchy._obs is not None:
            # The trace covers exactly the measured region, so event
            # counts reconcile with the post-warm-up aggregates.
            self.hierarchy._obs.reset()
        return self.stats

    # -- memory issue --------------------------------------------------------
    def _issue_memory(self, entry: _Entry, cycle: int) -> bool:
        inst = entry.inst
        op = inst.op
        is_prefetch = op is OpClass.PREFETCH
        is_store = op is OpClass.STORE
        # Wrong-path stores must not probe the cache (Section 3.3: store
        # probes are not speculative); complete them as nops.
        if is_store and entry.wrong_path:
            entry.state = _ISSUED
            entry.complete_cycle = cycle + 1
            return True
        result = self.hierarchy.access(inst.addr, is_store, cycle,
                                       prefetch=is_prefetch)
        if result is None:
            if is_prefetch:
                entry.state = _ISSUED
                entry.complete_cycle = cycle + 1
                return True
            return False
        entry.state = _ISSUED
        entry.was_miss = result.l1_miss and not is_prefetch
        entry.needs_inform = result.needs_inform and not is_prefetch
        if entry.needs_inform and not inst.handler_code:
            san = self.hierarchy._san
            if san is not None:
                san.on_inform_signal(result)
        entry.mshr_id = result.mshr_id
        entry.outcome_cycle = cycle + TAG_CHECK_DELAY
        if op is OpClass.LOAD:
            entry.complete_cycle = result.ready_cycle
        else:
            entry.complete_cycle = cycle + 1
        return True
