"""Out-of-order-issue superscalar core modelled on the MIPS R10000 (§3.2)."""

from repro.ooo.core import OutOfOrderCore

__all__ = ["OutOfOrderCore"]
