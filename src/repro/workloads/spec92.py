"""Synthetic models of the paper's fourteen SPEC92 benchmarks.

Each model is a :class:`~repro.workloads.synthetic.WorkloadSpec` whose
parameters are chosen to reproduce the benchmark's *role* in the paper's
evaluation (Figures 2 and 3 and the §4.2.2 text), not its absolute IPC:

==========  =====================================================================
benchmark   role in the paper / how the model realises it
==========  =====================================================================
compress    integer code with substantial cache stalls on both machines;
            100-instruction handlers made it ~6x slower → a hot sequential
            core blended with mid-size random working sets that miss both
            L1 geometries.
eqntott     branch-heavy integer code, modest miss rates.
espresso    small working set; misses mostly only in the 8KB direct-mapped L1.
sc          moderate integer benchmark.
xlisp       pointer-chasing integer code (serial loads).
alvinn      very reference-dense FP code whose unique-handler instrumentation
            added >30% instructions but ~1% time on the out-of-order machine
            → streaming pattern with high ILP and few, overlappable misses.
mdljsp2     like alvinn: dense references, tiny working set, few misses.
ear         small-footprint FP code, low miss rate.
ora         almost no cache misses (100-instruction handlers cost only ~2%)
            → tiny working set, divide/sqrt-bound compute.
doduc       moderate FP benchmark with some divides.
hydro2d     strided FP sweeps with regular misses.
swm256      large-array streaming, some secondary-cache misses.
tomcatv     multiple large streams; the highest miss exposure of the
            "normal" benchmarks (in-order overhead >45% at 10 instructions).
su2cor      Figure 3's pathology: severe *conflict* misses in the in-order
            machine's 8KB direct-mapped L1 that the out-of-order machine's
            32KB 2-way L1 does not suffer → ConflictPattern with 8KB spacing.
==========  =====================================================================

The paper simulated these with the standard MIPS compilers at -O2; see
DESIGN.md §2 for why seeded synthetic stand-ins preserve the evaluation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.workloads.patterns import (
    ConflictPattern,
    MixedPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec

KB = 1024
MB = 1024 * KB

#: Disjoint data regions per benchmark (purely cosmetic: every run uses a
#: fresh hierarchy, but distinct bases keep traces self-describing).
_REGION = {name: 0x0100_0000 * (i + 1) for i, name in enumerate([
    "compress", "eqntott", "espresso", "sc", "xlisp",
    "alvinn", "mdljsp2", "ear", "ora", "doduc",
    "hydro2d", "swm256", "tomcatv", "su2cor",
])}


def _compress_pattern():
    base = _REGION["compress"]
    return MixedPattern([
        (0.88, SequentialPattern(base, extent=6 * KB)),
        (0.06, RandomPattern(base + MB, working_set=20 * KB, seed=101)),
        (0.06, RandomPattern(base + 2 * MB, working_set=64 * KB, seed=122)),
    ], seed=11)


def _eqntott_pattern():
    base = _REGION["eqntott"]
    return MixedPattern([
        (0.91, RandomPattern(base, working_set=5 * KB, seed=102)),
        (0.05, RandomPattern(base + MB, working_set=20 * KB, seed=103)),
        (0.04, RandomPattern(base + 2 * MB, working_set=48 * KB, seed=123)),
    ], seed=12)


def _espresso_pattern():
    base = _REGION["espresso"]
    return MixedPattern([
        (0.92, RandomPattern(base, working_set=7 * KB, seed=104)),
        (0.08, SequentialPattern(base + MB, extent=48 * KB)),
    ], seed=13)


def _sc_pattern():
    base = _REGION["sc"]
    return MixedPattern([
        (0.90, RandomPattern(base, working_set=6 * KB, seed=105)),
        (0.05, RandomPattern(base + MB, working_set=20 * KB, seed=106)),
        (0.05, RandomPattern(base + 2 * MB, working_set=48 * KB, seed=124)),
    ], seed=14)


def _xlisp_pattern():
    base = _REGION["xlisp"]
    return PointerChasePattern(base, nodes=320, node_size=32, seed=107)


def _alvinn_pattern():
    base = _REGION["alvinn"]
    return MixedPattern([
        (0.93, RandomPattern(base, working_set=5 * KB, seed=108)),
        (0.03, RandomPattern(base + MB, working_set=20 * KB, seed=116)),
        (0.04, RandomPattern(base + 2 * MB, working_set=44 * KB, seed=126)),
    ], seed=15)


def _mdljsp2_pattern():
    base = _REGION["mdljsp2"]
    return MixedPattern([
        (0.94, RandomPattern(base, working_set=5 * KB, seed=109)),
        (0.03, RandomPattern(base + MB, working_set=18 * KB, seed=117)),
        (0.03, RandomPattern(base + 2 * MB, working_set=40 * KB, seed=127)),
    ], seed=16)


def _ear_pattern():
    base = _REGION["ear"]
    return RandomPattern(base, working_set=4 * KB, seed=110)


def _ora_pattern():
    base = _REGION["ora"]
    return RandomPattern(base, working_set=2 * KB, seed=111)


def _doduc_pattern():
    base = _REGION["doduc"]
    return MixedPattern([
        (0.88, RandomPattern(base, working_set=6 * KB, seed=112)),
        (0.06, RandomPattern(base + MB, working_set=20 * KB, seed=113)),
        (0.06, RandomPattern(base + 2 * MB, working_set=40 * KB, seed=125)),
    ], seed=17)


# The FP "streaming" benchmarks are modelled with secondary-cache-resident
# working sets (between the L1 and L2 sizes): their misses hit the L2 at
# 11-12 cycles, the regime where the in-order machine cannot hide a
# 10-instruction handler but the out-of-order machine mostly can — the
# Figure 2 floating-point trend.  A small weight of huge-footprint random
# accesses adds tomcatv/swm256's memory-level misses.


def _hydro2d_pattern():
    base = _REGION["hydro2d"]
    return MixedPattern([
        (0.87, RandomPattern(base, working_set=6 * KB, seed=118)),
        (0.05, RandomPattern(base + MB, working_set=22 * KB, seed=119)),
        (0.08, RandomPattern(base + 2 * MB, working_set=56 * KB, seed=128)),
    ], seed=21)


def _swm256_pattern():
    base = _REGION["swm256"]
    return MixedPattern([
        (0.86, RandomPattern(base, working_set=6 * KB, seed=114)),
        (0.05, RandomPattern(base + MB, working_set=24 * KB, seed=120)),
        (0.07, RandomPattern(base + 2 * MB, working_set=72 * KB, seed=129)),
        (0.02, SequentialPattern(base + 16 * MB, extent=8 * MB, stride=32)),
    ], seed=19)


def _tomcatv_pattern():
    base = _REGION["tomcatv"]
    return MixedPattern([
        (0.76, RandomPattern(base, working_set=6 * KB, seed=115)),
        (0.14, RandomPattern(base + MB, working_set=24 * KB, seed=121)),
        (0.07, RandomPattern(base + 2 * MB, working_set=96 * KB, seed=130)),
        (0.03, SequentialPattern(base + 32 * MB, extent=8 * MB, stride=32)),
    ], seed=20)


def _su2cor_pattern():
    base = _REGION["su2cor"]
    return MixedPattern([
        (0.60, ConflictPattern(base, count=3, spacing=8 * KB, sweep=4)),
        (0.40, SequentialPattern(base + 16 * MB, extent=5 * KB)),
    ], seed=18)


SPEC92: Dict[str, WorkloadSpec] = {
    # ---- SPECint92 (5) ----------------------------------------------------
    "compress": WorkloadSpec(
        name="compress", pattern_factory=_compress_pattern,
        mem_fraction=0.34, store_fraction=0.30, branch_fraction=0.14,
        branch_bias=0.88, dependence_window=5, load_use_fraction=0.6,
        body_length=180, seed=1),
    "eqntott": WorkloadSpec(
        name="eqntott", pattern_factory=_eqntott_pattern,
        mem_fraction=0.24, store_fraction=0.12, branch_fraction=0.22,
        branch_bias=0.86, dependence_window=6, load_use_fraction=0.55,
        body_length=120, seed=2),
    "espresso": WorkloadSpec(
        name="espresso", pattern_factory=_espresso_pattern,
        mem_fraction=0.26, store_fraction=0.15, branch_fraction=0.18,
        branch_bias=0.90, dependence_window=6, load_use_fraction=0.5,
        body_length=220, seed=3),
    "sc": WorkloadSpec(
        name="sc", pattern_factory=_sc_pattern,
        mem_fraction=0.30, store_fraction=0.25, branch_fraction=0.16,
        branch_bias=0.89, dependence_window=6, load_use_fraction=0.5,
        body_length=200, seed=4),
    "xlisp": WorkloadSpec(
        name="xlisp", pattern_factory=_xlisp_pattern,
        mem_fraction=0.30, store_fraction=0.18, branch_fraction=0.17,
        branch_bias=0.88, dependence_window=4, load_use_fraction=0.7,
        body_length=140, seed=5),
    # ---- SPECfp92 (9) -------------------------------------------------------
    "alvinn": WorkloadSpec(
        name="alvinn", pattern_factory=_alvinn_pattern,
        mem_fraction=0.38, store_fraction=0.20, branch_fraction=0.04,
        branch_bias=0.98, fp_fraction=0.65, dependence_window=10,
        load_use_fraction=0.35, body_length=240, seed=6),
    "mdljsp2": WorkloadSpec(
        name="mdljsp2", pattern_factory=_mdljsp2_pattern,
        mem_fraction=0.34, store_fraction=0.22, branch_fraction=0.06,
        branch_bias=0.97, fp_fraction=0.60, fp_heavy_fraction=0.04,
        dependence_window=9, load_use_fraction=0.4, body_length=260, seed=7),
    "ear": WorkloadSpec(
        name="ear", pattern_factory=_ear_pattern,
        mem_fraction=0.26, store_fraction=0.20, branch_fraction=0.07,
        branch_bias=0.97, fp_fraction=0.55, dependence_window=8,
        load_use_fraction=0.4, body_length=200, seed=8),
    "ora": WorkloadSpec(
        name="ora", pattern_factory=_ora_pattern,
        mem_fraction=0.16, store_fraction=0.15, branch_fraction=0.05,
        branch_bias=0.98, fp_fraction=0.70, fp_heavy_fraction=0.25,
        dependence_window=6, load_use_fraction=0.3, body_length=160, seed=9),
    "doduc": WorkloadSpec(
        name="doduc", pattern_factory=_doduc_pattern,
        mem_fraction=0.28, store_fraction=0.22, branch_fraction=0.09,
        branch_bias=0.94, fp_fraction=0.55, fp_heavy_fraction=0.10,
        dependence_window=7, load_use_fraction=0.45, body_length=300, seed=10),
    "hydro2d": WorkloadSpec(
        name="hydro2d", pattern_factory=_hydro2d_pattern,
        mem_fraction=0.33, store_fraction=0.28, branch_fraction=0.06,
        branch_bias=0.97, fp_fraction=0.60, fp_heavy_fraction=0.03,
        dependence_window=9, load_use_fraction=0.45, body_length=240, seed=11),
    "swm256": WorkloadSpec(
        name="swm256", pattern_factory=_swm256_pattern,
        mem_fraction=0.35, store_fraction=0.30, branch_fraction=0.04,
        branch_bias=0.99, fp_fraction=0.60, dependence_window=10,
        load_use_fraction=0.4, body_length=280, seed=12),
    "tomcatv": WorkloadSpec(
        name="tomcatv", pattern_factory=_tomcatv_pattern,
        mem_fraction=0.38, store_fraction=0.28, branch_fraction=0.04,
        branch_bias=0.99, fp_fraction=0.55, dependence_window=9,
        load_use_fraction=0.55, body_length=260, seed=13),
    "su2cor": WorkloadSpec(
        name="su2cor", pattern_factory=_su2cor_pattern,
        mem_fraction=0.40, store_fraction=0.25, branch_fraction=0.05,
        branch_bias=0.98, fp_fraction=0.50, fp_heavy_fraction=0.02,
        dependence_window=8, load_use_fraction=0.5, body_length=220, seed=14),
}

INT_BENCHMARKS: List[str] = ["compress", "eqntott", "espresso", "sc", "xlisp"]
FP_BENCHMARKS: List[str] = ["alvinn", "mdljsp2", "ear", "ora", "doduc",
                            "hydro2d", "swm256", "tomcatv", "su2cor"]

#: Figure 2 shows thirteen benchmarks; su2cor is split out into Figure 3.
FIGURE2_BENCHMARKS: List[str] = INT_BENCHMARKS + [
    name for name in FP_BENCHMARKS if name != "su2cor"]


def spec92_workload(name: str, seed_offset: int = 0) -> SyntheticWorkload:
    """Instantiate the named benchmark model.

    ``seed_offset`` shifts the model's generator seed (template and
    dynamic-stream RNGs) so the same benchmark can be re-rolled from the
    CLI (``--seed``); 0 — the default — leaves the spec untouched, so the
    default seed path is bit-identical to the historical behaviour.
    Per-benchmark seeds stay distinct under any common offset.
    """
    try:
        spec = SPEC92[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(SPEC92)}"
        ) from None
    if seed_offset:
        spec = replace(spec, seed=spec.seed + seed_offset)
    return SyntheticWorkload(spec)
