"""Workload characterisation: measure what a model actually generates.

The SPEC92 substitutes in :mod:`repro.workloads.spec92` are tuned to
qualitative targets; this module measures a stream's realised properties —
instruction mix, static footprint, memory footprint, line reuse, branch
bias — so calibration claims in DESIGN.md/EXPERIMENTS.md are checkable
facts rather than intentions.  The CLI exposes it as
``python -m repro.harness characterize``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass

_MIX_GROUPS = {
    OpClass.IALU: "int",
    OpClass.IMUL: "int",
    OpClass.IDIV: "int",
    OpClass.FP: "fp",
    OpClass.FDIV: "fp",
    OpClass.FSQRT: "fp",
    OpClass.LOAD: "load",
    OpClass.STORE: "store",
    OpClass.PREFETCH: "prefetch",
    OpClass.BRANCH: "branch",
    OpClass.JUMP: "branch",
    OpClass.MHRR_JUMP: "branch",
    OpClass.BLMISS: "overhead",
    OpClass.MHAR_SET: "overhead",
    OpClass.NOP: "other",
}


@dataclass
class WorkloadProfile:
    """Realised properties of one dynamic instruction stream."""

    instructions: int = 0
    mix: Counter = field(default_factory=Counter)
    static_pcs: Set[int] = field(default_factory=set)
    static_ref_pcs: Set[int] = field(default_factory=set)
    lines_touched: Set[int] = field(default_factory=set)
    line_visits: int = 0
    branch_taken: Counter = field(default_factory=Counter)
    branch_total: Counter = field(default_factory=Counter)

    @property
    def mem_fraction(self) -> float:
        refs = self.mix["load"] + self.mix["store"]
        return refs / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        refs = self.mix["load"] + self.mix["store"]
        return self.mix["store"] / refs if refs else 0.0

    @property
    def branch_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.mix["branch"] / self.instructions

    @property
    def footprint_bytes(self) -> int:
        """Distinct data footprint at 32B line granularity."""
        return len(self.lines_touched) * 32

    @property
    def line_reuse(self) -> float:
        """Mean visits per distinct line (1.0 = pure streaming)."""
        if not self.lines_touched:
            return 0.0
        return self.line_visits / len(self.lines_touched)

    def branch_bias(self) -> Dict[int, float]:
        """Per-static-branch taken probability."""
        return {pc: self.branch_taken[pc] / total
                for pc, total in self.branch_total.items() if total}

    @property
    def mean_branch_predictability(self) -> float:
        """Upper bound on a per-branch static predictor's accuracy."""
        biases = self.branch_bias()
        if not biases:
            return 1.0
        weights = [(max(p, 1 - p), self.branch_total[pc])
                   for pc, p in biases.items()]
        total = sum(n for _, n in weights)
        return sum(acc * n for acc, n in weights) / total


def characterize(stream: Iterable[DynInst],
                 limit: int = 100_000) -> WorkloadProfile:
    """Consume up to *limit* instructions and profile them."""
    profile = WorkloadProfile()
    for inst in stream:
        if profile.instructions >= limit:
            break
        profile.instructions += 1
        profile.mix[_MIX_GROUPS[inst.op]] += 1
        profile.static_pcs.add(inst.pc)
        if inst.op in (OpClass.LOAD, OpClass.STORE):
            profile.static_ref_pcs.add(inst.pc)
            line = inst.addr >> 5
            profile.lines_touched.add(line)
            profile.line_visits += 1
        elif inst.op is OpClass.BRANCH:
            profile.branch_total[inst.pc] += 1
            if inst.taken:
                profile.branch_taken[inst.pc] += 1
    return profile


def render_profile(name: str, profile: WorkloadProfile) -> str:
    mix = ", ".join(f"{kind}={count / profile.instructions:.2f}"
                    for kind, count in sorted(profile.mix.items()))
    return "\n".join([
        f"workload: {name}",
        f"  instructions        {profile.instructions}",
        f"  mix                 {mix}",
        f"  memory fraction     {profile.mem_fraction:.3f} "
        f"(stores {profile.store_fraction:.2f} of refs)",
        f"  branch fraction     {profile.branch_fraction:.3f} "
        f"(predictability <= {profile.mean_branch_predictability:.3f})",
        f"  static insts/refs   {len(profile.static_pcs)}/"
        f"{len(profile.static_ref_pcs)}",
        f"  data footprint      {profile.footprint_bytes / 1024:.1f}KB "
        f"({profile.line_reuse:.1f} visits/line)",
    ])
