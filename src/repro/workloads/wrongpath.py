"""Wrong-path instruction generation for speculation studies.

The paper's out-of-order simulator fetches down mispredicted paths; our
cores optionally do the same via a *wrong-path factory* (see
:class:`repro.ooo.OutOfOrderCore`).  This module supplies realistic
factories: wrong-path code looks like nearby application code — loads into
the workload's own data neighbourhood plus compute — so speculative cache
pollution and the Section 3.3 squash-invalidate machinery are exercised
with plausible addresses rather than a disjoint region.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass


def make_wrong_path_factory(
    data_base: int = 0x0100_0000,
    data_span: int = 1 << 20,
    mem_fraction: float = 0.3,
    seed: int = 0xBAD,
    offset_bias: int = 4096,
) -> Callable[[DynInst], Iterator[DynInst]]:
    """Build a factory producing wrong-path code near the right-path data.

    Args:
        data_base/data_span: the workload's data region; wrong-path loads
            land inside it (biased within ``offset_bias`` bytes of a
            random anchor per branch, the way wrong-path code typically
            touches neighbouring structures).
        mem_fraction: loads per wrong-path instruction.
        seed: determinism anchor; combined with the branch pc so each
            static branch has a stable wrong path.
    """
    if not 0.0 <= mem_fraction <= 0.8:
        raise ValueError("mem_fraction out of range")
    if data_span <= offset_bias:
        raise ValueError("data span must exceed the offset bias")

    def factory(branch_inst: DynInst) -> Iterator[DynInst]:
        rng = random.Random(seed ^ (branch_inst.pc * 2654435761))
        anchor = data_base + rng.randrange(0, data_span - offset_bias, 4)
        pc = 0x00F0_0000 + (branch_inst.pc & 0xFFFF) * 4

        def generate() -> Iterator[DynInst]:
            i = 0
            while True:
                if rng.random() < mem_fraction:
                    addr = anchor + rng.randrange(0, offset_bias, 4)
                    yield DynInst(OpClass.LOAD, dest=12, addr=addr,
                                  pc=pc + 4 * (i % 64))
                else:
                    yield DynInst(OpClass.IALU, dest=13, srcs=(12,),
                                  pc=pc + 4 * (i % 64))
                i += 1

        return generate()

    return factory


def spec92_wrong_path_factory(benchmark: str, seed: int = 0xBAD
                              ) -> Callable[[DynInst], Iterator[DynInst]]:
    """A wrong-path factory anchored in the named benchmark's data region."""
    from repro.workloads.spec92 import SPEC92, _REGION

    if benchmark not in SPEC92:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    spec = SPEC92[benchmark]
    return make_wrong_path_factory(
        data_base=_REGION[benchmark],
        data_span=1 << 20,
        mem_fraction=min(0.5, spec.mem_fraction),
        seed=seed,
    )
