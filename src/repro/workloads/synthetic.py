"""Template-loop synthetic workload generator.

A workload is modelled as a loop *body* of static instruction slots (each
with a fixed pc, op class and rough dependence shape) executed repeatedly
with varying data: memory slots draw addresses from the workload's access
pattern, branch slots draw outcomes from their per-slot bias.  This mirrors
how the instrumentation-relevant properties of a real benchmark arise: a
stable set of static references (what unique handlers and per-reference
profiles key on) with data-dependent dynamic behaviour.

Everything is seeded and deterministic: the same spec yields the same
dynamic instruction stream on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass
from repro.workloads.patterns import AccessPattern

# Register conventions for generated code (integer file is 1..31):
_INT_WINDOW_BASE = 1     # rotating compute destinations
_MEM_WINDOW_BASE = 16    # rotating load destinations
_MEM_WINDOW_SIZE = 6
_CHASE_REG = 24          # pointer-chase chain register
_FP_WINDOW_BASE = 33     # fp file starts at 32; 32 kept as fp scratch
_FP_WINDOW_SIZE = 8

_KIND_MEM = 0
_KIND_INT = 1
_KIND_FP = 2
_KIND_BRANCH = 3


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs for one synthetic workload.

    Fractions are of the instruction stream (``mem_fraction``,
    ``branch_fraction``) or of their parent category (``store_fraction`` of
    memory ops, ``fp_fraction`` of compute ops, ...).  ``branch_bias`` sets
    per-static-branch outcome bias; a 2-bit predictor's accuracy lands
    close to it.  ``dependence_window`` is the number of rotating compute
    destination registers — small windows serialise the code, large ones
    expose ILP.
    """

    name: str
    pattern_factory: Callable[[], AccessPattern]
    mem_fraction: float = 0.30
    store_fraction: float = 0.25
    branch_fraction: float = 0.12
    branch_bias: float = 0.90
    fp_fraction: float = 0.0
    fp_heavy_fraction: float = 0.0
    imul_fraction: float = 0.02
    idiv_fraction: float = 0.0
    dependence_window: int = 8
    load_use_fraction: float = 0.5
    body_length: int = 200
    base_pc: int = 0x10000
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_fraction <= 0.8:
            raise ValueError("mem_fraction out of range")
        if self.mem_fraction + self.branch_fraction > 0.95:
            raise ValueError("memory + branch fractions leave no compute")
        if not 0.5 <= self.branch_bias <= 1.0:
            raise ValueError("branch_bias must be in [0.5, 1.0]")
        if not 1 <= self.dependence_window <= 12:
            raise ValueError("dependence_window must be in [1, 12]")
        if self.body_length < 4:
            raise ValueError("body must have at least 4 slots")


class SyntheticWorkload:
    """Instantiates a spec: builds the static body, then streams DynInsts."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._template = self._build_template()

    # -- template construction ---------------------------------------------
    def _build_template(self) -> List[Tuple]:
        spec = self.spec
        rng = random.Random(spec.seed)
        slots: List[Tuple] = []
        for index in range(spec.body_length - 1):
            roll = rng.random()
            if roll < spec.mem_fraction:
                is_store = rng.random() < spec.store_fraction
                slots.append((_KIND_MEM, is_store))
            elif roll < spec.mem_fraction + spec.branch_fraction:
                taken_prob = (spec.branch_bias if rng.random() < 0.5
                              else 1.0 - spec.branch_bias)
                slots.append((_KIND_BRANCH, taken_prob))
            else:
                if rng.random() < spec.fp_fraction:
                    if rng.random() < spec.fp_heavy_fraction:
                        op = OpClass.FDIV if rng.random() < 0.7 else OpClass.FSQRT
                    else:
                        op = OpClass.FP
                    slots.append((_KIND_FP, op))
                else:
                    roll2 = rng.random()
                    if roll2 < spec.idiv_fraction:
                        op = OpClass.IDIV
                    elif roll2 < spec.idiv_fraction + spec.imul_fraction:
                        op = OpClass.IMUL
                    else:
                        op = OpClass.IALU
                    slots.append((_KIND_INT, op))
        # The loop-closing backward branch: almost always taken.
        slots.append((_KIND_BRANCH, 0.98))
        return slots

    # -- dynamic stream -------------------------------------------------------
    def stream(self, n_instructions: int,
               informing: bool = True) -> Iterator[DynInst]:
        """Yield exactly *n_instructions* dynamic instructions."""
        spec = self.spec
        rng = random.Random(spec.seed ^ 0x5EED)
        pattern = spec.pattern_factory()
        pattern.reset()
        serial_chase = pattern.serial
        base_pc = spec.base_pc
        window = spec.dependence_window
        int_next = 0
        mem_next = 0
        fp_next = 0
        last_load_dest: Optional[int] = None
        recent_int: List[int] = []
        emitted = 0

        # Hot-loop bindings: this generator produces one object per
        # simulated instruction, so attribute and global lookups inside the
        # loop are paid hundreds of thousands of times per experiment.
        dyninst = DynInst
        op_load = OpClass.LOAD
        op_store = OpClass.STORE
        op_branch = OpClass.BRANCH
        rng_random = rng.random
        rng_randrange = rng.randrange
        next_address = pattern.next_address
        load_use_fraction = spec.load_use_fraction
        # Pre-resolve per-slot pcs once; the template never changes.
        template = [(slot[0], slot[1], base_pc + 4 * index)
                    for index, slot in enumerate(self._template)]

        while emitted < n_instructions:
            for kind, payload, pc in template:
                if emitted >= n_instructions:
                    return

                if kind == _KIND_MEM:
                    addr = next_address()
                    if payload:  # store
                        src = recent_int[-1] if recent_int else _INT_WINDOW_BASE
                        yield dyninst(op_store, srcs=(src,), addr=addr,
                                      pc=pc, informing=informing)
                    elif serial_chase:
                        yield dyninst(op_load, dest=_CHASE_REG,
                                      srcs=(_CHASE_REG,), addr=addr, pc=pc,
                                      informing=informing)
                        last_load_dest = _CHASE_REG
                    else:
                        dest = _MEM_WINDOW_BASE + mem_next
                        mem_next = (mem_next + 1) % _MEM_WINDOW_SIZE
                        yield dyninst(op_load, dest=dest, addr=addr,
                                      pc=pc, informing=informing)
                        last_load_dest = dest
                elif kind == _KIND_INT:
                    dest = _INT_WINDOW_BASE + int_next
                    int_next = (int_next + 1) % window
                    srcs: Tuple[int, ...]
                    if (last_load_dest is not None
                            and rng_random() < load_use_fraction):
                        srcs = (last_load_dest,)
                        last_load_dest = None
                    elif recent_int:
                        srcs = (recent_int[rng_randrange(len(recent_int))],)
                    else:
                        srcs = ()
                    yield dyninst(payload, dest=dest, srcs=srcs, pc=pc)
                    recent_int.append(dest)
                    if len(recent_int) > window:
                        recent_int.pop(0)
                elif kind == _KIND_FP:
                    dest = _FP_WINDOW_BASE + fp_next
                    prev = _FP_WINDOW_BASE + (fp_next - 1) % _FP_WINDOW_SIZE
                    fp_next = (fp_next + 1) % _FP_WINDOW_SIZE
                    srcs = (prev,) if rng_random() < 0.5 else ()
                    yield dyninst(payload, dest=dest, srcs=srcs, pc=pc)
                else:  # branch
                    taken = rng_random() < payload
                    src = recent_int[-1] if recent_int else _INT_WINDOW_BASE
                    yield dyninst(op_branch, srcs=(src,), taken=taken,
                                  pc=pc)
                emitted += 1

    # -- introspection ---------------------------------------------------------
    def static_reference_pcs(self) -> List[int]:
        """pcs of the static memory-reference slots (profiling ground truth)."""
        return [self.spec.base_pc + 4 * i
                for i, slot in enumerate(self._template)
                if slot[0] == _KIND_MEM]

    def composition(self) -> dict:
        """Static slot counts by kind."""
        counts = {"mem": 0, "int": 0, "fp": 0, "branch": 0}
        names = {_KIND_MEM: "mem", _KIND_INT: "int",
                 _KIND_FP: "fp", _KIND_BRANCH: "branch"}
        for slot in self._template:
            counts[names[slot[0]]] += 1
        return counts
