"""Workload models.

The paper evaluates on fourteen SPEC92 benchmarks compiled for a MIPS
machine; those binaries (and a trace-capable machine to run them) are not
reproducible here, so this package provides seeded synthetic models that
reproduce each benchmark's *role* in the evaluation: its reference density,
cache behaviour against the two Table 1 hierarchies, branch predictability
and instruction-level parallelism.  See DESIGN.md §2 for the substitution
argument and :mod:`repro.workloads.spec92` for the per-benchmark parameters.

:mod:`repro.workloads.parallel` provides the shared-memory kernels for the
Section 4.3 coherence case study.
"""

from repro.workloads.patterns import (
    AccessPattern,
    ConflictPattern,
    MixedPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
)
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.characterize import WorkloadProfile, characterize
from repro.workloads.wrongpath import (
    make_wrong_path_factory,
    spec92_wrong_path_factory,
)
from repro.workloads.spec92 import (
    FIGURE2_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SPEC92,
    spec92_workload,
)

__all__ = [
    "AccessPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "ConflictPattern",
    "PointerChasePattern",
    "MixedPattern",
    "SyntheticWorkload",
    "WorkloadSpec",
    "SPEC92",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "FIGURE2_BENCHMARKS",
    "spec92_workload",
    "WorkloadProfile",
    "characterize",
    "make_wrong_path_factory",
    "spec92_wrong_path_factory",
]
