"""Data-access patterns for the synthetic workloads.

Each pattern is a deterministic (seeded) address generator embodying one
memory-behaviour idiom; the SPEC92 models in :mod:`repro.workloads.spec92`
mix them to match each benchmark's role in the paper's evaluation.  The
crucial one for Figure 3 is :class:`ConflictPattern`: addresses spaced
exactly one small-direct-mapped-cache apart, which thrash the in-order
machine's 8KB direct-mapped L1 while co-existing happily in the
out-of-order machine's 32KB 2-way L1 — su2cor's pathology.
"""

from __future__ import annotations

import random
from typing import List, Sequence


class AccessPattern:
    """Interface: a stream of byte addresses.

    ``serial`` marks patterns whose next address depends on the previous
    access's *data* (pointer chasing); the workload generator then wires a
    true register dependence between consecutive loads.
    """

    serial = False

    def next_address(self) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Restart the pattern from its initial state."""
        raise NotImplementedError


class SequentialPattern(AccessPattern):
    """A streaming sweep: base, base+stride, ... wrapping at extent.

    With a 32-byte line and a 4-byte stride this misses once per eight
    references while the sweep exceeds the cache — the classic
    vector/stencil behaviour of swm256 and tomcatv.
    """

    def __init__(self, base: int, extent: int, stride: int = 4) -> None:
        if extent <= 0 or stride <= 0:
            raise ValueError("extent and stride must be positive")
        self.base = base
        self.extent = extent
        self.stride = stride
        self._offset = 0

    def next_address(self) -> int:
        addr = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.extent
        return addr

    def reset(self) -> None:
        self._offset = 0


class StridedPattern(AccessPattern):
    """Several concurrent sequential streams, visited round-robin."""

    def __init__(self, bases: Sequence[int], extent: int, stride: int = 4) -> None:
        if not bases:
            raise ValueError("need at least one stream base")
        self.streams: List[SequentialPattern] = [
            SequentialPattern(base, extent, stride) for base in bases]
        self._turn = 0

    def next_address(self) -> int:
        stream = self.streams[self._turn]
        self._turn = (self._turn + 1) % len(self.streams)
        return stream.next_address()

    def reset(self) -> None:
        for stream in self.streams:
            stream.reset()
        self._turn = 0


class RandomPattern(AccessPattern):
    """Uniform random word accesses within a working set.

    The miss rate against a cache of size C is roughly
    ``max(0, 1 - C/working_set)`` at the line granularity — the knob the
    integer-benchmark models use.
    """

    def __init__(self, base: int, working_set: int, seed: int = 0,
                 align: int = 4) -> None:
        if working_set <= 0:
            raise ValueError("working set must be positive")
        self.base = base
        self.working_set = working_set
        self.align = align
        self.seed = seed
        self._rng = random.Random(seed)

    def next_address(self) -> int:
        offset = self._rng.randrange(0, self.working_set, self.align)
        return self.base + offset

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class ConflictPattern(AccessPattern):
    """Round-robin over lines spaced exactly *spacing* bytes apart.

    With ``spacing`` equal to a direct-mapped cache's size, all ``count``
    lines collide in one set and every access misses; a larger or
    set-associative cache holds them all.  Advancing ``sweep`` words per
    full round makes the conflict march through the array like a real
    blocked loop nest.
    """

    def __init__(self, base: int, count: int, spacing: int = 8 * 1024,
                 sweep: int = 4) -> None:
        if count < 2:
            raise ValueError("a conflict needs at least two lines")
        self.base = base
        self.count = count
        self.spacing = spacing
        self.sweep = sweep
        self._turn = 0
        self._offset = 0

    def next_address(self) -> int:
        addr = self.base + self._turn * self.spacing + self._offset
        self._turn += 1
        if self._turn == self.count:
            self._turn = 0
            self._offset = (self._offset + self.sweep) % self.spacing
        return addr

    def reset(self) -> None:
        self._turn = 0
        self._offset = 0


class PointerChasePattern(AccessPattern):
    """A random cyclic permutation walked one node per access.

    ``serial`` is True: each address models a pointer loaded by the
    previous access, so the workload generator chains the loads through a
    register — no two chase loads can overlap.
    """

    serial = True

    def __init__(self, base: int, nodes: int, node_size: int = 32,
                 seed: int = 0) -> None:
        if nodes < 2:
            raise ValueError("need at least two nodes to chase")
        rng = random.Random(seed)
        order = list(range(nodes))
        rng.shuffle(order)
        self._next = [0] * nodes
        for here, there in zip(order, order[1:] + order[:1]):
            self._next[here] = there
        self.base = base
        self.node_size = node_size
        self._start = order[0]
        self._current = self._start

    def next_address(self) -> int:
        addr = self.base + self._current * self.node_size
        self._current = self._next[self._current]
        return addr

    def reset(self) -> None:
        self._current = self._start


class MixedPattern(AccessPattern):
    """A weighted blend of patterns, chosen per access (seeded)."""

    def __init__(self, parts: Sequence, seed: int = 0) -> None:
        """*parts* is a sequence of (weight, pattern) pairs."""
        if not parts:
            raise ValueError("need at least one component pattern")
        self.parts = list(parts)
        self.seed = seed
        self._rng = random.Random(seed)
        self._total = sum(w for w, _ in self.parts)
        if self._total <= 0:
            raise ValueError("weights must sum to a positive value")
        # Serial blends are not supported: the chain dependence would be
        # ill-defined across components.
        if any(p.serial for _, p in self.parts):
            raise ValueError("serial patterns cannot be blended")

    def next_address(self) -> int:
        pick = self._rng.uniform(0, self._total)
        cumulative = 0.0
        for weight, pattern in self.parts:
            cumulative += weight
            if pick <= cumulative:
                return pattern.next_address()
        return self.parts[-1][1].next_address()

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        for _, pattern in self.parts:
            pattern.reset()
