"""Shared-memory kernels for the coherence case study (§4.3).

The paper's Figure 4 evaluates parallel applications whose names are
unreadable in the available scan; these six synthetic kernels span the
sharing idioms the Blizzard papers evaluate and sweep the axes that
determine the relative cost of the three access-control methods: the ratio
of shared to private references, the read/write mix, miss rates, and
invalidation traffic.  Each kernel is a factory ``kernel(proc, nprocs)``
returning that processor's event stream: :class:`MemRef` records
interleaved with :data:`BARRIER` sentinels at phase boundaries.

All kernels are seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, NamedTuple, Union

#: Phase-boundary sentinel understood by the multiprocessor simulator.
BARRIER = object()


class MemRef(NamedTuple):
    """One memory event: compute cycles, then a reference."""

    compute: int
    addr: int
    is_write: bool
    shared: bool


Event = Union[MemRef, object]
KernelFactory = Callable[[int, int], Iterator[Event]]

UNIT = 32                       # coherence unit / line size
SHARED_BASE = 0x0010_0000
PRIVATE_BASE = 0x1000_0000
PRIVATE_SPAN = 0x0010_0000      # 1MB of private space per processor


def _private(proc: int, offset: int) -> int:
    return PRIVATE_BASE + proc * PRIVATE_SPAN + offset


def _private_work(rng: random.Random, proc: int, count: int,
                  working_set: int = 8 * 1024) -> Iterator[MemRef]:
    """Private-data references: identical across methods (uninstrumented)."""
    for _ in range(count):
        offset = rng.randrange(0, working_set, 4)
        yield MemRef(rng.randint(1, 4), _private(proc, offset),
                     rng.random() < 0.3, shared=False)


def read_mostly(proc: int, nprocs: int, iterations: int = 12,
                blocks: int = 64, sweeps: int = 6,
                seed: int = 1) -> Iterator[Event]:
    """A shared table read hot by everyone; one writer updates a little.

    The classic case where per-reference checking hurts most: a flood of
    shared reads that are almost always cache hits with adequate
    protection (18 cycles each under reference checking, free under
    informing operations), plus enough repeat writes that the ECC method
    pays spurious page-protection faults.
    """
    rng = random.Random(seed * 10_007 + proc)
    for it in range(iterations):
        # Four rotating writers, one block each: update work is balanced,
        # so per-reference overheads are on every processor's critical
        # path instead of hiding under one writer's protocol stalls.
        writers = [(it * 4 + k) % nprocs for k in range(4)]
        for _sweep in range(sweeps):
            for b in range(blocks):
                yield MemRef(1, SHARED_BASE + b * UNIT, False, shared=True)
            yield from _private_work(rng, proc, 4)
        if proc in writers:
            victim = (it * 4 + writers.index(proc)) % blocks
            for rep in range(4):
                yield MemRef(2, SHARED_BASE + victim * UNIT + 4 * rep, True,
                             shared=True)
        yield BARRIER


def producer_consumer(proc: int, nprocs: int, iterations: int = 14,
                      blocks: int = 8, seed: int = 2) -> Iterator[Event]:
    """Each processor fills its region (many writes per block), then reads
    its neighbour's region repeatedly: one upgrade and one fetch per block,
    plus a stream of cheap repeat references that separate the methods."""
    rng = random.Random(seed * 10_007 + proc)
    region = SHARED_BASE + proc * blocks * UNIT
    neighbour = SHARED_BASE + ((proc + 1) % nprocs) * blocks * UNIT
    for _ in range(iterations):
        for b in range(blocks):
            for word in range(10):  # repeat writes: only the first upgrades
                yield MemRef(1, region + b * UNIT + 4 * (word % 8), True,
                             shared=True)
            yield from _private_work(rng, proc, 2)
        yield BARRIER
        for _sweep in range(30):
            for b in range(blocks):
                yield MemRef(1, neighbour + b * UNIT, False, shared=True)
            yield from _private_work(rng, proc, 2)
        yield BARRIER


def migratory(proc: int, nprocs: int, iterations: int = 20,
              blocks: int = 4, seed: int = 3) -> Iterator[Event]:
    """Concurrent migratory chains: every processor read-modify-writes a
    block set that a different processor held last iteration, then works
    on it locally for a while (repeat hits)."""
    rng = random.Random(seed * 10_007 + proc)
    for it in range(iterations):
        chain = (proc + it) % nprocs
        base = SHARED_BASE + chain * blocks * UNIT
        for b in range(blocks):
            addr = base + b * UNIT
            yield MemRef(2, addr, False, shared=True)
            for word in range(4):
                yield MemRef(1, addr + 4 * word, True, shared=True)
        for _rep in range(30):  # local reuse of the migrated data
            for b in range(blocks):
                yield MemRef(1, base + b * UNIT, False, shared=True)
            yield from _private_work(rng, proc, 3)
        yield BARRIER


def all_to_all(proc: int, nprocs: int, iterations: int = 12,
               seed: int = 4) -> Iterator[Event]:
    """Transpose-like: write your row, then read one block of every row."""
    rng = random.Random(seed * 10_007 + proc)
    row_blocks = 4
    my_row = SHARED_BASE + proc * nprocs * UNIT
    for it in range(iterations):
        for b in range(row_blocks):
            for word in range(10):
                yield MemRef(1, my_row + b * UNIT + 4 * (word % 8), True,
                             shared=True)
            yield from _private_work(rng, proc, 1)
        yield BARRIER
        # Fetch a few remote blocks, then reuse them heavily.
        partners = [(proc + k + 1) % nprocs for k in range(row_blocks)]
        for _sweep in range(20):
            for other in partners:
                addr = SHARED_BASE + (other * nprocs + proc % row_blocks) * UNIT
                yield MemRef(1, addr, False, shared=True)
            yield from _private_work(rng, proc, 4)
        yield BARRIER


def false_sharing(proc: int, nprocs: int, iterations: int = 20,
                  blocks: int = 8, seed: int = 5) -> Iterator[Event]:
    """Distinct words of the same coherence units written by all."""
    rng = random.Random(seed * 10_007 + proc)
    word = (proc * 4) % UNIT
    counters = SHARED_BASE + 0x8000 + proc * blocks * UNIT  # padded: no sharing
    for _ in range(iterations):
        for b in range(blocks):
            yield from _private_work(rng, proc, 2)
            yield MemRef(2, SHARED_BASE + b * UNIT + word, True, shared=True)
            for rep in range(30):  # padded per-processor counters: all hits
                yield MemRef(1, counters + (b % blocks) * UNIT, False,
                             shared=True)
        yield BARRIER


def mixed(proc: int, nprocs: int, iterations: int = 16,
          seed: int = 6) -> Iterator[Event]:
    """A blend: shared read-mostly table, private work, occasional RMW."""
    rng = random.Random(seed * 10_007 + proc)
    table_blocks = 48
    for it in range(iterations):
        for _ in range(150):
            yield from _private_work(rng, proc, 1)
            block = rng.randrange(table_blocks)
            yield MemRef(1, SHARED_BASE + block * UNIT, False, shared=True)
        # Two rotating writers per iteration update one block each.
        if proc in ((it * 2) % nprocs, (it * 2 + 1) % nprocs):
            victim = (it * 2 + proc) % table_blocks
            addr = SHARED_BASE + victim * UNIT
            yield MemRef(1, addr, False, shared=True)
            yield MemRef(1, addr, True, shared=True)
        yield BARRIER


#: Figure 4's application set (synthetic stand-ins; see module docstring).
PARALLEL_KERNELS: Dict[str, KernelFactory] = {
    "read_mostly": read_mostly,
    "producer_consumer": producer_consumer,
    "migratory": migratory,
    "all_to_all": all_to_all,
    "false_sharing": false_sharing,
    "mixed": mixed,
}
