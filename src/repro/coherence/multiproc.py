"""TangoLite-like multiprocessor timing simulation for the §4.3 study.

Each of the 16 processors is a discrete-event process executing a stream of
:class:`~repro.workloads.parallel.MemRef` events (compute cycles followed by
one memory reference) with barrier synchronisation between phases.  Every
processor has private two-level caches with Table 2 penalties; *shared*
references additionally pass through the selected access-control method,
which charges its Table 2 costs and, when the protection level is
inadequate, drives the directory protocol (message latencies charged to the
requester).

Method semantics:

* **reference checking** — an 18-cycle lookup on every shared reference,
  hit or miss.
* **ECC** — nothing on valid accesses; a read to an INVALID block takes a
  250-cycle fault; a write to a block on a page holding any READONLY data
  takes a 230-cycle fault (page-granularity write protection — including
  *spurious* faults when the written block itself is writable).
* **informing** — a 33-cycle lookup in the miss handler, only on primary
  cache misses (and on writes that need a state upgrade, which the scheme
  catches because upgrades change the line's state).  Invalidated blocks
  are evicted from the victim's caches, so the next access is guaranteed
  to miss and re-check — the Section 3.3 requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.coherence.params import (
    AccessControlMethod,
    CoherenceMachineParams,
    METHOD_COSTS,
    MethodCosts,
)
from repro.coherence.protocol import BlockState, DirectoryProtocol
from repro.memory.cache import Cache
from repro.memory.config import CacheConfig
from repro.sim import Simulator
from repro.workloads.parallel import BARRIER, MemRef


@dataclass
class ProcessorStats:
    """Per-processor cycle and event accounting."""

    compute_cycles: int = 0
    cache_cycles: int = 0
    access_control_cycles: int = 0
    protocol_cycles: int = 0
    references: int = 0
    shared_references: int = 0
    l1_misses: int = 0
    handler_invocations: int = 0
    faults: int = 0
    finish_time: int = 0

    @property
    def total_cycles(self) -> int:
        return (self.compute_cycles + self.cache_cycles
                + self.access_control_cycles + self.protocol_cycles)


@dataclass
class CoherenceResult:
    """Outcome of one method/workload simulation."""

    method: AccessControlMethod
    workload: str
    execution_time: int
    processors: List[ProcessorStats] = field(default_factory=list)
    remote_invalidations: int = 0

    @property
    def total(self) -> ProcessorStats:
        agg = ProcessorStats()
        for proc in self.processors:
            agg.compute_cycles += proc.compute_cycles
            agg.cache_cycles += proc.cache_cycles
            agg.access_control_cycles += proc.access_control_cycles
            agg.protocol_cycles += proc.protocol_cycles
            agg.references += proc.references
            agg.shared_references += proc.shared_references
            agg.l1_misses += proc.l1_misses
            agg.handler_invocations += proc.handler_invocations
            agg.faults += proc.faults
        return agg


class MultiprocessorSim:
    """N processors, private caches, one directory, one access method."""

    def __init__(
        self,
        machine: CoherenceMachineParams,
        method: AccessControlMethod,
        costs: Optional[MethodCosts] = None,
    ) -> None:
        self.machine = machine
        self.method = method
        self.costs = costs if costs is not None else METHOD_COSTS[method]
        self.sim = Simulator()
        self.protocol = DirectoryProtocol(
            machine.processors, machine.message_latency,
            machine.coherence_unit, machine.page_size)
        self.protocol.eviction_hooks.append(self._evict)
        line = machine.coherence_unit
        self._l1 = [Cache(CacheConfig(machine.l1_size, machine.l1_assoc, line))
                    for _ in range(machine.processors)]
        self._l2 = [Cache(CacheConfig(machine.l2_size, machine.l2_assoc, line))
                    for _ in range(machine.processors)]
        self.stats = [ProcessorStats() for _ in range(machine.processors)]

    # -- protocol callback ---------------------------------------------------
    def _evict(self, proc: int, block: int) -> None:
        addr = block * self.machine.coherence_unit
        self._l1[proc].invalidate(addr)
        self._l2[proc].invalidate(addr)

    # -- one memory reference ---------------------------------------------------
    def _access(self, proc: int, ref: MemRef) -> int:
        """Return the cycles this reference costs beyond its compute."""
        stats = self.stats[proc]
        machine = self.machine
        costs = self.costs
        stats.references += 1
        cycles = 1  # the access itself

        l1 = self._l1[proc]
        l1_hit = l1.probe(ref.addr, is_write=ref.is_write)
        if not l1_hit:
            stats.l1_misses += 1
            cycles += machine.l1_miss_penalty
            if not self._l2[proc].probe(ref.addr, is_write=ref.is_write):
                cycles += machine.l2_miss_penalty
                self._l2[proc].fill(ref.addr)
            victim = l1.fill(ref.addr)
            if victim is not None and victim.dirty:
                self._l2[proc].probe(
                    victim.line_addr * machine.coherence_unit, is_write=True)
        stats.cache_cycles += cycles - 1
        stats.compute_cycles += 1

        if not ref.shared:
            return cycles

        stats.shared_references += 1
        protocol = self.protocol
        block = protocol.block_of(ref.addr)
        state = protocol.state(proc, block)
        adequate = (state is BlockState.READWRITE
                    or (not ref.is_write and state is BlockState.READONLY))
        method = self.method

        if method is AccessControlMethod.REFERENCE_CHECKING:
            stats.access_control_cycles += costs.lookup
            cycles += costs.lookup
            if not adequate:
                cycles += self._protocol_action(proc, block, ref.is_write,
                                                stats)
        elif method is AccessControlMethod.INFORMING:
            # The handler runs on a primary miss; writes needing an
            # upgrade are caught because they change the line's state.
            triggered = (not l1_hit) or (ref.is_write and not adequate)
            if triggered:
                stats.handler_invocations += 1
                stats.access_control_cycles += costs.lookup
                cycles += costs.lookup
                if not adequate:
                    cycles += self._protocol_action(proc, block,
                                                    ref.is_write, stats)
        else:  # ECC
            if ref.is_write:
                spurious_page_fault = protocol.page_has_readonly(
                    proc, ref.addr)
                if not adequate or spurious_page_fault:
                    stats.faults += 1
                    stats.access_control_cycles += (
                        costs.write_readonly_page_fault)
                    cycles += costs.write_readonly_page_fault
                    if not adequate:
                        cycles += self._protocol_action(proc, block, True,
                                                        stats)
            else:
                if not adequate:
                    stats.faults += 1
                    stats.access_control_cycles += costs.read_invalid_fault
                    cycles += costs.read_invalid_fault
                    cycles += self._protocol_action(proc, block, False,
                                                    stats)
        return cycles

    def _protocol_action(self, proc: int, block: int, is_write: bool,
                         stats: ProcessorStats) -> int:
        """Upgrade protection; return the cycles charged to the requester."""
        if is_write:
            message_cycles = self.protocol.acquire_write(proc, block)
        else:
            message_cycles = self.protocol.acquire_read(proc, block)
        change = self.costs.state_change
        stats.access_control_cycles += change
        stats.protocol_cycles += message_cycles
        return change + message_cycles

    # -- processes -------------------------------------------------------------
    def _processor(self, proc: int, stream: Iterator, barrier):
        stats = self.stats[proc]
        for event in stream:
            if event is BARRIER:
                yield barrier.wait()
                continue
            cost = event.compute + self._access(proc, event)
            stats.compute_cycles += event.compute
            if cost:
                yield cost
        stats.finish_time = self.sim.now

    def run(self, workload_factory: Callable[[int, int], Iterator],
            name: str = "workload") -> CoherenceResult:
        """Spawn one process per processor and run to completion."""
        nprocs = self.machine.processors
        barrier = self.sim.barrier(nprocs)
        for proc in range(nprocs):
            stream = workload_factory(proc, nprocs)
            self.sim.spawn(self._processor(proc, stream, barrier))
        finish = self.sim.run()
        return CoherenceResult(
            method=self.method,
            workload=name,
            execution_time=finish,
            processors=self.stats,
            remote_invalidations=self.protocol.remote_invalidations,
        )


def run_access_control_experiment(
    workload_factory: Callable[[int, int], Iterator],
    method: AccessControlMethod,
    machine: Optional[CoherenceMachineParams] = None,
    name: str = "workload",
) -> CoherenceResult:
    """Convenience wrapper: fresh simulator, one run."""
    sim = MultiprocessorSim(machine or CoherenceMachineParams(), method)
    return sim.run(workload_factory, name)
