"""Table 2: machine and per-method parameters for the access-control study."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessControlMethod(enum.Enum):
    """The three access-control implementations compared in Figure 4."""

    REFERENCE_CHECKING = "reference_checking"  # Blizzard-S-like
    ECC = "ecc"                                # Blizzard-E-like
    INFORMING = "informing"                    # this paper


@dataclass(frozen=True)
class CoherenceMachineParams:
    """Machine half of Table 2."""

    processors: int = 16
    l1_size: int = 16 * 1024          # per processor
    l1_assoc: int = 2
    l1_miss_penalty: int = 10         # cycles, L1 -> L2
    l2_size: int = 128 * 1024         # per processor
    l2_assoc: int = 2
    l2_miss_penalty: int = 25         # cycles, L2 -> local memory
    coherence_unit: int = 32          # bytes
    message_latency: int = 900        # cycles, one-way
    page_size: int = 4 * 1024         # for the ECC method's write faults

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.message_latency < 0:
            raise ValueError("message latency cannot be negative")


TABLE2_MACHINE = CoherenceMachineParams()


@dataclass(frozen=True)
class MethodCosts:
    """Per-method overhead constants (Table 2, lower three rows).

    ``lookup`` is the cost of consulting the protection-state table when
    the method's trigger fires; ``state_change`` is the extra user-level
    work when the protection level is inadequate and must change.  The ECC
    method has no lookup on its trigger — the fault itself carries the
    cost: ``read_invalid_fault`` for a read to a bad-ECC (invalid) block
    and ``write_readonly_page_fault`` for a write to a block on a page
    holding any READONLY data.
    """

    lookup: int = 0
    state_change: int = 25
    read_invalid_fault: int = 0
    write_readonly_page_fault: int = 0


METHOD_COSTS = {
    # 18-cycle lookup on every shared reference; 25-cycle state change.
    AccessControlMethod.REFERENCE_CHECKING: MethodCosts(
        lookup=18, state_change=25),
    # 250 cycles for a read to an invalid block; 230 cycles for writes to a
    # block on a page with any READONLY data.
    AccessControlMethod.ECC: MethodCosts(
        lookup=0, state_change=25,
        read_invalid_fault=250, write_readonly_page_fault=230),
    # 33-cycle lookup on a miss (6-cycle pipeline delay + 9 handler cycles
    # to determine load vs store + the table probe); 25-cycle state change.
    AccessControlMethod.INFORMING: MethodCosts(
        lookup=33, state_change=25),
}
