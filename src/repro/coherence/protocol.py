"""Directory-based invalidation protocol over 32-byte coherence units.

The protocol keeps, per block, the per-processor protection state the
user-level handlers maintain (INVALID / READONLY / READWRITE, §4.3.1) and a
full-map directory at the block's home node.  Remote operations are
performed with user-level DMA — they do not interrupt the remote processor
(the paper's assumption) — so their cost to the *requester* is purely
message latency:

* acquiring READONLY: request to home + data back (2 hops), plus a
  downgrade round trip when another processor holds the block READWRITE;
* acquiring READWRITE: request + grant (2 hops), plus an invalidation
  round trip when any other processor holds a copy (invalidations go out
  in parallel, so one round trip covers them all).

A processor whose copy is invalidated (or revoked) has the block evicted
from its caches, so — crucially for the informing method — its next access
*will* miss and run the access-control handler.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Set, Tuple


class BlockState(enum.Enum):
    INVALID = 0
    READONLY = 1
    READWRITE = 2


class DirectoryProtocol:
    """Protection-state table plus full-map directory."""

    def __init__(self, processors: int, message_latency: int,
                 coherence_unit: int = 32, page_size: int = 4096) -> None:
        self.processors = processors
        self.message_latency = message_latency
        self.coherence_unit = coherence_unit
        self.page_size = page_size
        self._blocks_per_page = max(1, page_size // coherence_unit)
        self._state: Dict[Tuple[int, int], BlockState] = {}
        self._sharers: Dict[int, Set[int]] = {}
        self._owner: Dict[int, Optional[int]] = {}
        # (proc, page) -> number of READONLY blocks, for the ECC write rule.
        self._ro_count: Dict[Tuple[int, int], int] = {}
        #: called with (processor, block) whenever a copy is revoked, so
        #: the simulator can evict it from that processor's caches.
        self.eviction_hooks: List[Callable[[int, int], None]] = []
        self.remote_invalidations = 0
        self.downgrades = 0

    def block_of(self, addr: int) -> int:
        return addr // self.coherence_unit

    def state(self, proc: int, block: int) -> BlockState:
        return self._state.get((proc, block), BlockState.INVALID)

    def sharers(self, block: int) -> Set[int]:
        return set(self._sharers.get(block, ()))

    def owner(self, block: int) -> Optional[int]:
        return self._owner.get(block)

    def _set_state(self, proc: int, block: int, new: BlockState) -> None:
        old = self._state.get((proc, block), BlockState.INVALID)
        if old is new:
            return
        page = block // self._blocks_per_page
        if old is BlockState.READONLY:
            self._ro_count[(proc, page)] -= 1
        if new is BlockState.READONLY:
            self._ro_count[(proc, page)] = (
                self._ro_count.get((proc, page), 0) + 1)
        self._state[(proc, block)] = new

    # -- state transitions ---------------------------------------------------
    def acquire_read(self, proc: int, block: int) -> int:
        """Give *proc* READONLY access; return requester message cycles."""
        if self.state(proc, block) is not BlockState.INVALID:
            return 0
        hops = 2  # request to home + data back
        owner = self._owner.get(block)
        if owner is not None and owner != proc:
            # Downgrade the READWRITE owner to READONLY first.
            self._set_state(owner, block, BlockState.READONLY)
            self._owner[block] = None
            self._sharers.setdefault(block, set()).add(owner)
            self.downgrades += 1
            hops += 2
        self._set_state(proc, block, BlockState.READONLY)
        self._sharers.setdefault(block, set()).add(proc)
        return hops * self.message_latency

    def acquire_write(self, proc: int, block: int) -> int:
        """Give *proc* READWRITE access; return requester message cycles."""
        if self.state(proc, block) is BlockState.READWRITE:
            return 0
        hops = 2  # request + grant
        others = self._sharers.get(block, set()) - {proc}
        owner = self._owner.get(block)
        if owner is not None and owner != proc:
            others = others | {owner}
        if others:
            # Parallel invalidations + acks: one extra round trip.
            hops += 2
            for other in others:
                self._revoke(other, block)
        self._sharers[block] = {proc}
        self._owner[block] = proc
        self._set_state(proc, block, BlockState.READWRITE)
        return hops * self.message_latency

    def _revoke(self, proc: int, block: int) -> None:
        self._set_state(proc, block, BlockState.INVALID)
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(proc)
        if self._owner.get(block) == proc:
            self._owner[block] = None
        self.remote_invalidations += 1
        for hook in self.eviction_hooks:
            hook(proc, block)

    # -- queries used by the ECC write-fault rule ------------------------------
    def page_has_readonly(self, proc: int, addr: int) -> bool:
        """Does *proc*'s page containing *addr* hold any READONLY block?

        The Blizzard-E write path protects whole pages; a write to a block
        on a page with any READONLY data faults even if the written block
        itself is READWRITE.
        """
        page = addr // self.page_size
        return self._ro_count.get((proc, page), 0) > 0
