"""Case study: cache coherence with fine-grained access control (§4.3).

A TangoLite-style discrete-event multiprocessor simulation compares three
software access-control methods under identical machine assumptions
(Table 2):

* **reference checking** (Blizzard-S-like) — a protection-state lookup is
  instrumented onto *every* potentially-shared reference;
* **ECC faults** (Blizzard-E-like) — invalid blocks are poisoned with bad
  ECC; reads fault expensively, writes are caught by page protection;
* **informing memory operations** — the protection check runs in a cache
  miss handler, so it costs nothing on hits and a short handler on misses.
"""

from repro.coherence.params import (
    AccessControlMethod,
    CoherenceMachineParams,
    METHOD_COSTS,
    MethodCosts,
    TABLE2_MACHINE,
)
from repro.coherence.protocol import BlockState, DirectoryProtocol
from repro.coherence.multiproc import (
    CoherenceResult,
    MultiprocessorSim,
    run_access_control_experiment,
)

__all__ = [
    "AccessControlMethod",
    "CoherenceMachineParams",
    "MethodCosts",
    "METHOD_COSTS",
    "TABLE2_MACHINE",
    "BlockState",
    "DirectoryProtocol",
    "MultiprocessorSim",
    "CoherenceResult",
    "run_access_control_experiment",
]
