"""The informing engine: MHAR/MHRR semantics shared by both cores.

The cores consult one :class:`InformingEngine` per run.  On a primary
data-cache miss by an informing reference the core asks the engine for the
handler body to inject; the engine implements the MHAR-disable convention
(``MHAR == 0`` → no trap), dispatches single vs unique handlers, and keeps
the invocation statistics the experiments report.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.handlers import SINGLE_HANDLER_BASE_PC
from repro.core.mechanisms import InformingConfig, Mechanism, return_pc
from repro.isa.instructions import DynInst


class InformingEngine:
    """Run-time informing-operation state.

    Args:
        config: the informing configuration.
        observer: optional Python-level hook called on every handler
            invocation with the missing reference — the zero-cost
            measurement channel tests and applications use alongside the
            modelled handler cost.
    """

    def __init__(self, config: InformingConfig,
                 observer: Optional[Callable[[DynInst], None]] = None) -> None:
        self.config = config
        self.observer = observer
        self.invocations = 0
        self.injected_instructions = 0
        self.enabled = True  # cleared models writing 0 into the MHAR
        # The architectural register pair of Section 2.2.  MHAR == 0 is the
        # hardware disable convention; an active configuration points it at
        # the (single-handler) dispatch target.  The MHRR latches the
        # return PC at each handler entry.
        self.mhar = SINGLE_HANDLER_BASE_PC if config.active else 0
        self.mhrr = 0
        # Optional runtime invariant checker (repro.sanitize).
        self._san = None
        # Optional observer (repro.obs), same attachment pattern.
        self._obs = None

    # -- run-time control (what user code would do by writing the MHAR) ----
    def disable(self) -> None:
        """Model ``MHAR <- 0``: misses stop trapping."""
        self.enabled = False
        self.mhar = 0

    def enable(self) -> None:
        self.enabled = True
        if self.config.active:
            self.mhar = SINGLE_HANDLER_BASE_PC

    # -- core-facing API ----------------------------------------------------
    def wants(self, inst: DynInst) -> bool:
        """Should a miss by *inst* invoke the informing mechanism?

        Handler code itself never re-traps (the paper's handlers run with
        trapping implicitly disabled to avoid recursion), and prefetches
        are non-binding hints with no hit/miss architectural outcome.
        """
        if not self.enabled or not self.config.active:
            return False
        return inst.informing and not inst.handler_code

    def on_miss(self, inst: DynInst) -> Optional[List[DynInst]]:
        """Return the handler body to inject for a miss by *inst*.

        Returns None when the mechanism is inactive for this reference.
        """
        if not self.wants(inst):
            return None
        self.invocations += 1
        self.mhrr = return_pc(inst.pc)
        if self.observer is not None:
            self.observer(inst)
        body = self.config.handler.instructions(inst)
        self.injected_instructions += len(body)
        if self._obs is not None:
            self._obs.on_trap_fire(inst, len(body))
        return body

    @property
    def mechanism(self) -> Mechanism:
        return self.config.mechanism
