"""Informing-mechanism selection (Sections 2 and 3.2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.handlers import HandlerSpec

#: Fixed instruction width of the modelled ISA (a MIPS-like RISC).
INSTRUCTION_BYTES = 4


def return_pc(pc: int) -> int:
    """The MHRR value for an informing reference at *pc*.

    Section 2.2: on a miss trap the MHRR latches the address of the
    instruction *following* the informing memory operation, so the
    handler's terminating jump resumes execution after the reference.
    """
    return pc + INSTRUCTION_BYTES


class Mechanism(enum.Enum):
    """How software observes the hit/miss outcome of a reference."""

    NONE = "none"
    #: Cache-outcome condition code: an explicit BLMISS instruction after
    #: each reference of interest tests user-visible hit/miss state
    #: (Section 2.1).  Costs one instruction per reference even on hits.
    CONDITION_CODE = "condition_code"
    #: Low-overhead cache-miss trap via MHAR/MHRR (Section 2.2).  Zero
    #: instruction overhead on hits with a single handler; one MHAR_SET per
    #: reference when every static reference wants its own handler.
    TRAP = "trap"


class TrapStyle(enum.Enum):
    """Out-of-order trap handling (Section 3.2)."""

    #: Treat the implicit branch-and-link like a mispredicted branch:
    #: redirect as soon as the miss is detected.  Costs shadow rename
    #: state per in-flight informing op.
    BRANCH_LIKE = "branch_like"
    #: Treat it like an exception: wait until the informing op reaches the
    #: head of the reorder buffer, then flush.  Cheap hardware, slower
    #: handler invocation (the paper measured 7-9% on compress).
    EXCEPTION_LIKE = "exception_like"


@dataclass(frozen=True)
class InformingConfig:
    """Complete informing-operation configuration for one simulation.

    Attributes:
        mechanism: the architectural mechanism (or NONE for the baseline).
        trap_style: branch-like vs exception-like handling on the
            out-of-order core; ignored by the in-order core, which uses
            its replay-trap mechanism (Section 3.1).
        handler: the miss-handler code generator; None with TRAP models
            ``MHAR == 0`` (trapping disabled — identical to NONE timing
            but the hardware is present).
        unique_handlers: give every static reference its own handler.
            With TRAP this inserts an MHAR_SET before every informing
            reference; with CONDITION_CODE the check instruction already
            encodes a per-reference target, so no extra instruction is
            added beyond the check itself.
    """

    mechanism: Mechanism = Mechanism.NONE
    trap_style: TrapStyle = TrapStyle.BRANCH_LIKE
    handler: Optional[HandlerSpec] = None
    unique_handlers: bool = False

    def __post_init__(self) -> None:
        if self.mechanism is Mechanism.NONE and self.handler is not None:
            raise ValueError("a handler requires an informing mechanism")
        if self.mechanism is Mechanism.CONDITION_CODE and self.handler is None:
            raise ValueError("the condition-code scheme requires a handler")

    @property
    def active(self) -> bool:
        """True when misses will actually invoke a handler."""
        return self.mechanism is not Mechanism.NONE and self.handler is not None

    @property
    def adds_per_reference_instruction(self) -> bool:
        """One extra instruction per informing reference, even on hits."""
        if self.mechanism is Mechanism.CONDITION_CODE:
            return True
        return self.mechanism is Mechanism.TRAP and self.unique_handlers
