"""Stream rewriters for the explicit per-reference instructions.

Two of the paper's usage modes add one instruction per informing reference
to the instruction stream even when every reference hits:

* the **condition-code scheme** compiles a ``BLMISS`` (branch-and-link on
  the cache-outcome condition code) *after* each reference (Section 2.1);
* **unique trap handlers** require an ``MHAR_SET`` *before* each reference
  to point the MHAR at that reference's handler (Section 2.2).

Both rewriters are lazy generators so multi-hundred-thousand-instruction
traces never materialise.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.isa.instructions import DynInst, mhar_set
from repro.isa.opclass import OpClass


def _is_informing_ref(inst: DynInst) -> bool:
    return (inst.informing and not inst.handler_code
            and inst.op in (OpClass.LOAD, OpClass.STORE))


def add_cc_checks(stream: Iterable[DynInst]) -> Iterator[DynInst]:
    """Insert a BLMISS after every informing load/store.

    The check instruction is data-dependent on the preceding reference's
    hit/miss outcome; the cores resolve that dependence when the access
    executes.  Its pc is derived from the reference's pc so each static
    reference has a distinct check (and therefore a distinct handler
    target, which is the condition-code scheme's strength).
    """
    # Locals bound outside the loop: these rewriters sit between the
    # workload generator and the core's fetch path, so their per-
    # instruction overhead multiplies the whole stream.
    dyninst = DynInst
    op_blmiss = OpClass.BLMISS
    op_load = OpClass.LOAD
    op_store = OpClass.STORE
    for inst in stream:
        yield inst
        if (inst.informing and not inst.handler_code
                and (inst.op is op_load or inst.op is op_store)):
            yield dyninst(op_blmiss, pc=inst.pc + 1)


def add_mhar_sets(stream: Iterable[DynInst]) -> Iterator[DynInst]:
    """Insert an MHAR_SET before every informing load/store.

    Models pointing the MHAR at a per-reference handler.  The set
    instruction is an ordinary single-cycle integer op with no register
    dependences (the target address is pc-relative, footnote 2 of the
    paper), so out-of-order cores can overlap it freely — the effect the
    paper highlights for alvinn and mdljsp2.
    """
    op_load = OpClass.LOAD
    op_store = OpClass.STORE
    for inst in stream:
        if (inst.informing and not inst.handler_code
                and (inst.op is op_load or inst.op is op_store)):
            yield mhar_set(pc=inst.pc + 2)
        yield inst
