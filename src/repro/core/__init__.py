"""Informing memory operations — the paper's primary contribution.

This package defines the architectural surface of informing memory
operations independently of any particular core:

* :mod:`repro.core.mechanisms` — which mechanism is in effect
  (condition code vs. low-overhead trap, Section 2) and, for the trap on an
  out-of-order machine, whether it is handled like a mispredicted branch or
  like an exception (Section 3.2).
* :mod:`repro.core.handlers` — miss-handler code: the paper's generic
  chained handlers (1/10/100 instructions, single vs. unique per static
  reference) and callback handlers for the software clients in
  :mod:`repro.apps`.
* :mod:`repro.core.engine` — the MHAR/MHRR state machine the cores invoke
  on a primary data-cache miss.
* :mod:`repro.core.instrumentation` — stream rewriters that add the
  explicit per-reference instructions (a ``BLMISS`` check after each
  reference for the condition-code scheme, an ``MHAR_SET`` before each
  reference for unique trap handlers).
"""

from repro.core.mechanisms import InformingConfig, Mechanism, TrapStyle
from repro.core.handlers import (
    CallbackHandler,
    GenericHandler,
    HandlerSpec,
    SINGLE_HANDLER_BASE_PC,
)
from repro.core.engine import InformingEngine
from repro.core.instrumentation import add_cc_checks, add_mhar_sets

__all__ = [
    "InformingConfig",
    "Mechanism",
    "TrapStyle",
    "HandlerSpec",
    "GenericHandler",
    "CallbackHandler",
    "SINGLE_HANDLER_BASE_PC",
    "InformingEngine",
    "add_cc_checks",
    "add_mhar_sets",
]
