"""Miss-handler code generators.

A handler is the user code an informing operation runs on a primary-cache
miss.  The paper's overhead study (Section 4.2) uses *generic* handlers of
1, 10 and 100 instructions, pessimistically all data-dependent on one
another, in two flavours:

* **single** — one handler shared by every reference.  Its instructions use
  one fixed register, and the first instruction *reads* that register, so
  each invocation depends on the previous one (the paper's model; this is
  why su2cor sometimes runs *slower* with a single handler than with
  unique handlers — Figure 3's discussion).
* **unique** — a handler per static reference.  The first instruction
  writes its register without reading it, so invocations are mutually
  independent (register renaming breaks any false sharing).

Handlers end with an MHRR jump back to the interrupted stream; the paper's
"n-instruction handler" counts the n data-dependent instructions, the
return jump being part of the mechanism.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.isa.instructions import DynInst, mhrr_jump
from repro.isa.opclass import OpClass
from repro.isa.registers import HANDLER_REG_BASE

#: Code region where handler instructions live (for I-cache modelling).
#: The bases are offset half-way into the smallest I-cache's set space so
#: handler lines do not alias the application's hot loop (an
#: instrumentation tool lays handlers out exactly this way).
SINGLE_HANDLER_BASE_PC = 0x0040_1000
#: Unique handlers are packed contiguously from this base, the way a
#: compiler or instrumentation tool would emit them — so they share
#: I-cache lines like any other code.
UNIQUE_HANDLER_REGION = 0x0080_1000


class HandlerSpec:
    """Interface: produce the dynamic handler body for one invocation."""

    def instructions(self, ref: DynInst) -> List[DynInst]:
        """Handler body for a miss by *ref*, ending in the MHRR jump."""
        raise NotImplementedError

    @property
    def length(self) -> int:
        """Nominal handler length (excluding the return jump), if fixed."""
        raise NotImplementedError


class GenericHandler(HandlerSpec):
    """The paper's generic chained handler.

    Args:
        n_instructions: handler length (1, 10 or 100 in the paper).
        unique: per-static-reference handlers (independent invocations)
            rather than one shared handler (chained invocations).
        chained: within-handler data dependence.  True reproduces the
            paper's pessimistic model (an n-instruction handler takes n
            cycles); False is the ablation knob.
    """

    def __init__(self, n_instructions: int, unique: bool = False,
                 chained: bool = True) -> None:
        if n_instructions < 1:
            raise ValueError("handler needs at least one instruction")
        self.n_instructions = n_instructions
        self.unique = unique
        self.chained = chained
        self.reg = HANDLER_REG_BASE
        self._bases = {}  # ref pc -> packed handler base (unique mode)

    @property
    def length(self) -> int:
        return self.n_instructions

    def base_pc(self, ref: DynInst) -> int:
        if not self.unique:
            return SINGLE_HANDLER_BASE_PC
        base = self._bases.get(ref.pc)
        if base is None:
            # Allocate the next packed slot: body + return jump.
            base = (UNIQUE_HANDLER_REGION
                    + len(self._bases) * 4 * (self.n_instructions + 1))
            self._bases[ref.pc] = base
        return base

    def instructions(self, ref: DynInst) -> List[DynInst]:
        base = self.base_pc(ref)
        reg = self.reg
        body: List[DynInst] = []
        for i in range(self.n_instructions):
            if i == 0:
                # A single handler's first instruction reads the register
                # the *previous invocation* left behind; a unique handler
                # starts a fresh dependence chain.
                srcs = (reg,) if not self.unique else ()
            else:
                srcs = (reg,) if self.chained else ()
            body.append(DynInst(OpClass.IALU, dest=reg, srcs=srcs,
                                pc=base + 4 * i, informing=False,
                                handler_code=True))
        body.append(mhrr_jump(pc=base + 4 * self.n_instructions))
        return body


class CallbackHandler(HandlerSpec):
    """A handler backed by a Python callback — the application hook.

    The callback observes the missing reference (this is where the software
    clients in :mod:`repro.apps` count misses, update profiles, launch
    prefetches...) and returns the *modelled* handler body: the DynInst
    sequence whose cost the simulation should charge.  Returning None
    injects ``cost_model.instructions(ref)`` from the fallback generic
    handler, or nothing when no fallback is given.

    The returned body need not end with an MHRR jump; one is appended if
    missing so the stream frame always returns cleanly.
    """

    def __init__(
        self,
        callback: Callable[[DynInst], Optional[Sequence[DynInst]]],
        cost_model: Optional[HandlerSpec] = None,
    ) -> None:
        self.callback = callback
        self.cost_model = cost_model
        self.invocations = 0

    @property
    def length(self) -> int:
        if self.cost_model is not None:
            return self.cost_model.length
        raise AttributeError("callback handler has no fixed length")

    def instructions(self, ref: DynInst) -> List[DynInst]:
        self.invocations += 1
        body = self.callback(ref)
        if body is None:
            if self.cost_model is None:
                return [mhrr_jump(pc=SINGLE_HANDLER_BASE_PC)]
            return self.cost_model.instructions(ref)
        body = list(body)
        if not body or body[-1].op is not OpClass.MHRR_JUMP:
            next_pc = (body[-1].pc + 4) if body else SINGLE_HANDLER_BASE_PC
            body.append(mhrr_jump(pc=next_pc))
        return body
