"""Decode-once stream layer: DynInst streams as flat numpy columns.

The interp backend pays the workload generator, the ``DynInst``
constructor and the ``StreamStack`` buffering once *per grid cell* —
ten times per benchmark in a figure2 grid, for byte-identical
instruction streams (generators are seeded and independent of
simulation state).  This module decodes a stream once into flat numpy
column arrays and shares the decoded form across every cell of the
same ``(benchmark, seed, length-bound)``:

* the **base** stream is decoded lazily in chunks of
  :data:`CHUNK` instructions (a cell only consumes a few tens of
  thousands of the multi-hundred-thousand-instruction bound);
* the per-reference instrumentation rewrites of
  :mod:`repro.core.instrumentation` (``MHAR_SET`` before /
  ``BLMISS`` after every informing reference) are **array
  transforms**: one ``np.repeat`` over an informing-reference mask
  plus masked stores, instead of a per-instruction Python generator;
* replay kernels walk plain-tuple **rows** (one 13-tuple of ints per
  instruction, ``zip``-transposed from the columns once per chunk) —
  one list index per fetched instruction instead of one per field,
  and no numpy scalar boxing in the replay loop (the arrays are the
  storage/transform layer, the row lists are the replay layer).

Row/column order (everything is an int; ``-1`` encodes "absent"):
``op`` (dense :attr:`OpClass.op_code`), ``fu`` (dense FU code),
``dest``, ``src1``, ``src2``, ``addr``, ``taken`` (-1/0/1), ``pc``,
``line`` (``pc >> 5``, the fetch-line key both cores use), ``inf``
(informing flag), ``hand`` (handler-code flag), ``ovh`` (overhead
classification: handler code, ``MHAR_SET``, ``BLMISS`` or
``PREFETCH`` — the exact commit-classification predicate of both
cores, precomputed), ``cls`` (issue dispatch class: 0 plain ALU-like,
1 memory, 2 branch, 3 blmiss — collapses the op-identity chains the
interp issue loops evaluate per instruction into one precomputed
switch value).
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import islice
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.isa.opclass import FU_BRANCH, FU_INT, OpClass
from repro.workloads import spec92_workload

#: Base-stream instructions decoded per refill.
CHUNK = 16384

#: Decoded workloads kept alive across cells (LRU).  Grid runners
#: enumerate cells benchmark-major, so adjacent cells share an entry.
_MAX_CACHED = 3

# Dense op codes the replay kernels and transforms switch on.
OP_IALU = OpClass.IALU.op_code
OP_LOAD = OpClass.LOAD.op_code
OP_STORE = OpClass.STORE.op_code
OP_PREFETCH = OpClass.PREFETCH.op_code
OP_BRANCH = OpClass.BRANCH.op_code
OP_MHAR_SET = OpClass.MHAR_SET.op_code
OP_MHRR_JUMP = OpClass.MHRR_JUMP.op_code
OP_BLMISS = OpClass.BLMISS.op_code

#: fu code per op code (op_code is declaration order).
_FU_BY_OP = np.array([op.fu_code for op in OpClass], dtype=np.int16)
_FU_BY_OP_LIST = _FU_BY_OP.tolist()

#: op codes classified as overhead at commit (plus any handler code).
_OVH_OPS = (OP_MHAR_SET, OP_BLMISS, OP_PREFETCH)

# Issue dispatch classes (the ``cls`` column / row slot 12).
CLS_PLAIN = 0
CLS_MEM = 1
CLS_BRANCH = 2
CLS_BLMISS = 3

#: Column names in storage (and row slot) order.
COLUMNS = ("op", "fu", "dest", "src1", "src2", "addr", "taken", "pc",
           "line", "inf", "hand", "ovh", "cls")

_DTYPES = {
    "op": np.int16, "fu": np.int16, "dest": np.int32, "src1": np.int32,
    "src2": np.int32, "addr": np.int64, "taken": np.int8, "pc": np.int64,
    "line": np.int64, "inf": np.int8, "hand": np.int8, "ovh": np.int8,
    "cls": np.int8,
}


def decode_chunk(insts) -> Optional[Dict[str, np.ndarray]]:
    """Decode an iterable of DynInst into base column arrays.

    Returns None for an empty chunk (stream exhausted).  The derived
    columns (``fu``/``line``/``ovh``) are computed vectorised from the
    base columns.
    """
    op_l: List[int] = []
    dest_l: List[int] = []
    src1_l: List[int] = []
    src2_l: List[int] = []
    addr_l: List[int] = []
    taken_l: List[int] = []
    pc_l: List[int] = []
    inf_l: List[int] = []
    hand_l: List[int] = []
    for inst in insts:
        op_l.append(inst.op.op_code)
        dest = inst.dest
        dest_l.append(-1 if dest is None else dest)
        srcs = inst.srcs
        n_srcs = len(srcs)
        src1_l.append(srcs[0] if n_srcs > 0 else -1)
        src2_l.append(srcs[1] if n_srcs > 1 else -1)
        if n_srcs > 2:
            raise ValueError(
                "vec decode supports at most two source registers per "
                f"instruction, got {n_srcs} at pc {inst.pc:#x}")
        addr = inst.addr
        addr_l.append(-1 if addr is None else addr)
        taken = inst.taken
        taken_l.append(-1 if taken is None else int(taken))
        pc_l.append(inst.pc)
        inf_l.append(1 if inst.informing else 0)
        hand_l.append(1 if inst.handler_code else 0)
    if not op_l:
        return None
    cols = {
        "op": np.array(op_l, dtype=np.int16),
        "dest": np.array(dest_l, dtype=np.int32),
        "src1": np.array(src1_l, dtype=np.int32),
        "src2": np.array(src2_l, dtype=np.int32),
        "addr": np.array(addr_l, dtype=np.int64),
        "taken": np.array(taken_l, dtype=np.int8),
        "pc": np.array(pc_l, dtype=np.int64),
        "inf": np.array(inf_l, dtype=np.int8),
        "hand": np.array(hand_l, dtype=np.int8),
    }
    _derive(cols)
    return cols


def _derive(cols: Dict[str, np.ndarray]) -> None:
    """Fill the fu/line/ovh/cls columns from op/pc/hand."""
    op = cols["op"]
    cols["fu"] = _FU_BY_OP[op]
    cols["line"] = cols["pc"] >> 5
    ovh = cols["hand"].astype(bool)
    for code in _OVH_OPS:
        ovh |= op == code
    cols["ovh"] = ovh.astype(np.int8)
    cls = np.zeros(len(op), dtype=np.int8)
    cls[(op == OP_LOAD) | (op == OP_STORE) | (op == OP_PREFETCH)] = CLS_MEM
    cls[op == OP_BRANCH] = CLS_BRANCH
    cls[op == OP_BLMISS] = CLS_BLMISS
    cols["cls"] = cls


def _rows(cols: Dict[str, np.ndarray]) -> List[tuple]:
    """Transpose a column chunk into per-instruction row tuples."""
    return list(zip(*(cols[name].tolist() for name in COLUMNS)))


def _informing_ref_mask(cols: Dict[str, np.ndarray]) -> np.ndarray:
    """The instrumentation predicate of repro.core.instrumentation."""
    op = cols["op"]
    return ((cols["inf"] != 0) & (cols["hand"] == 0)
            & ((op == OP_LOAD) | (op == OP_STORE)))


def _insert_per_reference(cols: Dict[str, np.ndarray], before: bool,
                          ins_op: int, pc_offset: int) -> Dict[str, np.ndarray]:
    """Duplicate every informing reference's row and overwrite one copy
    with the inserted instrumentation instruction.

    ``before=True`` inserts at the first copy (``MHAR_SET`` precedes its
    reference), ``before=False`` at the second (``BLMISS`` follows it).
    """
    mask = _informing_ref_mask(cols)
    if not mask.any():
        return cols
    reps = mask.astype(np.intp) + 1
    starts = np.cumsum(reps) - reps          # output index of each input row
    ins_pos = starts[mask] + (0 if before else 1)
    ref_pc = cols["pc"][mask]
    out = {name: np.repeat(arr, reps) for name, arr in cols.items()
           if name in ("op", "dest", "src1", "src2", "addr", "taken",
                       "pc", "inf", "hand")}
    out["op"][ins_pos] = ins_op
    out["dest"][ins_pos] = -1
    out["src1"][ins_pos] = -1
    out["src2"][ins_pos] = -1
    out["addr"][ins_pos] = -1
    out["taken"][ins_pos] = -1
    # mhar_set()/the BLMISS DynInst constructor leave ``informing`` at
    # its default (True) and handler_code False; neither is a memory op
    # so only the commit classification (ovh, derived below) sees them.
    out["pc"][ins_pos] = ref_pc + pc_offset
    out["inf"][ins_pos] = 1
    out["hand"][ins_pos] = 0
    _derive(out)
    return out


def add_mhar_sets_flat(cols: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Array form of :func:`repro.core.instrumentation.add_mhar_sets`."""
    return _insert_per_reference(cols, before=True, ins_op=OP_MHAR_SET,
                                 pc_offset=2)


def add_cc_checks_flat(cols: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Array form of :func:`repro.core.instrumentation.add_cc_checks`."""
    return _insert_per_reference(cols, before=False, ins_op=OP_BLMISS,
                                 pc_offset=1)


_VARIANTS = {
    "plain": lambda cols: cols,
    "mhar": add_mhar_sets_flat,
    "cc": add_cc_checks_flat,
}


class StreamView:
    """One instrumentation variant of a decoded stream, as row tuples.

    ``rows`` is a plain Python list of per-instruction tuples in
    :data:`COLUMNS` slot order; ``avail`` is how many instructions are
    currently decoded.  The replay kernels read ``rows`` directly and
    call :meth:`ensure` when the fetch index reaches ``avail``.
    """

    __slots__ = ("_workload", "variant", "rows", "avail", "done")

    def __init__(self, workload: "DecodedWorkload", variant: str) -> None:
        self._workload = workload
        self.variant = variant
        self.rows: List[tuple] = []
        self.avail = 0
        self.done = False

    def ensure(self, index: int) -> bool:
        """Decode until *index* is readable; False when the stream ends
        first."""
        while self.avail <= index and not self.done:
            chunk = self._workload.next_chunk_for(self)
            if chunk is None:
                self.done = True
                break
            self.rows.extend(_rows(chunk))
            self.avail = len(self.rows)
        return index < self.avail


class DecodedWorkload:
    """Chunked decode of one workload stream plus its variant views.

    The base generator is consumed once; every variant view transforms
    the shared base chunks independently, so the ten cells of a
    benchmark's figure2 column (two machines x five bars, mixing plain
    and mhar variants) decode the underlying stream a single time.
    """

    def __init__(self, benchmark: str, seed_offset: int, limit: int) -> None:
        self.benchmark = benchmark
        self.seed_offset = seed_offset
        self.limit = limit
        workload = spec92_workload(benchmark, seed_offset=seed_offset)
        self._source = workload.stream(limit)
        self._base_chunks: List[Dict[str, np.ndarray]] = []
        self._exhausted = False
        self._views: Dict[str, StreamView] = {}
        self._consumed: Dict[str, int] = {}  # view variant -> chunks taken

    def view(self, variant: str) -> StreamView:
        if variant not in _VARIANTS:
            raise ValueError(f"unknown stream variant {variant!r}; "
                             f"expected one of {sorted(_VARIANTS)}")
        view = self._views.get(variant)
        if view is None:
            view = StreamView(self, variant)
            self._views[variant] = view
            self._consumed[variant] = 0
        return view

    def _decode_base_chunk(self) -> bool:
        if self._exhausted:
            return False
        chunk = decode_chunk(islice(self._source, CHUNK))
        if chunk is None:
            self._exhausted = True
            return False
        self._base_chunks.append(chunk)
        return True

    def next_chunk_for(self, view: StreamView) -> Optional[Dict[str, np.ndarray]]:
        index = self._consumed[view.variant]
        while index >= len(self._base_chunks):
            if not self._decode_base_chunk():
                return None
        self._consumed[view.variant] = index + 1
        return _VARIANTS[view.variant](self._base_chunks[index])


_CACHE: "OrderedDict[Tuple[str, int, int], DecodedWorkload]" = OrderedDict()


def decoded_stream(benchmark: str, seed_offset: int, limit: int,
                   variant: str) -> StreamView:
    """The shared decoded view for one cell's stream parameters.

    Cached per ``(benchmark, seed_offset, limit)`` with a small LRU so
    a grid's worth of cells reuses one decode per benchmark without
    pinning every benchmark's arrays in memory.
    """
    key = (benchmark, seed_offset, limit)
    workload = _CACHE.get(key)
    if workload is None:
        workload = DecodedWorkload(benchmark, seed_offset, limit)
        _CACHE[key] = workload
        while len(_CACHE) > _MAX_CACHED:
            _CACHE.popitem(last=False)
    else:
        _CACHE.move_to_end(key)
    return workload.view(variant)


def clear_decode_cache() -> None:
    """Drop all cached decodes (tests and memory-pressure hook)."""
    _CACHE.clear()


class FlatHandlers:
    """Replay-side port of GenericHandler bodies + engine dispatch.

    Produces handler frames as flat column tuples instead of DynInst
    lists, reproducing :class:`repro.core.handlers.GenericHandler`
    exactly: register use, chained/unique first-instruction sources,
    packed unique-handler base allocation in first-miss order, and the
    terminating MHRR jump.  Single handlers (and each unique handler
    after its first invocation) reuse one immutable template, so a
    trap costs a frame push instead of ``n+1`` object constructions.
    """

    def __init__(self, handler) -> None:
        from repro.core.handlers import (
            SINGLE_HANDLER_BASE_PC,
            UNIQUE_HANDLER_REGION,
        )

        self.n = handler.n_instructions
        self.unique = handler.unique
        self.chained = handler.chained
        self.reg = handler.reg
        self._single_base = SINGLE_HANDLER_BASE_PC
        self._unique_region = UNIQUE_HANDLER_REGION
        # Shared with the GenericHandler so base allocation order (and any
        # bases a previous run of the same handler object allocated) stays
        # identical to what handler.instructions() would produce.
        self._bases: Dict[int, int] = handler._bases
        self._frames: Dict[int, List[tuple]] = {}
        self.body_length = self.n + 1  # engine counts the MHRR jump

    def _build(self, base: int) -> List[tuple]:
        n = self.n
        reg = self.reg
        rows = []
        for i in range(n):
            if i == 0:
                src1 = reg if not self.unique else -1
            else:
                src1 = reg if self.chained else -1
            pc = base + 4 * i
            # Body IALUs are informing=False, handler code (ovh=1).
            rows.append((OP_IALU, FU_INT, reg, src1, -1, -1, -1,
                         pc, pc >> 5, 0, 1, 1, CLS_PLAIN))
        pc = base + 4 * n
        # mhrr_jump() leaves the DynInst default informing=True.
        rows.append((OP_MHRR_JUMP, FU_BRANCH, -1, -1, -1, -1, -1,
                     pc, pc >> 5, 1, 1, 1, CLS_PLAIN))
        return rows

    def body(self, ref_pc: int) -> List[tuple]:
        """The flat handler frame for a miss by the reference at
        *ref_pc* (allocating its unique base on first use)."""
        if not self.unique:
            base = self._single_base
        else:
            base = self._bases.get(ref_pc)
            if base is None:
                base = (self._unique_region
                        + len(self._bases) * 4 * (self.n + 1))
                self._bases[ref_pc] = base
        frame = self._frames.get(base)
        if frame is None:
            frame = self._build(base)
            self._frames[base] = frame
        return frame
