"""repro.vec — the batched/vectorized simulation backend.

The repository carries two backends behind the same ``SimJob``/engine
interface:

* ``interp`` — the original object-per-instruction interpreters in
  :mod:`repro.inorder` and :mod:`repro.ooo`.  Always available; the
  default.
* ``vec`` — this package.  A workload's dynamic op stream is decoded
  *once* into flat numpy column arrays (op codes, addresses, register
  ids — see :mod:`repro.vec.decode`), shared across every grid cell
  that replays the same benchmark, and advanced by event-driven flat
  replay kernels (:mod:`repro.vec.inorder`, :mod:`repro.vec.ooo`)
  that reuse the interp backend's memory hierarchy objects so the
  simulated statistics are **digit-exact** with ``interp``.

Because results are bit-identical, the backend is *not* part of a
job's identity: :meth:`repro.exec.SimJob.cache_key` never includes it
(proven by ``tests/test_vec_parity.py``), and either backend may
populate or hit the shared result cache.

Selection: the ``--backend {interp,vec}`` harness flag, the
``backend`` field of a serve job spec, or the ``REPRO_BACKEND``
environment variable (which forked pool workers inherit, the same
route ``--sanitize`` uses).
"""

from __future__ import annotations

import os
from typing import Optional

#: Recognised backend names, in preference-documentation order.
BACKENDS = ("interp", "vec")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"

#: The satellite contract: numpy is a runtime dependency of the vec
#: backend only — everything else in the repository must keep working
#: without it, with this message pointing at the escape hatch.
_NUMPY_HINT = (
    "the 'vec' simulation backend requires numpy (a runtime dependency "
    "of this package; `pip install numpy` or reinstall the package), "
    "or re-run with `--backend interp` / REPRO_BACKEND=interp for the "
    "pure-Python backend — results are bit-identical, just slower")


class BackendError(ValueError):
    """An unknown backend name reached the dispatch layer."""


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend to use: *explicit* if given, else ``REPRO_BACKEND``,
    else ``interp``.

    Raises:
        BackendError: when the explicit or environment value is not one
            of :data:`BACKENDS`.
    """
    value = explicit
    source = "backend"
    if value is None:
        value = os.environ.get(BACKEND_ENV) or None
        source = BACKEND_ENV
    if value is None:
        return "interp"
    if value not in BACKENDS:
        raise BackendError(
            f"{source}: unknown backend {value!r}; expected one of "
            f"{list(BACKENDS)}")
    return value


def require_numpy():
    """Import and return numpy, or raise a directive ImportError."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy present in CI
        raise ImportError(_NUMPY_HINT) from exc
    return numpy


#: Replacement policies the flat kernels express exactly: the dict-order
#: family, whose whole semantics lives in the hierarchy objects the vec
#: kernels share with interp.  Stateful policies (plru/rrip/brrip) keep
#: recency metadata the kernels' inline L1-hit path would bypass, so
#: those runs fall back to interp (same results; the telemetry's
#: ``backend`` field records the downgrade).
VEC_POLICIES = frozenset(["lru", "fifo", "random"])


def vec_supports(bar, policy: str = "lru") -> bool:
    """Can the vec backend replay this bar digit-exactly?

    The flat replay kernels cover everything the figure grids use: no
    handler, or :class:`repro.core.handlers.GenericHandler` bodies
    (single or unique, any length), under either informing mechanism.
    Python-callback handlers (:class:`CallbackHandler`) run arbitrary
    user code per miss and fall back to the interp backend — as do
    stateful replacement policies (see :data:`VEC_POLICIES`).
    """
    from repro.core.handlers import GenericHandler

    if policy not in VEC_POLICIES:
        return False
    informing = bar.informing
    if informing is None or informing.handler is None:
        return True
    return type(informing.handler) is GenericHandler


def run_bar_vec(benchmark: str, machine_key: str, bar,
                instructions: int, warmup: int, seed: int = 0,
                policy: str = "lru"):
    """Run one bar cell on the vec backend (see repro.vec.runner)."""
    require_numpy()
    from repro.vec.runner import run_bar_vec as _impl
    return _impl(benchmark, machine_key, bar, instructions, warmup,
                 seed=seed, policy=policy)


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "VEC_POLICIES",
    "BackendError",
    "resolve_backend",
    "require_numpy",
    "run_bar_vec",
    "vec_supports",
]
