"""Flat event-driven replay of the out-of-order core (digit-exact).

Same contract as :mod:`repro.vec.inorder`, for
:class:`repro.ooo.OutOfOrderCore`: identical memory-hierarchy objects
and statistics, prebuilt decoded row tuples instead of DynInst
objects, the inlined L1/icache hit fast paths, and bulk skipping of
provably-idle cycles.  Wrong-path fetch (``wrong_path_factory``) is
not replayed here — the dispatcher falls back to the interp backend
for cores that use it.

The replay entry mirrors ``repro.ooo.core._Entry`` field-for-field
but is a plain list (a class instance costs ~3x as much to allocate,
and tens of thousands of entries are created per cell).  Slot layout::

    0 row     decoded 13-tuple (repro.vec.decode.COLUMNS order)
    1 serial  stream frame serial (0 = app stream)
    2 idx     index within the frame
    3 seq     dispatch order, unique per entry
    4 state   0 = waiting, 1 = issued
    5 dep1    producer entry of src1 (None when ready at dispatch)
    6 dep2    producer entry of src2
    7 complete_cycle   set at issue
    8 was_miss
    9 needs_inform
    10 mshr_id
    11 holds_shadow
    12 trap_pending
    13 cc_ref  the mem entry a BLMISS probe reads
    14 squashed
    15 outcome_cycle   hit/miss known (tag check)
    16 ready_at  cached max of dep/cc-ref event cycles (0 = unknown);
       valid once all producers have issued — their completes never
       move afterwards, so the issue scan can skip a blocked entry on
       one compare instead of re-walking its dependencies.
"""

from __future__ import annotations

from collections import deque

from repro.core.mechanisms import Mechanism, TrapStyle, return_pc
from repro.vec.decode import (
    CLS_BLMISS,
    CLS_BRANCH,
    CLS_MEM,
    OP_LOAD,
    OP_PREFETCH,
    OP_STORE,
    FlatHandlers,
    StreamView,
)


def run_ooo_vec(core, view: StreamView, max_app_insts: int,
                warmup_insts: int):
    """Replay *view* through *core* (an OutOfOrderCore); return its stats.

    Preconditions (dispatcher-guaranteed): no sanitizer/observer/stream
    buffers, no wrong-path factory, GenericHandler-or-no handler.
    """
    config = core.config
    engine = core.engine
    hierarchy = core.hierarchy
    predictor = core.predictor
    if (hierarchy._san is not None or hierarchy._obs is not None
            or hierarchy._stream_buffers or core.wrong_path_factory is not None):
        raise ValueError("vec kernel cannot replay an instrumented core; "
                         "use the interp backend")

    width = config.issue_width
    rob_size = config.rob_size
    shadow_branches = config.shadow_branches
    stats = core.stats
    mstats = hierarchy.stats

    engine_active = engine.enabled and engine.config.active
    is_cc = engine.config.mechanism is Mechanism.CONDITION_CODE
    is_trap = engine.config.mechanism is Mechanism.TRAP
    branch_like = engine.config.trap_style is TrapStyle.BRANCH_LIKE
    mem_shadow = (is_trap and branch_like and engine.config.active
                  and engine.enabled)
    handlers = FlatHandlers(engine.config.handler) if engine_active else None
    handler_len = handlers.body_length if handlers is not None else 0

    fu_counts = [config.int_units, config.fp_units, config.branch_units,
                 config.mem_units, 1 << 30]
    mem_on_int = config.mem_units == 0
    fmap = [0, 1, 2, 0 if mem_on_int else 3, 4]
    fu_avail = list(fu_counts)

    ptable = predictor._table
    pmask = predictor.entries - 1
    plookups = 0
    pmisses = 0

    hier_access = hierarchy.access
    hier_ifetch = hierarchy.ifetch
    apply_fills = hierarchy._apply_fills
    pending = hierarchy._pending
    bank_free = hierarchy._bank_free
    num_banks = hierarchy._num_banks
    l1_hit_latency = hierarchy._l1_hit_latency
    line_shift = hierarchy._line_shift
    l1 = hierarchy.l1
    l1_sets = l1._sets
    set_mask = l1._set_mask
    l1_is_lru = l1._is_lru
    extended_mshrs = hierarchy.mshrs.extended_lifetime
    release_mshr = hierarchy.release_mshr
    mshr_is_informed = hierarchy.mshrs.is_informed
    icache = hierarchy.icache
    inline_icache = icache is not None and icache._is_lru
    if inline_icache:
        i_sets = icache._sets
        i_set_mask = icache._set_mask
        i_line_shift = icache._line_shift
    else:
        i_sets = i_set_mask = i_line_shift = None

    lat_list = config.latencies.as_list()
    mispredict_penalty = config.mispredict_penalty

    app_rows = view.rows
    view_ensure = view.ensure
    app_pos = 0
    app_avail = view.avail
    frames = []
    next_serial = 1

    rob = deque()
    rob_append = rob.append
    rob_popleft = rob.popleft
    waiting = []
    waiting_append = waiting.append
    rename = {}
    rename_get = rename.get
    shadow_in_use = 0
    fetch_blocked_until = 0
    halted_on_branch = None
    last_fetch_line = -1
    last_mem_entry = None
    armed_traps = []
    cycle = 0
    seq = 0
    app_committed = 0
    stream_done = False
    acc_cycles = acc_busy = acc_cache = acc_other = 0
    # app/handler graduation tallies are kept in locals and flushed to
    # the stats object once at the end (and discarded at the warmup
    # reset, exactly like the interp core's counters are).
    st_app = 0
    st_hand = 0

    def rewind_after(serial, idx):
        """stack.rewind_after for the flat frame stack."""
        nonlocal app_pos
        if serial == 0:
            if frames:
                del frames[:]
            app_pos = idx + 1
        else:
            while frames[-1][0] != serial:
                frames.pop()
            frames[-1][1] = idx + 1

    def squash_after(boundary):
        """Remove everything younger than *boundary* from the machine."""
        nonlocal shadow_in_use, last_mem_entry, last_fetch_line
        nonlocal halted_on_branch, stream_done
        bseq = boundary[3]
        while rob and rob[-1][3] > bseq:
            victim = rob.pop()
            victim[14] = True
            if victim[11]:
                shadow_in_use -= 1
            vm = victim[10]
            if vm is not None and extended_mshrs:
                release_mshr(vm, True)
        rename.clear()
        for entry in rob:
            dest = entry[0][2]
            if dest > 0:
                rename[dest] = entry
        if armed_traps:
            armed_traps[:] = [
                pair for pair in armed_traps if not pair[1][14]]
        if last_mem_entry is not None and last_mem_entry[14]:
            last_mem_entry = None
        if halted_on_branch is not None and halted_on_branch[14]:
            halted_on_branch = None
        last_fetch_line = -1
        stream_done = False

    def take_trap(boundary, ref_pc, fire_cycle, mshr_id):
        """Invoke the informing handler, squashing after *boundary*."""
        nonlocal fetch_blocked_until, next_serial
        # Fire once per line fetch: skip if another trap for the same
        # fetch already ran.
        if mshr_id is not None and mshr_is_informed(mshr_id):
            return
        engine.invocations += 1
        engine.mhrr = return_pc(ref_pc)
        body = handlers.body(ref_pc)
        engine.injected_instructions += handler_len
        if mshr_id is not None:
            hierarchy.mark_informed(mshr_id)
        squash_after(boundary)
        rewind_after(boundary[1], boundary[2])
        frames.append([next_serial, 0, body, len(body)])
        next_serial += 1
        fb = fire_cycle + mispredict_penalty
        if fb > fetch_blocked_until:
            fetch_blocked_until = fb
        stats.informing_mispredicts += 1
        stats.handler_invocations += 1

    while True:
        # ---- branch-like informing traps fire --------------------------
        trap_fired = False
        if armed_traps:
            due = None
            for pair in armed_traps:
                if pair[0] <= cycle and not pair[1][14]:
                    if due is None or pair[1][3] < due[1][3]:
                        due = pair
            if due is not None:
                trap_fired = True
                entry = due[1]
                armed_traps.remove(due)
                take_trap(entry, entry[0][7], cycle, entry[10])

        # ---- graduation -------------------------------------------------
        graduated = 0
        trap_fired_at_head = False
        while rob and graduated < width:
            entry = rob[0]
            if entry[4] != 1 or entry[7] > cycle:
                break
            rob_popleft()
            mshr = entry[10]
            if extended_mshrs and mshr is not None:
                release_mshr(mshr, False)
            row = entry[0]
            dest = row[2]
            if dest > 0 and rename_get(dest) is entry:
                del rename[dest]
            if row[11]:
                st_hand += 1
            else:
                st_app += 1
                app_committed += 1
                if app_committed == warmup_insts:
                    acc_cycles = acc_busy = acc_cache = acc_other = 0
                    st_app = st_hand = 0
                    stats = core._reset_stats()
                    mstats = hierarchy.stats
            graduated += 1
            if entry[12]:
                # Exception-style informing trap: flush as though the
                # next instruction excepted.
                if rob:
                    take_trap(entry, row[7], cycle, mshr)
                else:
                    # Nothing younger to squash; still invoke handler.
                    # (Mirrors the interp core: no informed-check here.)
                    engine.invocations += 1
                    engine.mhrr = return_pc(row[7])
                    body = handlers.body(row[7])
                    engine.injected_instructions += handler_len
                    if mshr is not None:
                        hierarchy.mark_informed(mshr)
                    rewind_after(entry[1], entry[2])
                    frames.append([next_serial, 0, body, len(body)])
                    next_serial += 1
                    fb = cycle + mispredict_penalty
                    if fb > fetch_blocked_until:
                        fetch_blocked_until = fb
                    stats.informing_mispredicts += 1
                    stats.handler_invocations += 1
                trap_fired_at_head = True
                break
        head = rob[0] if rob else None
        acc_cycles += 1
        acc_busy += graduated
        lost = width - graduated
        if (head is not None and head[8] and head[4] == 1
                and head[7] > cycle):
            acc_cache += lost
        else:
            acc_other += lost

        if app_committed >= max_app_insts:
            break
        if stream_done and not rob:
            break

        # ---- fetch / dispatch ------------------------------------------
        fetched = 0
        if (cycle >= fetch_blocked_until and halted_on_branch is None
                and not trap_fired_at_head):
            while fetched < width and len(rob) < rob_size:
                if shadow_in_use >= shadow_branches:
                    break  # out of shadow state: front end stalls
                if frames:
                    fr = frames[-1]
                    idx = fr[1]
                    if idx >= fr[3]:
                        frames.pop()
                        continue
                    row = fr[2][idx]
                    serial = fr[0]
                    fr[1] = idx + 1
                else:
                    idx = app_pos
                    if idx >= app_avail:
                        if not view_ensure(idx):
                            stream_done = True
                            break
                        app_avail = view.avail
                    row = app_rows[idx]
                    serial = 0
                    app_pos = idx + 1
                line = row[8]
                if line != last_fetch_line:
                    pc = row[7]
                    if inline_icache:
                        iline = pc >> i_line_shift
                        iset = i_sets[iline & i_set_mask]
                        idirty = iset.get(iline)
                        if idirty is not None:
                            hierarchy.i_accesses += 1
                            del iset[iline]
                            iset[iline] = idirty
                            ready = cycle
                        else:
                            ready = hier_ifetch(pc, cycle)
                    else:
                        ready = hier_ifetch(pc, cycle)
                    last_fetch_line = line
                    if ready > cycle:
                        if serial:
                            fr[1] = idx
                        else:
                            app_pos = idx
                        fetch_blocked_until = ready
                        last_fetch_line = -1
                        break
                s1 = row[3]
                d1 = rename_get(s1) if s1 > 0 else None
                s2 = row[4]
                d2 = rename_get(s2) if s2 > 0 else None
                seq += 1
                entry = [row, serial, idx, seq, 0, d1, d2, None, False,
                         False, None, False, False, None, False, None, 0]
                dest = row[2]
                if dest > 0:
                    rename[dest] = entry
                cls = row[12]
                if cls == CLS_BRANCH:
                    entry[11] = True
                    shadow_in_use += 1
                    pidx = (row[7] >> 2) & pmask
                    counter = ptable[pidx]
                    plookups += 1
                    taken = row[6] == 1
                    if taken:
                        if counter < 3:
                            ptable[pidx] = counter + 1
                    else:
                        if counter > 0:
                            ptable[pidx] = counter - 1
                    if (counter >= 2) != taken:
                        pmisses += 1
                        stats.branch_mispredicts += 1
                        rob_append(entry)
                        waiting_append(entry)
                        fetched += 1
                        halted_on_branch = entry
                        break
                    if taken:
                        # Correct taken prediction: one fetch bubble.
                        rob_append(entry)
                        waiting_append(entry)
                        fetched += 1
                        if cycle + 1 > fetch_blocked_until:
                            fetch_blocked_until = cycle + 1
                        break
                elif cls == CLS_BLMISS:
                    entry[11] = True
                    shadow_in_use += 1
                    entry[13] = last_mem_entry
                elif cls == CLS_MEM and row[0] != OP_PREFETCH:
                    if mem_shadow and row[9] and not row[10]:
                        entry[11] = True
                        shadow_in_use += 1
                    if not row[10]:
                        last_mem_entry = entry
                rob_append(entry)
                waiting_append(entry)
                fetched += 1

        # ---- issue -------------------------------------------------------
        fu_avail[:] = fu_counts
        issued = 0
        read = 0
        write = 0
        waiting_len = len(waiting)
        while read < waiting_len:
            entry = waiting[read]
            read += 1
            if entry[4] != 0 or entry[14]:
                continue  # compact away
            ra = entry[16]
            if ra > cycle:
                waiting[write] = entry
                write += 1
                continue
            if ra == 0:
                # Dependency cycles not cached yet: walk the producers.
                m = 0
                dep = entry[5]
                if dep is not None:
                    dc = dep[7]
                    if dc is None:
                        waiting[write] = entry
                        write += 1
                        continue
                    if dc > m:
                        m = dc
                dep = entry[6]
                if dep is not None:
                    dc = dep[7]
                    if dc is None:
                        waiting[write] = entry
                        write += 1
                        continue
                    if dc > m:
                        m = dc
                ref = entry[13]
                if ref is not None:
                    # hit/miss condition code written at the tag check
                    oc = ref[15]
                    if oc is None:
                        waiting[write] = entry
                        write += 1
                        continue
                    if oc > m:
                        m = oc
                if m > cycle:
                    entry[16] = m
                    waiting[write] = entry
                    write += 1
                    continue
            row = entry[0]
            code = fmap[row[1]]
            avail = fu_avail[code]
            if avail <= 0:
                waiting[write] = entry
                write += 1
                continue
            fu_avail[code] = avail - 1
            cls = row[12]

            if cls == 0:  # CLS_PLAIN — the bulk of the stream
                entry[4] = 1
                entry[7] = cycle + lat_list[row[0]]
                issued += 1
                if issued >= width:
                    break
                continue

            if cls == CLS_MEM:
                op = row[0]
                addr = row[5]
                if op == OP_PREFETCH:
                    result = hier_access(addr, False, cycle, prefetch=True)
                    entry[4] = 1
                    if result is None:
                        entry[7] = cycle + 1
                    else:
                        entry[10] = result.mshr_id
                        entry[15] = cycle + 2
                        entry[7] = cycle + 1
                    issued += 1
                    if issued >= width:
                        break
                    continue
                is_store = op == OP_STORE
                # Inlined L1-hit fast path (see repro.vec.inorder).
                hierarchy._last_cycle = cycle
                if pending and pending[0][0] <= cycle:
                    apply_fills(cycle)
                line_addr = addr >> line_shift
                cache_set = l1_sets[line_addr & set_mask]
                dirty = cache_set.get(line_addr)
                if dirty is not None:
                    mstats.l1_accesses += 1
                    if l1_is_lru:
                        del cache_set[line_addr]
                        cache_set[line_addr] = dirty or is_store
                    elif is_store:
                        cache_set[line_addr] = True
                    mstats.l1_hits += 1
                    bank = line_addr % num_banks
                    start = bank_free[bank]
                    if start > cycle:
                        mstats.bank_conflict_cycles += start - cycle
                    else:
                        start = cycle
                    bank_free[bank] = start + 1
                    entry[4] = 1
                    entry[15] = cycle + 2
                    if op == OP_LOAD:
                        entry[7] = start + l1_hit_latency
                    else:
                        entry[7] = cycle + 1
                else:
                    result = hier_access(addr, is_store, cycle,
                                         prefetch=False)
                    if result is None:
                        # MSHR full: retry next cycle
                        waiting[write] = entry
                        write += 1
                        continue
                    entry[4] = 1
                    entry[8] = result.l1_miss
                    entry[9] = result.needs_inform
                    entry[10] = result.mshr_id
                    entry[15] = cycle + 2
                    if op == OP_LOAD:
                        entry[7] = result.ready_cycle
                    else:
                        entry[7] = cycle + 1
                issued += 1
                if (entry[9] and is_trap
                        and engine_active and row[9] and not row[10]):
                    if branch_like:
                        armed_traps.append((entry[15], entry))
                        # The implicit branch resolves at the tag check;
                        # the op cannot graduate before its trap fires.
                        if entry[15] > entry[7]:
                            entry[7] = entry[15]
                    else:
                        entry[12] = True
                if entry[11] and branch_like:
                    # Shadow state frees once the outcome is known.
                    entry[11] = False
                    shadow_in_use -= 1
                if issued >= width:
                    break
                continue

            entry[4] = 1
            entry[7] = cycle + lat_list[row[0]]
            issued += 1
            if cls == CLS_BRANCH:
                if entry[11]:
                    entry[11] = False
                    shadow_in_use -= 1
                if halted_on_branch is entry:
                    halted_on_branch = None
                    squash_after(entry)  # nothing younger in this mode
                    fb = entry[7] + mispredict_penalty
                    if fb > fetch_blocked_until:
                        fetch_blocked_until = fb
                    break  # the machine just flushed; stop issuing
            elif cls == CLS_BLMISS:
                if entry[11]:
                    entry[11] = False
                    shadow_in_use -= 1
                ref = entry[13]
                if (is_cc and ref is not None and ref[9]
                        and engine_active and ref[0][9]
                        and not ref[0][10]):
                    take_trap(entry, ref[0][7], cycle, ref[10])
                    break  # the machine state just changed wholesale
            if issued >= width:
                break
        # Splice the unscanned tail over the compacted-away prefix.
        if write != read:
            waiting[write:] = waiting[read:]

        # ---- event skip ------------------------------------------------
        if (graduated == 0 and issued == 0 and fetched == 0
                and not trap_fired):
            nxt = None
            for f, e2 in armed_traps:
                if not e2[14] and (nxt is None or f < nxt):
                    nxt = f
            if head is not None:
                if head[4] == 1 and (nxt is None or head[7] < nxt):
                    nxt = head[7]
            skip_floor = cycle + 1
            for e2 in waiting:
                if e2[4] != 0 or e2[14]:
                    continue
                te = e2[16]
                if te <= cycle:
                    # Not cached (or already due): recompute the bound.
                    te = skip_floor
                    dep = e2[5]
                    if dep is not None:
                        dc = dep[7]
                        if dc is None:
                            continue  # waits on another waiting entry
                        if dc > te:
                            te = dc
                    dep = e2[6]
                    if dep is not None:
                        dc = dep[7]
                        if dc is None:
                            continue
                        if dc > te:
                            te = dc
                    ref2 = e2[13]
                    if ref2 is not None:
                        oc = ref2[15]
                        if oc is None:
                            continue
                        if oc > te:
                            te = oc
                if nxt is None or te < nxt:
                    nxt = te
                    if te <= skip_floor:
                        break
            if (halted_on_branch is None and (frames or not stream_done)
                    and len(rob) < rob_size
                    and shadow_in_use < shadow_branches):
                tf = fetch_blocked_until
                if tf <= cycle:
                    tf = skip_floor
                if nxt is None or tf < nxt:
                    nxt = tf
            if nxt is not None and nxt > skip_floor:
                n = nxt - skip_floor
                acc_cycles += n
                if head is not None and head[8] and head[4] == 1:
                    acc_cache += width * n
                else:
                    acc_other += width * n
                cycle = nxt - 1

        cycle += 1

    stats.app_instructions += st_app
    stats.handler_instructions += st_hand
    stats.record_cycles(acc_cycles, acc_busy, acc_cache, acc_other)
    predictor.lookups += plookups
    predictor.mispredicts += pmisses
    return stats
