"""Bar-cell entry point for the vec backend.

`run_bar_vec` is the vec twin of :func:`repro.harness.runner.run_bar`:
same arguments, same :class:`BarResult`, digit-exact statistics.  The
difference is purely mechanical — the workload stream is pulled from
the per-process decode cache (:func:`repro.vec.decode.decoded_stream`)
and replayed by the flat kernels instead of the object interpreters.
"""

from __future__ import annotations

from repro.harness.configs import MACHINES, build_core
from repro.harness.runner import BarConfig, BarResult
from repro.vec.decode import decoded_stream
from repro.vec.inorder import run_inorder_vec
from repro.vec.ooo import run_ooo_vec

_VARIANT_BY_INSTRUMENTATION = {None: "plain", "mhar": "mhar", "cc": "cc"}


def run_bar_vec(
    benchmark: str,
    machine_key: str,
    bar: BarConfig,
    instructions: int,
    warmup: int,
    seed: int = 0,
    policy: str = "lru",
) -> BarResult:
    """Run one benchmark/machine/bar cell on the flat replay kernels.

    *policy* must be a dict-order policy (``repro.vec.VEC_POLICIES``):
    the kernels' inline L1-hit path only understands the ``_is_lru``
    refresh rule, so stateful policies are rejected here — the dispatch
    in :func:`repro.harness.runner.run_bar` routes them to interp.
    """
    from repro.memory import derive_seed
    from repro.vec import VEC_POLICIES

    if policy not in VEC_POLICIES:
        raise ValueError(
            f"vec backend cannot express replacement policy {policy!r}; "
            f"supported: {sorted(VEC_POLICIES)}")
    spec = MACHINES[machine_key]
    core = build_core(spec, informing=bar.informing,
                      replacement_policy=policy,
                      replacement_seed=derive_seed(seed))
    # Same stream bound as the interp path — the decode cache keys on it.
    limit = 8 * (instructions + warmup) + 100_000
    variant = _VARIANT_BY_INSTRUMENTATION[bar.per_ref_instrumentation]
    view = decoded_stream(benchmark, seed, limit, variant)
    kernel = run_ooo_vec if spec.out_of_order else run_inorder_vec
    stats = kernel(core, view, max_app_insts=instructions + warmup,
                   warmup_insts=warmup)
    breakdown = stats.breakdown()
    return BarResult(
        benchmark=benchmark,
        machine=machine_key,
        label=bar.label,
        cycles=stats.cycles,
        busy=breakdown["busy"],
        cache_stall=breakdown["cache_stall"],
        other_stall=breakdown["other_stall"],
        app_instructions=stats.app_instructions,
        handler_instructions=stats.handler_instructions,
        handler_invocations=stats.handler_invocations,
        l1_miss_rate=core.hierarchy.stats.l1_miss_rate,
    )
