"""Flat event-driven replay of the in-order core (digit-exact).

This kernel advances the same machine state as
:class:`repro.inorder.InOrderCore.run` — it drives the *identical*
``MemoryHierarchy``/``MSHRFile``/``MainMemory`` objects, the same
predictor table, and the same ``GraduationStats``/``MemStats``
accounting — but replaces the object-per-instruction stream side with
prebuilt row tuples from :mod:`repro.vec.decode`:

* instructions are 13-tuples of plain ints read out of a decoded row
  list; no ``DynInst``, ``FetchPoint`` or ``StreamStack`` objects
  exist, and issue dispatch switches on the precomputed ``cls`` slot;
* handler injection replays immutable flat frames from
  :class:`repro.vec.decode.FlatHandlers`;
* the L1-hit path of :meth:`MemoryHierarchy.access` and the
  icache-hit path of :meth:`MemoryHierarchy.ifetch` are inlined
  (legal because the vec path never attaches a sanitizer, observer or
  stream buffers — the dispatcher falls back to interp for those);
* cycles in which provably nothing can happen are skipped in bulk:
  at the end of a no-op iteration the kernel computes the earliest
  cycle at which *any* event is possible (trap fire, oldest-entry
  commit, issue-head operands ready, fetch unblock) and jumps there,
  bulk-charging the skipped graduation slots to the same stall bucket
  every skipped cycle would have charged.

Every statistic any bar reports is bit-identical with the interp core;
``tests/test_vec_parity.py`` and the golden-parity suite enforce it.
"""

from __future__ import annotations

from collections import deque

from repro.core.mechanisms import Mechanism, return_pc
from repro.isa.registers import NUM_REGS
from repro.vec.decode import (
    CLS_BLMISS,
    CLS_BRANCH,
    CLS_MEM,
    CLS_PLAIN,
    OP_LOAD,
    OP_PREFETCH,
    OP_STORE,
    FlatHandlers,
    StreamView,
)


def run_inorder_vec(core, view: StreamView, max_app_insts: int,
                    warmup_insts: int):
    """Replay *view* through *core* (an InOrderCore); return its stats.

    Preconditions (the dispatcher guarantees them): no sanitizer, no
    observer, no stream buffers, and the informing handler — if any —
    is a GenericHandler.
    """
    config = core.config
    engine = core.engine
    hierarchy = core.hierarchy
    predictor = core.predictor
    if (hierarchy._san is not None or hierarchy._obs is not None
            or hierarchy._stream_buffers):
        raise ValueError("vec kernel cannot replay an instrumented core; "
                         "use the interp backend")

    width = config.issue_width
    stats = core.stats
    mstats = hierarchy.stats

    engine_active = engine.enabled and engine.config.active
    is_cc = engine.config.mechanism is Mechanism.CONDITION_CODE
    is_trap = engine.config.mechanism is Mechanism.TRAP
    handlers = FlatHandlers(engine.config.handler) if engine_active else None
    handler_len = handlers.body_length if handlers is not None else 0

    # FU pool inlined (FUPool semantics: per-cycle counters by dense code,
    # MEMORY remapped onto the integer pipes when mem_units == 0).
    fu_counts = [config.int_units, config.fp_units, config.branch_units,
                 config.mem_units, 1 << 30]
    mem_on_int = config.mem_units == 0
    fmap = [0, 1, 2, 0 if mem_on_int else 3, 4]
    fu_avail = list(fu_counts)

    # Predictor inlined; counters flushed back at the end of the run.
    ptable = predictor._table
    pmask = predictor.entries - 1
    plookups = 0
    pmisses = 0

    # Memory-hierarchy bindings for the inlined L1-hit fast path.  The
    # bound containers are mutated in place, never rebound.
    hier_access = hierarchy.access
    hier_ifetch = hierarchy.ifetch
    apply_fills = hierarchy._apply_fills
    pending = hierarchy._pending
    bank_free = hierarchy._bank_free
    num_banks = hierarchy._num_banks
    l1_hit_latency = hierarchy._l1_hit_latency
    line_shift = hierarchy._line_shift
    l1 = hierarchy.l1
    l1_sets = l1._sets
    set_mask = l1._set_mask
    l1_is_lru = l1._is_lru
    extended_mshrs = hierarchy.mshrs.extended_lifetime
    release_mshr = hierarchy.release_mshr
    # Inlined icache-hit path (ifetch counts accesses, then probes with
    # an LRU refresh; misses fall back to the full method, which
    # re-probes without side effects).
    icache = hierarchy.icache
    inline_icache = icache is not None and icache._is_lru
    if inline_icache:
        i_sets = icache._sets
        i_set_mask = icache._set_mask
        i_line_shift = icache._line_shift
    else:
        i_sets = i_set_mask = i_line_shift = None

    lat_list = config.latencies.as_list()
    mispredict_penalty = config.mispredict_penalty

    # Stream state: the app frame is (view rows, app_pos); handler
    # frames are [serial, pos, rows, length] replayed from FlatHandlers.
    app_rows = view.rows
    view_ensure = view.ensure
    app_pos = 0
    app_avail = view.avail
    frames = []
    next_serial = 1

    reg_ready = [0] * NUM_REGS
    # In-flight entries: [complete, seq, was_miss, mshr_id, ovh, serial, idx]
    inflight = deque()
    inflight_append = inflight.append
    # Fetch-queue entries: (row, serial, idx).
    fetch_queue = deque()
    max_fetch_queue = 2 * width
    fetch_blocked_until = 0
    last_fetch_line = -1
    # Armed trap: (fire, entry, ref_pc, mshr_id).
    pending_trap = None
    cc_outcome_cycle = 0
    cc_pc = None          # missing ref of the condition-code scheme
    cc_inf = 0
    cc_mshr = None
    cycle = 0
    seq = 0
    app_committed = 0
    stream_done = False
    acc_cycles = acc_busy = acc_cache = acc_other = 0
    # Commit tallies in locals, flushed once at the end; zeroed at the
    # warmup reset just as the reset discards the interp counters.
    st_app = 0
    st_hand = 0

    while True:
        # ---- informing replay trap fires ------------------------------
        trap_fired = False
        if pending_trap is not None and cycle >= pending_trap[0]:
            trap_fired = True
            _fire, trap_entry, ref_pc, trap_mshr = pending_trap
            pending_trap = None
            # engine.on_miss, flat: wants() held when the trap armed and
            # is constant over a vec run, so the body is always injected.
            engine.invocations += 1
            engine.mhrr = return_pc(ref_pc)
            body = handlers.body(ref_pc)
            engine.injected_instructions += handler_len
            if trap_mshr is not None:
                hierarchy.mark_informed(trap_mshr)
            tseq = trap_entry[1]
            while inflight and inflight[-1][1] > tseq:
                victim = inflight.pop()
                if extended_mshrs and victim[3] is not None:
                    release_mshr(victim[3], True)
            fetch_queue.clear()
            # stack.rewind_after(trap_entry.point)
            tser = trap_entry[5]
            tidx = trap_entry[6]
            if tser == 0:
                if frames:
                    del frames[:]
                app_pos = tidx + 1
            else:
                while frames[-1][0] != tser:
                    frames.pop()
                frames[-1][1] = tidx + 1
            frames.append([next_serial, 0, body, len(body)])
            next_serial += 1
            fb = cycle + mispredict_penalty
            if fb > fetch_blocked_until:
                fetch_blocked_until = fb
            stats.informing_mispredicts += 1
            stats.handler_invocations += 1
            last_fetch_line = -1
            cc_pc = None
            stream_done = False

        # ---- commit ----------------------------------------------------
        committed = 0
        while (inflight and committed < width
               and inflight[0][0] <= cycle):
            entry = inflight.popleft()
            if extended_mshrs and entry[3] is not None:
                release_mshr(entry[3], False)
            if entry[4]:
                st_hand += 1
            else:
                st_app += 1
                app_committed += 1
                if app_committed == warmup_insts:
                    acc_cycles = acc_busy = acc_cache = acc_other = 0
                    st_app = st_hand = 0
                    stats = core._reset_stats()
                    mstats = hierarchy.stats
            committed += 1
        acc_cycles += 1
        acc_busy += committed
        lost = width - committed
        if (inflight and inflight[0][2] and inflight[0][0] > cycle):
            acc_cache += lost
        else:
            acc_other += lost

        if app_committed >= max_app_insts:
            break
        if (stream_done and not inflight and not fetch_queue
                and pending_trap is None):
            break

        # ---- fetch ----------------------------------------------------
        fetched = 0
        if cycle >= fetch_blocked_until:
            room = max_fetch_queue - len(fetch_queue)
            while room > 0:
                if frames:
                    fr = frames[-1]
                    idx = fr[1]
                    if idx >= fr[3]:
                        frames.pop()
                        continue
                    row = fr[2][idx]
                    serial = fr[0]
                    fr[1] = idx + 1
                else:
                    idx = app_pos
                    if idx >= app_avail:
                        if not view_ensure(idx):
                            stream_done = True
                            break
                        app_avail = view.avail
                    row = app_rows[idx]
                    serial = 0
                    app_pos = idx + 1
                line = row[8]
                if line != last_fetch_line:
                    pc = row[7]
                    if inline_icache:
                        iline = pc >> i_line_shift
                        iset = i_sets[iline & i_set_mask]
                        idirty = iset.get(iline)
                        if idirty is not None:
                            hierarchy.i_accesses += 1
                            del iset[iline]
                            iset[iline] = idirty
                            ready = cycle
                        else:
                            ready = hier_ifetch(pc, cycle)
                    else:
                        ready = hier_ifetch(pc, cycle)
                    last_fetch_line = line
                    if ready > cycle:
                        # I-cache miss: replay this fetch when ready.
                        if serial:
                            fr[1] = idx
                        else:
                            app_pos = idx
                        fetch_blocked_until = ready
                        last_fetch_line = -1
                        break
                fetch_queue.append((row, serial, idx))
                room -= 1
                fetched += 1

        # ---- issue (strictly in order, up to width) --------------------
        fu_avail[:] = fu_counts
        issued = 0
        while fetch_queue and issued < width:
            tq = fetch_queue[0]
            row = tq[0]
            s1 = row[3]
            if s1 > 0 and reg_ready[s1] > cycle:
                break
            s2 = row[4]
            if s2 > 0 and reg_ready[s2] > cycle:
                break
            code = fmap[row[1]]
            avail = fu_avail[code]
            if avail <= 0:
                break
            fu_avail[code] = avail - 1
            fetch_queue.popleft()
            issued += 1
            seq += 1
            cls = row[12]

            if cls == CLS_PLAIN:
                complete = cycle + lat_list[row[0]]
                inflight_append(
                    [complete, seq, False, None, row[11], tq[1], tq[2]])
                dest = row[2]
                if dest > 0:
                    reg_ready[dest] = complete
                continue

            if cls == CLS_MEM:
                op = row[0]
                addr = row[5]
                if op == OP_PREFETCH:
                    result = hier_access(addr, False, cycle, prefetch=True)
                    if result is None:
                        inflight_append(
                            [cycle + 1, seq, False, None,
                             row[11], tq[1], tq[2]])
                    else:
                        inflight_append(
                            [cycle + 1, seq, result.l1_miss, result.mshr_id,
                             row[11], tq[1], tq[2]])
                    continue
                is_store = op == OP_STORE
                # Inlined L1-hit fast path of MemoryHierarchy.access —
                # identical statements, no call frame.  Falls back to the
                # full method on anything but a clean hit.
                hierarchy._last_cycle = cycle
                if pending and pending[0][0] <= cycle:
                    apply_fills(cycle)
                line_addr = addr >> line_shift
                cache_set = l1_sets[line_addr & set_mask]
                dirty = cache_set.get(line_addr)
                if dirty is not None:
                    mstats.l1_accesses += 1
                    if l1_is_lru:
                        del cache_set[line_addr]
                        cache_set[line_addr] = dirty or is_store
                    elif is_store:
                        cache_set[line_addr] = True
                    mstats.l1_hits += 1
                    bank = line_addr % num_banks
                    start = bank_free[bank]
                    if start > cycle:
                        mstats.bank_conflict_cycles += start - cycle
                    else:
                        start = cycle
                    bank_free[bank] = start + 1
                    if op == OP_LOAD:
                        complete = start + l1_hit_latency
                        dest = row[2]
                        if dest > 0:
                            reg_ready[dest] = complete
                    else:
                        complete = cycle + 1
                    inflight_append(
                        [complete, seq, False, None, row[11], tq[1], tq[2]])
                    if is_cc and not row[10]:
                        cc_outcome_cycle = cycle + 2
                        cc_pc = None
                    continue
                result = hier_access(addr, is_store, cycle, prefetch=False)
                if result is None:
                    # MSHR full: structural stall; retry next cycle.
                    fetch_queue.appendleft(tq)
                    issued -= 1
                    seq -= 1
                    break
                if op == OP_LOAD:
                    complete = result.ready_cycle
                    dest = row[2]
                    if dest > 0:
                        reg_ready[dest] = complete
                else:
                    complete = cycle + 1
                entry = [complete, seq, result.l1_miss, result.mshr_id,
                         row[11], tq[1], tq[2]]
                inflight_append(entry)
                if not row[10]:
                    if is_cc:
                        cc_outcome_cycle = cycle + 2
                        if result.needs_inform:
                            cc_pc = row[7]
                            cc_inf = row[9]
                            cc_mshr = result.mshr_id
                        else:
                            cc_pc = None
                    elif (is_trap and result.needs_inform
                            and pending_trap is None
                            and engine_active and row[9]):
                        fire = cycle + 2
                        pending_trap = (fire, entry, row[7], result.mshr_id)
                        if fire > entry[0]:
                            entry[0] = fire
                continue

            complete = cycle + lat_list[row[0]]
            entry = [complete, seq, False, None, row[11], tq[1], tq[2]]
            inflight_append(entry)
            dest = row[2]
            if dest > 0:
                reg_ready[dest] = complete

            if cls == CLS_BRANCH:
                pidx = (row[7] >> 2) & pmask
                counter = ptable[pidx]
                plookups += 1
                taken = row[6] == 1
                if taken:
                    if counter < 3:
                        ptable[pidx] = counter + 1
                else:
                    if counter > 0:
                        ptable[pidx] = counter - 1
                if (counter >= 2) != taken:
                    pmisses += 1
                    stats.branch_mispredicts += 1
                    fb = complete + mispredict_penalty
                    if fb > fetch_blocked_until:
                        fetch_blocked_until = fb
                elif taken:
                    if cycle + 1 > fetch_blocked_until:
                        fetch_blocked_until = cycle + 1
            else:  # CLS_BLMISS
                if (is_cc and cc_pc is not None and pending_trap is None
                        and engine_active and cc_inf):
                    fire = cc_outcome_cycle
                    if cycle + 1 > fire:
                        fire = cycle + 1
                    pending_trap = (fire, entry, cc_pc, cc_mshr)
                    if fire > entry[0]:
                        entry[0] = fire
                cc_pc = None

        # ---- bulk commit drain -----------------------------------------
        # When neither issue nor fetch made progress, nothing but
        # commits (and the armed trap, which bounds the window) can
        # happen until the earliest of: the trap firing, the issue
        # head's operands becoming ready, or fetch unblocking — none of
        # which a commit can accelerate (registers are written at
        # issue, and a full fetch queue only drains through issue).
        # Model every cycle up to that horizon in one pass over the
        # in-flight entries: idle stretches are charged in bulk to the
        # bucket the oldest entry dictates, and commit bursts replay
        # the per-cycle width-capped pops exactly.
        if issued == 0 and fetched == 0 and not trap_fired:
            nxt = None
            if pending_trap is not None:
                nxt = pending_trap[0]
            if fetch_queue:
                hrow = fetch_queue[0][0]
                c1 = cycle + 1
                s1 = hrow[3]
                if s1 > 0 and reg_ready[s1] > c1:
                    c1 = reg_ready[s1]
                s2 = hrow[4]
                if s2 > 0 and reg_ready[s2] > c1:
                    c1 = reg_ready[s2]
                if nxt is None or c1 < nxt:
                    nxt = c1
            if ((frames or not stream_done)
                    and len(fetch_queue) < max_fetch_queue):
                c2 = fetch_blocked_until
                if c2 <= cycle:
                    c2 = cycle + 1
                if nxt is None or c2 < nxt:
                    nxt = c2
            # nxt is None ⇔ no trap, empty fetch queue, and nothing
            # left to fetch: the machine only drains from here.
            if nxt is None or nxt > cycle + 1:
                end = None if nxt is None else nxt - 1
                c = cycle + 1
                finished = False
                while end is None or c <= end:
                    if not inflight:
                        if end is None:
                            # Drained empty with no events pending: the
                            # interp loop broke in the iteration of the
                            # last commit, so no extra cycles accrue.
                            finished = True
                            break
                        n = end - c + 1
                        acc_cycles += n
                        acc_other += width * n
                        break
                    hd = inflight[0]
                    hc = hd[0]
                    if hc > c:
                        # Idle stretch until the oldest entry completes.
                        stop = hc if end is None or hc <= end else end + 1
                        n = stop - c
                        acc_cycles += n
                        if hd[2]:
                            acc_cache += width * n
                        else:
                            acc_other += width * n
                        c = stop
                        if end is not None and c > end:
                            break
                    # Commit burst at cycle c (same order as the loop
                    # head: pops, then accounting, then termination).
                    k = 0
                    while (inflight and k < width
                           and inflight[0][0] <= c):
                        entry = inflight.popleft()
                        if extended_mshrs and entry[3] is not None:
                            release_mshr(entry[3], False)
                        if entry[4]:
                            st_hand += 1
                        else:
                            st_app += 1
                            app_committed += 1
                            if app_committed == warmup_insts:
                                acc_cycles = acc_busy = 0
                                acc_cache = acc_other = 0
                                st_app = st_hand = 0
                                stats = core._reset_stats()
                                mstats = hierarchy.stats
                        k += 1
                    acc_cycles += 1
                    acc_busy += k
                    lost = width - k
                    if inflight and inflight[0][2] and inflight[0][0] > c:
                        acc_cache += lost
                    else:
                        acc_other += lost
                    if app_committed >= max_app_insts:
                        finished = True
                        break
                    if end is None and not inflight:
                        finished = True
                        break
                    c += 1
                if finished:
                    break
                cycle = end  # the loop tail advances to the horizon

        cycle += 1

    stats.app_instructions += st_app
    stats.handler_instructions += st_hand
    stats.record_cycles(acc_cycles, acc_busy, acc_cache, acc_other)
    predictor.lookups += plookups
    predictor.mispredicts += pmisses
    return stats
