"""In-order-issue superscalar core modelled on the Alpha 21164 (Section 3.1)."""

from repro.inorder.core import InOrderCore

__all__ = ["InOrderCore"]
