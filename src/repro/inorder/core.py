"""Cycle-level in-order 4-wide superscalar timing model (Alpha 21164-like).

The stall model follows the 21164 as Section 3.1 describes: register
dependences are resolved before issue (presence bits), issue is strictly in
program order, and situations that invalidate already-issued younger
instructions are handled with a *replay trap* — flush and re-issue.  The
informing trap reuses exactly that mechanism: a primary-cache miss by an
informing reference flushes the younger pipeline contents, redirects fetch
to the miss handler, and replays the squashed instructions after the
handler's MHRR jump.  The condition-code scheme instead resolves an explicit
BLMISS check, predicted not-taken, so only the miss case pays the redirect.

Memory operations are non-blocking: a load miss does not stall issue until
an instruction needs the data (scoreboard readiness) or, when informing is
active, until the replay trap fires.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Tuple

from repro.branch import TwoBitCounterPredictor
from repro.core.engine import InformingEngine
from repro.core.mechanisms import InformingConfig, Mechanism
from repro.isa.instructions import DynInst
from repro.isa.opclass import OpClass
from repro.isa.registers import NUM_REGS, REG_ZERO
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import CoreConfig, FUPool, GraduationStats, StreamStack

#: Cycles after issue at which a reference's hit/miss outcome is known
#: (the 21164 detects the miss at the tag check, two stages after issue).
TAG_CHECK_DELAY = 2

#: Instruction classes that are informing/optimization overhead rather than
#: application work: per-reference instrumentation inserted by
#: repro.core.instrumentation, and non-binding prefetches planted by the
#: software prefetching clients.
_OVERHEAD_OPS = (OpClass.MHAR_SET, OpClass.BLMISS, OpClass.PREFETCH)


class _InFlight:
    """One issued-but-not-committed instruction."""

    __slots__ = ("inst", "point", "seq", "complete_cycle", "was_miss",
                 "mshr_id")

    def __init__(self, inst: DynInst, point, seq: int, complete_cycle: int,
                 was_miss: bool = False, mshr_id: Optional[int] = None) -> None:
        self.inst = inst
        self.point = point
        self.seq = seq
        self.complete_cycle = complete_cycle
        self.was_miss = was_miss
        self.mshr_id = mshr_id


class InOrderCore:
    """The in-order machine model of Table 1.

    Args:
        config: pipeline parameters (use ``mem_units=0`` for the 21164-style
            memory-through-integer-pipes arrangement).
        hierarchy: the memory hierarchy (owns all cache state and timing).
        informing: informing-operation configuration; defaults to none.
        observer: optional Python hook invoked per handler invocation.
    """

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        informing: Optional[InformingConfig] = None,
        observer=None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.engine = InformingEngine(informing or InformingConfig(), observer)
        self.predictor = TwoBitCounterPredictor(config.predictor_entries)
        self.stats = GraduationStats(width=config.issue_width)

    def run(self, stream: Iterable[DynInst],
            max_app_insts: Optional[int] = None,
            warmup_insts: int = 0) -> GraduationStats:
        """Simulate *stream* to completion; return graduation statistics.

        ``max_app_insts`` bounds the number of committed *application*
        instructions (handler bodies and per-reference instrumentation are
        excluded from the count), so informing and baseline runs execute
        identical application work.  ``warmup_insts`` runs that many
        application instructions first and then resets every statistic —
        cache contents stay warm, so the measured region reflects steady
        state rather than cold-start compulsory misses.  ``max_app_insts``
        counts warm-up and measured instructions together.
        """
        config = self.config
        engine = self.engine
        hierarchy = self.hierarchy
        width = config.issue_width
        stack = StreamStack(stream)
        stats = self.stats
        fu = FUPool(config)
        reg_ready = [0] * NUM_REGS
        inflight: Deque[_InFlight] = deque()
        fetch_queue: Deque[Tuple[DynInst, object]] = deque()
        max_fetch_queue = 2 * width
        fetch_blocked_until = 0
        last_fetch_line = -1
        # Armed informing trap:
        # (fire_cycle, squash-point entry, missing ref, mshr id).
        pending_trap: Optional[Tuple[int, _InFlight, DynInst, Optional[int]]] = None
        # Condition-code state: outcome of the most recent memory reference.
        cc_outcome_cycle = 0
        cc_missed_ref: Optional[DynInst] = None
        cc_missed_mshr: Optional[int] = None
        cycle = 0
        seq = 0
        app_committed = 0
        stream_done = False
        is_cc = engine.mechanism is Mechanism.CONDITION_CODE
        is_trap = engine.mechanism is Mechanism.TRAP

        # Hot-loop bindings: this loop turns over once per simulated cycle
        # and several times per instruction, so attribute/global lookups and
        # enum hashing are hoisted out of it.
        op_load = OpClass.LOAD
        op_store = OpClass.STORE
        op_prefetch = OpClass.PREFETCH
        op_branch = OpClass.BRANCH
        op_blmiss = OpClass.BLMISS
        op_mhar_set = OpClass.MHAR_SET
        stack_fetch = stack.fetch
        stack_committed = stack.committed
        # Same-package private access: resetting availability is one slice
        # assignment per cycle, not worth a method call.
        fu_avail = fu._avail
        fu_counts = fu._counts
        fu_take = fu.take_code
        hier_access = hierarchy.access
        hier_ifetch = hierarchy.ifetch
        lat_list = config.latencies.as_list()
        mispredict_penalty = config.mispredict_penalty
        engine_wants = engine.wants
        extended_mshrs = hierarchy.mshrs.extended_lifetime
        # Runtime invariant checker (repro.sanitize); None in normal runs,
        # so every hook below costs a single identity test.
        san = hierarchy._san
        # Observer (repro.obs), same pattern and same off cost.
        obs = hierarchy._obs
        # Graduation slots accumulate in locals and flush in blocks
        # (see GraduationStats.record_cycles).
        acc_cycles = acc_busy = acc_cache = acc_other = 0

        while True:
            # ---- informing replay trap fires ------------------------------
            if pending_trap is not None and cycle >= pending_trap[0]:
                _fire, trap_entry, missed_ref, trap_mshr = pending_trap
                pending_trap = None
                if obs is not None:
                    obs.cycle = cycle  # stamp for the engine's trap.fire
                body = engine.on_miss(missed_ref)
                if body is not None:
                    if san is not None:
                        san.on_trap(engine, missed_ref, cycle)
                    if trap_mshr is not None:
                        hierarchy.mark_informed(trap_mshr)
                    while inflight and inflight[-1].seq > trap_entry.seq:
                        victim = inflight.pop()
                        self._release_mshr(victim, squashed=True)
                    fetch_queue.clear()
                    stack.rewind_after(trap_entry.point)
                    stack.push_handler(body)
                    fetch_blocked_until = max(
                        fetch_blocked_until, cycle + config.mispredict_penalty)
                    stats.informing_mispredicts += 1
                    stats.handler_invocations += 1
                    last_fetch_line = -1
                    cc_missed_ref = None
                    stream_done = False

            # ---- commit ----------------------------------------------------
            committed = 0
            while (inflight and committed < width
                   and inflight[0].complete_cycle <= cycle):
                entry = inflight.popleft()
                if san is not None:
                    san.on_commit(
                        entry.seq, entry.complete_cycle, cycle,
                        pending_trap[1].seq if pending_trap is not None
                        else None)
                if extended_mshrs and entry.mshr_id is not None:
                    hierarchy.release_mshr(entry.mshr_id, False)
                stack_committed(entry.point)
                inst = entry.inst
                op = inst.op
                if (inst.handler_code or op is op_mhar_set
                        or op is op_blmiss or op is op_prefetch):
                    stats.handler_instructions += 1
                    if obs is not None:
                        obs.on_handler_commit(cycle)
                else:
                    stats.app_instructions += 1
                    if obs is not None:
                        obs.on_app_commit(cycle)
                    app_committed += 1
                    if app_committed == warmup_insts:
                        # Pre-warm-up slots die with the old stats object.
                        acc_cycles = acc_busy = acc_cache = acc_other = 0
                        stats = self._reset_stats()
                committed += 1
            acc_cycles += 1
            acc_busy += committed
            lost = width - committed
            if (inflight and inflight[0].was_miss
                    and inflight[0].complete_cycle > cycle):
                acc_cache += lost
                if obs is not None:
                    obs.on_slots(cycle, committed, lost, True)
            else:
                acc_other += lost
                if obs is not None:
                    obs.on_slots(cycle, committed, lost, False)

            if max_app_insts is not None and app_committed >= max_app_insts:
                break
            if (stream_done and not inflight and not fetch_queue
                    and pending_trap is None):
                break

            # ---- fetch ----------------------------------------------------
            if cycle >= fetch_blocked_until:
                while len(fetch_queue) < max_fetch_queue:
                    item = stack_fetch()
                    if item is None:
                        stream_done = True
                        break
                    inst, point = item
                    line = inst.pc >> 5
                    if line != last_fetch_line:
                        ready = hier_ifetch(inst.pc, cycle)
                        last_fetch_line = line
                        if ready > cycle:
                            # I-cache miss: replay this fetch when ready.
                            stack.rewind_to(point)
                            fetch_blocked_until = ready
                            last_fetch_line = -1
                            break
                    fetch_queue.append((inst, point))

            # ---- issue (strictly in order, up to width) --------------------
            fu_avail[:] = fu_counts
            issued = 0
            while fetch_queue and issued < width:
                inst, point = fetch_queue[0]
                op = inst.op
                ready = True
                for src in inst.srcs:
                    if src != REG_ZERO and reg_ready[src] > cycle:
                        ready = False
                        break
                if not ready:
                    break
                if not fu_take(op.fu_code):
                    break
                fetch_queue.popleft()
                issued += 1
                seq += 1

                if op is op_load or op is op_store or op is op_prefetch:
                    is_prefetch = op is op_prefetch
                    result = hier_access(inst.addr, op is op_store, cycle,
                                         prefetch=is_prefetch)
                    if result is None:
                        if is_prefetch:
                            inflight.append(
                                _InFlight(inst, point, seq, cycle + 1))
                            continue
                        # MSHR full: structural stall; retry next cycle.
                        fetch_queue.appendleft((inst, point))
                        issued -= 1
                        seq -= 1
                        break
                    if op is op_load:
                        complete = result.ready_cycle
                        dest = inst.dest
                        if dest is not None and dest != REG_ZERO:
                            reg_ready[dest] = complete
                    else:
                        # Stores retire into the write buffer; a
                        # write-allocate miss fetch proceeds in background.
                        complete = cycle + 1
                    entry = _InFlight(inst, point, seq, complete,
                                      was_miss=result.l1_miss,
                                      mshr_id=result.mshr_id)
                    inflight.append(entry)
                    # Informing fires once per line fetch: a primary miss
                    # arms the trap, and a merged reference re-arms only if
                    # the fetch it joined was never informed (its trigger
                    # was squashed first).  See AccessResult.needs_inform.
                    if not is_prefetch and not inst.handler_code:
                        cc_outcome_cycle = cycle + TAG_CHECK_DELAY
                        if result.needs_inform:
                            if san is not None:
                                san.on_inform_signal(result)
                            cc_missed_ref = inst
                            cc_missed_mshr = result.mshr_id
                        else:
                            cc_missed_ref = None
                        if (is_trap and result.needs_inform
                                and pending_trap is None
                                and engine_wants(inst)):
                            pending_trap = (cycle + TAG_CHECK_DELAY, entry,
                                            inst, result.mshr_id)
                            # The op may not commit before its replay trap
                            # fires, or the squash point would be stale.
                            entry.complete_cycle = max(
                                entry.complete_cycle,
                                cycle + TAG_CHECK_DELAY)
                    continue

                complete = cycle + lat_list[op.op_code]
                entry = _InFlight(inst, point, seq, complete)
                inflight.append(entry)
                dest = inst.dest
                if dest is not None and dest != REG_ZERO:
                    reg_ready[dest] = complete

                if op is op_branch:
                    predicted = self.predictor.predict(inst.pc)
                    self.predictor.update(inst.pc, inst.taken)
                    if predicted != inst.taken:
                        self.predictor.record_mispredict()
                        stats.branch_mispredicts += 1
                        fetch_blocked_until = max(
                            fetch_blocked_until,
                            complete + mispredict_penalty)
                    elif inst.taken:
                        # Correctly-predicted taken branch: one fetch bubble.
                        fetch_blocked_until = max(fetch_blocked_until,
                                                  cycle + 1)
                elif op is op_blmiss:
                    # Explicit check, predicted not-taken, so it issues
                    # without waiting for the condition code: free on a
                    # hit; a miss resolves like a mispredicted branch once
                    # the tag check completes.
                    if (is_cc and cc_missed_ref is not None
                            and pending_trap is None
                            and engine_wants(cc_missed_ref)):
                        fire = max(cycle + 1, cc_outcome_cycle)
                        pending_trap = (fire, entry, cc_missed_ref,
                                        cc_missed_mshr)
                        # The check may not commit before it resolves, or
                        # the squash point would go stale.
                        entry.complete_cycle = max(entry.complete_cycle, fire)
                    cc_missed_ref = None

            cycle += 1

        stats.record_cycles(acc_cycles, acc_busy, acc_cache, acc_other)
        if san is not None:
            san.on_run_end(hierarchy)
        if obs is not None:
            obs.finish()
        return stats

    def _reset_stats(self) -> GraduationStats:
        """End of warm-up: fresh counters, warm caches."""
        from repro.memory.stats import MemStats
        self.stats = GraduationStats(width=self.config.issue_width)
        self.hierarchy.stats = MemStats()
        self.hierarchy.i_accesses = 0
        self.hierarchy.i_misses = 0
        self.engine.invocations = 0
        self.engine.injected_instructions = 0
        if self.hierarchy._obs is not None:
            # The trace covers exactly the measured region, so event
            # counts reconcile with the post-warm-up aggregates.
            self.hierarchy._obs.reset()
        return self.stats

    def _release_mshr(self, entry: _InFlight, squashed: bool) -> None:
        if entry.mshr_id is not None and self.hierarchy.mshrs.extended_lifetime:
            self.hierarchy.release_mshr(entry.mshr_id, squashed)
