"""repro.sanitize — runtime invariant sanitizer + chaos harness.

A "simulator sanitizer": an invariant catalog (:data:`INVARIANTS`)
checked live against the cache tag stores, the MSHR file, both pipeline
models, and the paper's informing-mechanism semantics, plus a seeded
fault injector (:class:`ChaosInjector`) that proves the checks catch
real corruption.  Off by default; enable with ``--sanitize`` on the
harness CLI or ``REPRO_SANITIZE=1`` in the environment.  Disabled cost
is one ``if self._san is not None`` per hook point; enabled runs stay
bit-exact with golden results because every check is read-only.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.sanitize.chaos import CAUGHT_BY, FAULT_CLASSES, ChaosInjector
from repro.sanitize.invariants import DEFAULT_EVERY, INVARIANTS, Sanitizer
from repro.sanitize.violation import InvariantViolation

#: Environment variable that force-enables the sanitizer ("1"/"true"/"yes").
ENV_VAR = "REPRO_SANITIZE"

__all__ = [
    "CAUGHT_BY",
    "ChaosInjector",
    "DEFAULT_EVERY",
    "ENV_VAR",
    "FAULT_CLASSES",
    "INVARIANTS",
    "InvariantViolation",
    "Sanitizer",
    "maybe_sanitizer",
    "sanitize_enabled",
]


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests invariant checking."""
    return os.environ.get(ENV_VAR, "").strip().lower() in ("1", "true", "yes")


def maybe_sanitizer(explicit: Optional[bool] = None,
                    every: int = DEFAULT_EVERY) -> Optional[Sanitizer]:
    """A fresh :class:`Sanitizer`, or None when checking is off.

    *explicit* overrides the environment in both directions (the
    ``--sanitize`` flag passes True; tests pass False to pin the
    sanitizer off regardless of the caller's environment).
    """
    enabled = sanitize_enabled() if explicit is None else explicit
    return Sanitizer(every=every) if enabled else None
