"""Seeded fault injection: prove the sanitizer's checks are not vacuous.

A :class:`ChaosInjector` deliberately corrupts live simulator state
mid-run — the way a real state-machine bug would — and the chaos test
suite asserts every fault class is caught by a named invariant within a
bounded window.  Faults corrupt *state* (dicts, entry fields, register
values) rather than replacing whole methods, so the sanitizer hooks
inside those methods keep running and must find the damage on a later
event, exactly as they would for an organic bug.

Fault classes (:data:`FAULT_CLASSES`), and the invariant that must
catch each (:data:`CAUGHT_BY`):

* ``mshr_leak`` — a retiring MSHR is resurrected unpinned (a dropped
  release / double-allocated register).
* ``duplicate_tag`` — a just-filled L1 line is also installed in a
  foreign set (or past the set's associativity in a 1-set cache).
* ``skip_invalidate`` — the L1 invalidation a squashed, filled,
  extended-lifetime MSHR must perform is silently lost (Section 3.3).
* ``corrupt_mhrr`` — the miss-handler return register is flipped after
  the trap latches it.
* ``spurious_trap`` — a primary-cache *hit* raises the informing
  signal (handler entered without a miss).

Pool-level chaos (worker death, transient worker faults) lives in
:func:`chaos_execute`, a module-level payload the exec tests plug into
:class:`repro.exec.JobRunner`.
"""

from __future__ import annotations

import os
import signal
from typing import Any, Dict, Optional

from repro.sanitize.violation import InvariantViolation

#: In-simulator fault classes :meth:`ChaosInjector.arm` understands.
FAULT_CLASSES = ("mshr_leak", "duplicate_tag", "skip_invalidate",
                 "corrupt_mhrr", "spurious_trap")

#: Which catalog invariant must detect each fault class.  ``duplicate_tag``
#: may surface as any of the three tag-store invariants depending on which
#: check sees the corruption first.
CAUGHT_BY: Dict[str, tuple] = {
    "mshr_leak": ("mshr.no_leaked_entries",),
    "duplicate_tag": ("cache.tag_home_set", "cache.duplicate_line",
                      "cache.set_occupancy"),
    "skip_invalidate": ("informing.squash_invalidates_l1",),
    "corrupt_mhrr": ("informing.mhrr_return_pc",),
    "spurious_trap": ("informing.trap_iff_miss",),
}


class ChaosInjector:
    """Corrupt one piece of live simulator state, deterministically.

    Args:
        fault: one of :data:`FAULT_CLASSES`.
        seed: seeds the skip count when *skip* is not given.
        skip: number of eligible events to let pass before corrupting
            (deterministic trigger point).  Defaults to ``seed % 4``.

    The injector fires exactly once; ``fired`` records whether it has,
    and ``fired_cycle`` the hierarchy cycle at corruption time (for the
    bounded-detection assertions in the chaos suite).
    """

    def __init__(self, fault: str, seed: int = 12345,
                 skip: Optional[int] = None) -> None:
        if fault not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {fault!r}; "
                             f"choose from {FAULT_CLASSES}")
        self.fault = fault
        self.skip = (seed % 4) if skip is None else skip
        self.fired = False
        self.fired_cycle: Optional[int] = None
        self._seen = 0
        self._suppress_invalidate = False
        self._hierarchy = None

    # -- trigger helper ------------------------------------------------------
    def _trigger(self) -> bool:
        """True exactly once, after `skip` eligible events have passed."""
        if self.fired:
            return False
        if self._seen < self.skip:
            self._seen += 1
            return False
        self.fired = True
        if self._hierarchy is not None:
            self.fired_cycle = self._hierarchy._last_cycle
        return True

    # -- arming --------------------------------------------------------------
    def arm(self, target) -> "ChaosInjector":
        """Wire the fault into *target* (a core, or a bare hierarchy)."""
        hierarchy = getattr(target, "hierarchy", target)
        self._hierarchy = hierarchy
        engine = getattr(target, "engine", None)
        if self.fault == "mshr_leak":
            self._arm_mshr_leak(hierarchy)
        elif self.fault == "duplicate_tag":
            self._arm_duplicate_tag(hierarchy)
        elif self.fault == "skip_invalidate":
            self._arm_skip_invalidate(hierarchy)
        elif self.fault == "spurious_trap":
            self._arm_spurious_trap(hierarchy)
        else:  # corrupt_mhrr
            if engine is None:
                raise ValueError("corrupt_mhrr needs a core with an "
                                 "informing engine")
            self._arm_corrupt_mhrr(engine)
        return self

    def _arm_mshr_leak(self, hierarchy) -> None:
        mshrs = hierarchy.mshrs
        orig = mshrs.mark_filled

        def chaotic_mark_filled(mshr_id):
            entry = mshrs.get(mshr_id)
            orig(mshr_id)
            if entry is not None and self._trigger():
                # Resurrect the register as filled-and-unpinned: the
                # shape a dropped retire / lost release leaves behind.
                entry.filled = True
                entry.pinned = False
                mshrs._entries[entry.mshr_id] = entry

        mshrs.mark_filled = chaotic_mark_filled

    def _arm_duplicate_tag(self, hierarchy) -> None:
        l1 = hierarchy.l1
        orig = l1.fill

        def chaotic_fill(addr, dirty=False):
            victim = orig(addr, dirty)
            if self._trigger():
                line = addr >> l1._line_shift
                num_sets = len(l1._sets)
                if num_sets > 1:
                    foreign = ((line & l1._set_mask) + 1) % num_sets
                    l1._sets[foreign][line] = False
                else:
                    # Direct-mapped-to-one-set cache: overflow the set
                    # with a bogus resident instead.
                    l1._sets[0][line + num_sets] = False
            return victim

        l1.fill = chaotic_fill

    def _arm_skip_invalidate(self, hierarchy) -> None:
        l1 = hierarchy.l1
        orig_invalidate = l1.invalidate
        orig_release = hierarchy.release_mshr

        def chaotic_invalidate(addr):
            if self._suppress_invalidate:
                return False  # the invalidation is silently lost
            return orig_invalidate(addr)

        def chaotic_release(mshr_id, squashed):
            entry = hierarchy.mshrs.get(mshr_id)
            eligible = (squashed and entry is not None and entry.filled)
            if eligible and self._trigger():
                self._suppress_invalidate = True
                try:
                    orig_release(mshr_id, squashed)
                finally:
                    self._suppress_invalidate = False
            else:
                orig_release(mshr_id, squashed)

        l1.invalidate = chaotic_invalidate
        hierarchy.release_mshr = chaotic_release

    def _arm_spurious_trap(self, hierarchy) -> None:
        orig = hierarchy.access

        def chaotic_access(addr, is_write, cycle, prefetch=False):
            result = orig(addr, is_write, cycle, prefetch=prefetch)
            if (result is not None and not prefetch
                    and not result.l1_miss and self._trigger()):
                result.needs_inform = True  # a hit claiming to inform
            return result

        hierarchy.access = chaotic_access

    def _arm_corrupt_mhrr(self, engine) -> None:
        orig = engine.on_miss

        def chaotic_on_miss(inst):
            body = orig(inst)
            if body is not None and self._trigger():
                engine.mhrr ^= 0x44  # bit flips in the return register
            return body

        engine.on_miss = chaotic_on_miss


# -- pool-level chaos ---------------------------------------------------------

#: Environment variable pointing at a scratch directory the chaotic
#: payload uses for cross-process one-shot markers.
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"


def _in_pool_worker() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def chaos_execute(job) -> Dict[str, Any]:
    """Pluggable :class:`~repro.exec.JobRunner` payload for pool chaos.

    Module-level so worker pools pickle it by reference.  Behaviour is
    keyed on the job's benchmark name:

    * ``kill*`` — SIGKILL the executing *worker* process (simulating an
      OOM kill); harmless when re-run on the serial path in the parent.
    * ``flaky-once*`` — raise ``TransientJobError`` on the first attempt
      (one-shot marker file under ``$REPRO_CHAOS_DIR``), succeed after.
    * ``violate*`` — raise an :class:`InvariantViolation`, the shape an
      in-simulation sanitizer failure arrives in.
    * anything else — succeed, echoing the job label.
    """
    name = job.benchmark
    if name.startswith("kill") and _in_pool_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    if name.startswith("flaky-once"):
        from repro.exec.engine import TransientJobError

        marker = os.path.join(os.environ[CHAOS_DIR_ENV], f"{name}.tripped")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("tripped")
            raise TransientJobError("chaos: transient worker fault")
    if name.startswith("violate"):
        raise InvariantViolation(
            "mshr.no_leaked_entries", "MSHR", 1234,
            "chaos: simulated in-run invariant violation",
            {"mshr_id": 3, "line": "0x40"})
    return {"label": job.label, "ok": True}


# -- service-level chaos (storage faults) --------------------------------------
# Filesystem-shaped damage for the durability suites: each helper
# produces exactly the on-disk state a real fault leaves behind, so the
# journal reader, cache verifier and gateway recovery can be tested
# against honest wreckage instead of synthetic mocks.

def flip_byte(path: str, offset: Optional[int] = None,
              mask: int = 0xFF) -> int:
    """Bit-rot one byte of *path* in place; returns the offset flipped.

    *offset* defaults to the middle of the file; *mask* is XORed in (the
    default inverts the byte, guaranteeing a change).  Raises ValueError
    on an empty file or a zero mask — a flip that flips nothing would
    silently turn a corruption test vacuous.
    """
    if mask == 0:
        raise ValueError("mask 0 would not change the byte")
    with open(path, "r+b") as fh:
        data = fh.read()
        if not data:
            raise ValueError(f"cannot flip a byte of empty file {path}")
        pos = (len(data) // 2 if offset is None else offset) % len(data)
        fh.seek(pos)
        fh.write(bytes([data[pos] ^ mask]))
    return pos


def truncate_tail(path: str, drop_bytes: int) -> int:
    """Tear *drop_bytes* off the end of *path* — the state a writer
    SIGKILLed mid-append (or a lost disk flush) leaves behind.  Returns
    the new size."""
    size = max(0, os.path.getsize(path) - drop_bytes)
    with open(path, "r+b") as fh:
        fh.truncate(size)
    return size


def arm_journal_enospc(journal, after: int = 0) -> None:
    """Make *journal*'s appends fail with ENOSPC after *after* more
    successful records — the filling-disk fault class.

    Reaches into the journal's real failure path (like the injectors
    above reach into simulator state) so the production disable-and-
    count behaviour is what gets exercised, not a mock of it.
    """
    import errno

    orig_append = journal.append
    budget = [after]

    def chaotic_append(record):
        if budget[0] <= 0:
            if not journal.disabled:  # same guard the real append has
                journal._fail(OSError(errno.ENOSPC,
                                      "No space left on device (chaos)"))
            return False
        budget[0] -= 1
        return orig_append(record)

    journal.append = chaotic_append
