"""The invariant catalog and the :class:`Sanitizer` that enforces it.

The simulator's correctness story rests on microarchitectural invariants
the paper states but the code normally trusts blindly: MSHR lifetimes,
squash-path invalidation of speculatively filled L1 lines, and trap
entry only on a genuine primary-cache miss.  The sanitizer is a
runtime checking layer for those invariants — off by default, enabled
per run by attaching a :class:`Sanitizer` to a core or hierarchy
(``--sanitize`` / ``REPRO_SANITIZE=1`` at the harness level).

Hook points live in the components themselves (``memory/cache.py``,
``memory/mshr.py``, ``memory/hierarchy.py``, ``inorder/core.py``,
``ooo/core.py``) and cost a single ``if self._san is not None`` when
disabled.  Checks are read-only — they never touch recency order or any
other stateful path — so golden parity stays bit-exact with the
sanitizer enabled.

Per-access work is throttled: full tag-store/MSHR sweeps run every
``every`` data accesses (default :data:`DEFAULT_EVERY`), so corruption
is detected within a bounded window while keeping the enabled-mode
overhead small.  Event-driven checks (fills, MSHR transitions, trap
entries, squash releases) always run — they are rare and they are where
the paper's invariants actually live.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.mechanisms import return_pc
from repro.sanitize.violation import InvariantViolation

#: Data accesses between periodic full sweeps of the L1 tag store and
#: the MSHR file.  1 checks on every access (tests); larger values bound
#: detection latency at `every` accesses for a fraction of the cost.
DEFAULT_EVERY = 512

#: The invariant catalog: name -> what must hold.  Violations name one
#: of these keys; the chaos suite asserts every fault class is caught by
#: a named entry (see :data:`repro.sanitize.chaos.CAUGHT_BY`).
INVARIANTS: Dict[str, str] = {
    "cache.set_occupancy":
        "a set never holds more resident lines than its associativity",
    "cache.tag_home_set":
        "every resident line address maps to the set that holds it "
        "(a line in a foreign set is a duplicate/corrupt tag)",
    "cache.duplicate_line":
        "no line address is resident in more than one set of a cache "
        "(recency order is a permutation of distinct residents)",
    "mshr.occupancy_bound":
        "the MSHR file never holds more entries than it has registers",
    "mshr.no_leaked_entries":
        "a filled, unpinned MSHR retires at fill time; one still "
        "resident afterwards is a leaked register",
    "mshr.no_duplicate_lines":
        "at most one in-flight (unfilled) MSHR exists per line address",
    "mshr.line_map_consistent":
        "the line->entry merge map points only at live, unfilled "
        "entries for that exact line",
    "mshr.drained":
        "after a run drains, every surviving MSHR is either awaiting a "
        "scheduled fill or pinned by an extended lifetime",
    "pipeline.head_monotonic":
        "commit/graduation sequence numbers strictly increase "
        "(ROB head never moves backwards)",
    "pipeline.issued_before_graduated":
        "an instruction graduates only once issued and complete "
        "(complete_cycle <= current cycle)",
    "pipeline.no_graduation_past_trap":
        "no instruction younger than an unresolved informing trap's "
        "reference commits before the trap fires",
    "informing.trap_iff_miss":
        "the informing mechanism is invoked only for references whose "
        "hit/miss signal says miss (handler entered iff miss)",
    "informing.mhar_disabled_no_trap":
        "MHAR == 0 (or an inactive mechanism) never enters a handler",
    "informing.mhrr_return_pc":
        "at handler entry the MHRR holds the informing reference's "
        "successor PC",
    "informing.squash_invalidates_l1":
        "a squashed informing reference whose fill already happened "
        "leaves the L1 line invalid (the line may stay in L2)",
}


class Sanitizer:
    """Runtime invariant checker attached to one core + hierarchy.

    Attach with :meth:`attach` (a core) or :meth:`attach_hierarchy`
    (memory system only).  Hooks are called by the components; any
    failed check raises :class:`InvariantViolation` immediately.

    Attributes:
        every: accesses between periodic full sweeps.
        cycle: the most recent simulation cycle any hook reported
            (violation context; -1 before the first hook).
        hook_calls / full_sweeps / checks_passed: cheap counters proving
            the checks actually ran (the chaos suite asserts they are
            not vacuous).
    """

    def __init__(self, every: int = DEFAULT_EVERY) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.cycle = -1
        self.hook_calls = 0
        self.full_sweeps = 0
        self.checks_passed = 0
        self._tick = 0
        self._last_commit_seq = 0

    # -- attachment ----------------------------------------------------------
    def attach(self, core) -> Any:
        """Wire this sanitizer into *core* and its memory hierarchy."""
        self.attach_hierarchy(core.hierarchy)
        core.engine._san = self
        self._last_commit_seq = 0
        return core

    def attach_hierarchy(self, hierarchy) -> Any:
        """Wire this sanitizer into a memory hierarchy's components."""
        hierarchy._san = self
        hierarchy.l1._san = self
        hierarchy.l2._san = self
        if hierarchy.icache is not None:
            hierarchy.icache._san = self
        hierarchy.mshrs._san = self
        return hierarchy

    # -- violation plumbing --------------------------------------------------
    def _violate(self, invariant: str, component: str, message: str,
                 snapshot: Optional[Dict[str, Any]] = None) -> None:
        raise InvariantViolation(invariant, component, self.cycle, message,
                                 snapshot)

    # -- cache checks --------------------------------------------------------
    def check_cache_set(self, cache, index: int) -> None:
        """Occupancy and tag-home consistency of one set."""
        self.hook_calls += 1
        cache_set = cache._sets[index]
        if len(cache_set) > cache._assoc:
            self._violate(
                "cache.set_occupancy", cache.name,
                f"set {index} holds {len(cache_set)} lines "
                f"(associativity {cache._assoc})",
                {"set": index, "lines": [hex(l) for l in cache_set]})
        mask = cache._set_mask
        for line in cache_set:
            if line & mask != index:
                self._violate(
                    "cache.tag_home_set", cache.name,
                    f"line {line:#x} resident in set {index} but homes "
                    f"to set {line & mask}",
                    {"set": index, "line": hex(line),
                     "home_set": line & mask})
        self.checks_passed += 1

    def check_cache(self, cache) -> None:
        """Full sweep: every set, plus the cross-set duplicate scan.

        One flat loop rather than a :meth:`check_cache_set` call per set:
        large L2 tag stores make the per-set call overhead the dominant
        sweep cost.
        """
        self.hook_calls += 1
        assoc = cache._assoc
        mask = cache._set_mask
        seen: Dict[int, int] = {}
        for index, cache_set in enumerate(cache._sets):
            if len(cache_set) > assoc:
                self._violate(
                    "cache.set_occupancy", cache.name,
                    f"set {index} holds {len(cache_set)} lines "
                    f"(associativity {assoc})",
                    {"set": index, "lines": [hex(l) for l in cache_set]})
            for line in cache_set:
                if line & mask != index:
                    self._violate(
                        "cache.tag_home_set", cache.name,
                        f"line {line:#x} resident in set {index} but "
                        f"homes to set {line & mask}",
                        {"set": index, "line": hex(line),
                         "home_set": line & mask})
                if line in seen:
                    self._violate(
                        "cache.duplicate_line", cache.name,
                        f"line {line:#x} resident in sets {seen[line]} "
                        f"and {index}",
                        {"line": hex(line), "sets": [seen[line], index]})
                seen[line] = index
        self.checks_passed += 1

    # -- MSHR checks ---------------------------------------------------------
    def check_mshr_file(self, mshrs) -> None:
        """Structural consistency of the whole MSHR file (it is tiny)."""
        self.hook_calls += 1
        entries = mshrs._entries
        if len(entries) > mshrs.count:
            self._violate(
                "mshr.occupancy_bound", "MSHR",
                f"{len(entries)} entries in a {mshrs.count}-register file",
                {"occupancy": len(entries), "count": mshrs.count})
        unfilled_lines: Dict[int, int] = {}
        for entry in entries.values():
            if entry.filled and not entry.pinned:
                self._violate(
                    "mshr.no_leaked_entries", "MSHR",
                    f"entry {entry.mshr_id} (line {entry.line_addr:#x}) is "
                    f"filled and unpinned but still resident",
                    self._mshr_snapshot(entry))
            if not entry.filled:
                if entry.line_addr in unfilled_lines:
                    self._violate(
                        "mshr.no_duplicate_lines", "MSHR",
                        f"entries {unfilled_lines[entry.line_addr]} and "
                        f"{entry.mshr_id} both in flight for line "
                        f"{entry.line_addr:#x}",
                        self._mshr_snapshot(entry))
                unfilled_lines[entry.line_addr] = entry.mshr_id
                mapped = mshrs._by_line.get(entry.line_addr)
                if mapped is not entry:
                    self._violate(
                        "mshr.line_map_consistent", "MSHR",
                        f"unfilled entry {entry.mshr_id} for line "
                        f"{entry.line_addr:#x} is not the merge target for "
                        f"its line",
                        self._mshr_snapshot(entry))
        for line, entry in mshrs._by_line.items():
            if (entries.get(entry.mshr_id) is not entry
                    or entry.line_addr != line or entry.filled):
                self._violate(
                    "mshr.line_map_consistent", "MSHR",
                    f"line map for {line:#x} points at a retired, filled "
                    f"or mismatched entry",
                    self._mshr_snapshot(entry))
        self.checks_passed += 1

    @staticmethod
    def _mshr_snapshot(entry) -> Dict[str, Any]:
        return {"mshr_id": entry.mshr_id, "line": hex(entry.line_addr),
                "filled": entry.filled, "pinned": entry.pinned,
                "merged": entry.merged, "informed": entry.informed}

    # -- component hooks -----------------------------------------------------
    def on_access(self, hierarchy, cycle: int) -> None:
        """Per data access: update cycle context, periodic full sweep."""
        self.cycle = cycle
        self._tick += 1
        if self._tick >= self.every:
            self._tick = 0
            self.full_sweeps += 1
            # The L2 full sweep is deferred to on_run_end: its tag store
            # is three orders of magnitude larger than the L1's, and L2
            # fills are still set-checked as they happen.
            self.check_cache(hierarchy.l1)
            self.check_mshr_file(hierarchy.mshrs)

    def on_fill(self, cache, index: int) -> None:
        self.check_cache_set(cache, index)

    def on_invalidate(self, cache, index: int) -> None:
        self.check_cache_set(cache, index)

    def on_mshr_event(self, mshrs) -> None:
        """After any MSHR allocate / fill / release."""
        self.check_mshr_file(mshrs)

    def on_mshr_release(self, hierarchy, entry, squashed: bool) -> None:
        """Post-condition of an extended-lifetime release (Section 3.3)."""
        self.hook_calls += 1
        if squashed and entry.filled:
            byte_addr = entry.line_addr << hierarchy._line_shift
            if hierarchy.l1.contains(byte_addr):
                self._violate(
                    "informing.squash_invalidates_l1", "MSHR",
                    f"squashed entry {entry.mshr_id} had filled but line "
                    f"{entry.line_addr:#x} is still resident in L1",
                    self._mshr_snapshot(entry))
        self.checks_passed += 1

    def on_inform_signal(self, result) -> None:
        """A reference is about to arm the informing mechanism."""
        self.hook_calls += 1
        if not result.l1_miss:
            self._violate(
                "informing.trap_iff_miss", "hierarchy",
                "informing signalled for a reference whose hit/miss "
                "signal says hit",
                {"level": result.level, "l1_miss": result.l1_miss,
                 "needs_inform": result.needs_inform,
                 "mshr_id": result.mshr_id})
        self.checks_passed += 1

    def on_trap(self, engine, inst, cycle: int) -> None:
        """A miss handler is being entered for *inst*."""
        self.hook_calls += 1
        self.cycle = cycle
        if engine.mhar == 0 or not engine.config.active:
            self._violate(
                "informing.mhar_disabled_no_trap", "engine",
                f"handler entered for pc {inst.pc:#x} with MHAR == "
                f"{engine.mhar:#x} (active={engine.config.active})",
                {"pc": hex(inst.pc), "mhar": engine.mhar})
        expected = return_pc(inst.pc)
        if engine.mhrr != expected:
            self._violate(
                "informing.mhrr_return_pc", "engine",
                f"MHRR is {engine.mhrr:#x} at handler entry; the "
                f"informing reference at {inst.pc:#x} requires "
                f"{expected:#x}",
                {"pc": hex(inst.pc), "mhrr": hex(engine.mhrr),
                 "expected": hex(expected)})
        self.checks_passed += 1

    def on_commit(self, seq: int, complete_cycle: int, cycle: int,
                  trap_seq: Optional[int]) -> None:
        """One instruction committing on the in-order core."""
        self.hook_calls += 1
        self.cycle = cycle
        if seq <= self._last_commit_seq:
            self._violate(
                "pipeline.head_monotonic", "inorder",
                f"commit seq {seq} after {self._last_commit_seq}",
                {"seq": seq, "last": self._last_commit_seq})
        self._last_commit_seq = seq
        if complete_cycle > cycle:
            self._violate(
                "pipeline.issued_before_graduated", "inorder",
                f"seq {seq} committing at cycle {cycle} before its "
                f"completion cycle {complete_cycle}",
                {"seq": seq, "complete_cycle": complete_cycle})
        if trap_seq is not None and seq > trap_seq:
            self._violate(
                "pipeline.no_graduation_past_trap", "inorder",
                f"seq {seq} committing past the unresolved informing "
                f"trap armed on seq {trap_seq}",
                {"seq": seq, "trap_seq": trap_seq})
        self.checks_passed += 1

    def on_graduate(self, entry, cycle: int,
                    armed_traps: List) -> None:
        """One reorder-buffer entry graduating on the out-of-order core."""
        self.hook_calls += 1
        self.cycle = cycle
        seq = entry.seq
        if seq <= self._last_commit_seq:
            self._violate(
                "pipeline.head_monotonic", "ooo",
                f"graduation seq {seq} after {self._last_commit_seq}",
                {"seq": seq, "last": self._last_commit_seq})
        self._last_commit_seq = seq
        if entry.complete_cycle is None or entry.complete_cycle > cycle:
            self._violate(
                "pipeline.issued_before_graduated", "ooo",
                f"seq {seq} graduating at cycle {cycle} before its "
                f"completion cycle {entry.complete_cycle}",
                {"seq": seq, "complete_cycle": entry.complete_cycle})
        for fire, armed in armed_traps:
            if fire <= cycle and armed.seq < seq and not armed.squashed:
                self._violate(
                    "pipeline.no_graduation_past_trap", "ooo",
                    f"seq {seq} graduating past the due informing trap "
                    f"armed on seq {armed.seq} (fire cycle {fire})",
                    {"seq": seq, "trap_seq": armed.seq, "fire": fire})
        self.checks_passed += 1

    def on_run_end(self, hierarchy) -> None:
        """End of a core run: full sweep plus MSHR drain accounting."""
        self.full_sweeps += 1
        self.check_cache(hierarchy.l1)
        self.check_cache(hierarchy.l2)
        self.check_mshr_file(hierarchy.mshrs)
        pending_ids = {fill[2] for fill in hierarchy._pending}
        for entry in hierarchy.mshrs._entries.values():
            if not entry.filled and entry.mshr_id not in pending_ids:
                self._violate(
                    "mshr.drained", "MSHR",
                    f"entry {entry.mshr_id} (line {entry.line_addr:#x}) "
                    f"survived the run with no fill scheduled",
                    self._mshr_snapshot(entry))
        self.checks_passed += 1
