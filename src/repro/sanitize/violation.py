"""Structured invariant-violation errors.

An :class:`InvariantViolation` is what every sanitizer check raises: it
names the violated invariant (a key of
:data:`repro.sanitize.invariants.INVARIANTS`), the component the state
lives in, the simulation cycle the check ran at, and a small JSON-able
snapshot of the offending state.  The exception round-trips through
pickle unchanged so a violation raised inside a pool worker arrives in
the parent with its structure intact (see
:meth:`repro.exec.engine.JobRunner` for how the scheduler converts it
into a per-job failure record instead of a raw stack trace).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class InvariantViolation(RuntimeError):
    """A runtime invariant check failed.

    Attributes:
        invariant: catalog name of the violated invariant
            (e.g. ``"mshr.no_leaked_entries"``).
        component: which simulator component held the bad state
            (cache name, ``"MSHR"``, core name, ...).
        cycle: the simulation cycle the check observed the corruption at
            (best effort; -1 when no cycle context was available).
        snapshot: small JSON-able dict of the offending state.
    """

    def __init__(self, invariant: str, component: str, cycle: int,
                 message: str, snapshot: Optional[Dict[str, Any]] = None
                 ) -> None:
        self.invariant = invariant
        self.component = component
        self.cycle = cycle
        self.message = message
        self.snapshot = snapshot or {}
        super().__init__(
            f"[{invariant}] {component} @ cycle {cycle}: {message}")

    def __reduce__(self):
        # Explicit reduce: the default would replay RuntimeError.__init__
        # with the formatted string and lose the structured fields.
        return (type(self), (self.invariant, self.component, self.cycle,
                             self.message, self.snapshot))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form for telemetry events and failure records."""
        return {
            "invariant": self.invariant,
            "component": self.component,
            "cycle": self.cycle,
            "message": self.message,
            "snapshot": self.snapshot,
        }
