"""repro.exec — parallel experiment execution with content-addressed caching.

The harness's figures are grids of independent, deterministic simulation
cells; this package turns each cell into a :class:`SimJob`, schedules the
grid through a :class:`JobRunner` (process pool, retries, per-job
timeout, serial fallback), memoizes results in an on-disk
:class:`ResultCache` keyed by the job's content hash, and reports
structured :mod:`~repro.exec.telemetry` events for every scheduling step.

``python -m repro.exec cache stats|purge`` manages the on-disk store.
"""

from repro.exec.bench import DEFAULT_BENCH_PATH, atomic_write_json, record_run
from repro.exec.cache import (
    CacheStats,
    ResultCache,
    default_cache_dir,
    parse_size,
)
from repro.exec.engine import (
    ExecOptions,
    JobFailedError,
    JobRunner,
    JobTimeoutError,
    JournalSink,
    TransientJobError,
)
from repro.exec.job import (
    SCHEMA_VERSION,
    SimJob,
    bar_result_from_dict,
    execute_job,
)
from repro.exec.telemetry import (
    DRAINED,
    REPLAYED,
    RUN_HEADER,
    TELEMETRY_SCHEMA,
    CollectingSink,
    JobEvent,
    JsonlTraceSink,
    MultiSink,
    ProgressPrinter,
    RunTelemetry,
    git_sha,
    run_header_record,
)

__all__ = [
    "DEFAULT_BENCH_PATH",
    "DRAINED",
    "REPLAYED",
    "RUN_HEADER",
    "TELEMETRY_SCHEMA",
    "atomic_write_json",
    "git_sha",
    "record_run",
    "run_header_record",
    "SCHEMA_VERSION",
    "SimJob",
    "execute_job",
    "bar_result_from_dict",
    "ResultCache",
    "CacheStats",
    "default_cache_dir",
    "parse_size",
    "ExecOptions",
    "JobRunner",
    "TransientJobError",
    "JobTimeoutError",
    "JobFailedError",
    "JobEvent",
    "JournalSink",
    "JsonlTraceSink",
    "CollectingSink",
    "MultiSink",
    "ProgressPrinter",
    "RunTelemetry",
]
