"""Structured per-job run telemetry.

Every scheduler action emits a :class:`JobEvent` (queued / started /
cache_hit / finished / retried / failed) to the runner's sinks.  Sinks are
pluggable objects with an ``emit(event)`` method:

* :class:`JsonlTraceSink` — append events as JSON lines (the ``--trace``
  file), one object per event, flushed eagerly so a hung run still leaves
  a usable trace.
* :class:`RunTelemetry` — in-memory aggregator: counts, wall times and
  cache accounting, plus the ASCII run summary the CLI prints.
* :class:`ProgressPrinter` — single-line live progress meter.
* :class:`MultiSink` — fan one event stream out to several sinks.
"""

from __future__ import annotations

import functools
import json
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence

#: Event names, in the order a healthy job emits them.
QUEUED = "queued"
STARTED = "started"
CACHE_HIT = "cache_hit"
RETRIED = "retried"
FINISHED = "finished"
FAILED = "failed"
#: The worker pool died under a job (OOM kill, crashed interpreter);
#: unfinished jobs fall back to the serial path.
POOL_BROKEN = "pool_broken"
#: The run was asked to drain (SIGTERM/SIGINT or an explicit
#: ``request_drain()``): this job was given up without being executed.
#: In-flight jobs still finish and flush; only not-yet-started work drains.
DRAINED = "drained"
#: A resumed run (``harness resume``) served this job from the result
#: cache because the interrupted run's journal marked it finished — the
#: cell was not re-executed.  Followed by FINISHED with ``cache="replay"``.
REPLAYED = "replayed"
#: Stream-level header record: always the first line of a telemetry JSONL
#: stream, carrying the schema version and run provenance so consumers
#: (``harness watch`` / ``harness compare``) can self-describe the file.
RUN_HEADER = "run_header"

#: Version of the JSONL stream layout.  Bumped whenever the header or
#: event record shapes change incompatibly; readers reject versions they
#: do not understand instead of mis-parsing.
TELEMETRY_SCHEMA = 1


@functools.lru_cache(maxsize=1)
def git_sha() -> Optional[str]:
    """The repository HEAD sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_header_record(*, experiment: Optional[str] = None,
                      argv: Optional[Sequence[str]] = None,
                      seed: Optional[int] = None,
                      workers: Optional[int] = None,
                      jobs: Optional[int] = None) -> Dict[str, Any]:
    """The self-describing first record of a telemetry JSONL stream."""
    return {
        "event": RUN_HEADER,
        "schema": TELEMETRY_SCHEMA,
        "git_sha": git_sha(),
        "experiment": experiment,
        "argv": list(argv) if argv is not None else list(sys.argv),
        "seed": seed,
        "workers": workers,
        "jobs": jobs,
        "started": time.time(),
    }


@dataclass
class JobEvent:
    """One scheduler observation about one job attempt."""

    event: str
    key: str                    # cache key (short id of the job)
    label: str                  # human-readable job identity
    timestamp: float
    attempt: int = 0
    wall: Optional[float] = None       # seconds, finished/failed only
    cache: Optional[str] = None        # "hit" | "miss" | "off"
    error: Optional[str] = None        # retried/failed only
    #: Structured InvariantViolation payload (failed jobs whose simulation
    #: tripped a repro.sanitize check), as InvariantViolation.to_dict().
    violation: Optional[Dict[str, Any]] = None
    #: Path of the repro.obs event trace this job wrote (finished jobs
    #: executed under REPRO_OBS_DIR / --trace-events only).
    trace: Optional[str] = None
    #: Effective simulation backend of an executed job ("interp" | "vec").
    #: Reports what actually ran — a vec request that fell back to interp
    #: (unsupported bar, stateful replacement policy, sanitizer/observer
    #: attached) records "interp", which is how vec-fallback visibility is
    #: tested.  None on cache hits and non-bar jobs.
    backend: Optional[str] = None
    #: repro.trace span id of this job's span, when the run is sampled
    #: (``--trace-sample`` / REPRO_TRACE_SAMPLE) — joins the telemetry
    #: stream to the run's ``spans.jsonl``.  None when tracing is off.
    span: Optional[str] = None

    def to_json(self) -> str:
        data = {k: v for k, v in asdict(self).items() if v is not None}
        data["key"] = self.key[:16]
        return json.dumps(data, sort_keys=True)


class NullSink:
    def emit(self, event: JobEvent) -> None:
        pass


class MultiSink:
    def __init__(self, sinks: Sequence) -> None:
        self.sinks = list(sinks)

    def emit(self, event: JobEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)


class CollectingSink:
    """Keep every event in memory (tests, programmatic inspection)."""

    def __init__(self) -> None:
        self.events: List[JobEvent] = []

    def emit(self, event: JobEvent) -> None:
        self.events.append(event)

    def names(self) -> List[str]:
        return [event.event for event in self.events]


class JsonlTraceSink:
    """Write events to a JSONL file, one object per line.

    *header* (a :func:`run_header_record` dict) is written before any
    event, so the stream leads with its schema version and provenance.
    *mode* is ``"w"`` or ``"a"``: the engine truncates on a runner's
    first grid and appends for subsequent grids of the same runner (a
    multi-grid experiment like ``sensitivity`` is one stream with one
    header per grid), so a stale file from an earlier invocation never
    bleeds into a new run's stream.
    """

    def __init__(self, path: str,
                 header: Optional[Dict[str, Any]] = None,
                 mode: str = "a") -> None:
        self.path = path
        self._fh: Optional[IO[str]] = open(path, mode)
        if header is not None:
            self.write_record(header)

    def write_record(self, record: Dict[str, Any]) -> None:
        """Write one raw dict as a JSON line (header and marker records)."""
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def emit(self, event: JobEvent) -> None:
        if self._fh is None:
            return
        self._fh.write(event.to_json() + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressPrinter:
    """One-line live progress: ``[done/total] hits=H label``."""

    def __init__(self, total: int, stream: Optional[IO[str]] = None) -> None:
        self.total = total
        self.done = 0
        self.hits = 0
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: JobEvent) -> None:
        if event.event == CACHE_HIT:
            self.hits += 1
        if event.event not in (FINISHED, FAILED):
            return
        self.done += 1
        line = (f"[{self.done}/{self.total}] hits={self.hits} "
                f"{event.event} {event.label}")
        end = "\n" if self.done == self.total else "\r"
        self.stream.write(f"\r{line:<78}{end}")
        self.stream.flush()


@dataclass
class RunTelemetry:
    """Aggregate view of one scheduler run (also usable as a sink)."""

    jobs: int = 0
    finished: int = 0
    failed: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0            # jobs that actually simulated
    pool_breaks: int = 0         # worker pools lost to dead workers
    violations: int = 0          # failures carrying an InvariantViolation
    drained: int = 0             # jobs given up to a graceful drain
    replayed: int = 0            # cells skipped via journal on a resume
    journal_errors: int = 0      # run-journal appends that failed (folded
                                 # in by the engine, not event-driven)
    job_walls: List[float] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)
    wall: float = 0.0

    def emit(self, event: JobEvent) -> None:
        if event.event == QUEUED:
            self.jobs += 1
        elif event.event == DRAINED:
            self.drained += 1
        elif event.event == STARTED:
            self.executed += 1
        elif event.event == CACHE_HIT:
            self.cache_hits += 1
        elif event.event == RETRIED:
            self.retries += 1
        elif event.event == FINISHED:
            self.finished += 1
            if event.cache == "miss":
                self.cache_misses += 1
            if event.wall is not None:
                self.job_walls.append(event.wall)
        elif event.event == FAILED:
            self.failed += 1
            if event.violation is not None:
                self.violations += 1
        elif event.event == POOL_BROKEN:
            self.pool_breaks += 1
        elif event.event == REPLAYED:
            self.replayed += 1

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        walls = self.job_walls
        return {
            "jobs": self.jobs,
            "finished": self.finished,
            "failed": self.failed,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "executed": self.executed,
            "pool_breaks": self.pool_breaks,
            "violations": self.violations,
            "drained": self.drained,
            "replayed": self.replayed,
            "journal_errors": self.journal_errors,
            "wall_seconds": round(self.wall, 4),
            "mean_job_seconds": (round(sum(walls) / len(walls), 4)
                                 if walls else 0.0),
        }

    def summary(self) -> str:
        """ASCII run summary for the CLI footer."""
        data = self.as_dict()
        lines = [
            "run summary",
            f"  jobs        {data['jobs']} "
            f"({data['finished']} ok, {data['failed']} failed, "
            f"{data['retries']} retries)",
            f"  cache       {data['cache_hits']} hits / "
            f"{data['cache_misses']} misses "
            f"({100.0 * data['cache_hit_rate']:.0f}% hit rate)",
            f"  wall        {data['wall_seconds']:.2f}s total, "
            f"{data['mean_job_seconds']:.3f}s mean/job "
            f"over {data['executed']} simulated",
        ]
        return "\n".join(lines)
