"""Structured per-job run telemetry.

Every scheduler action emits a :class:`JobEvent` (queued / started /
cache_hit / finished / retried / failed) to the runner's sinks.  Sinks are
pluggable objects with an ``emit(event)`` method:

* :class:`JsonlTraceSink` — append events as JSON lines (the ``--trace``
  file), one object per event, flushed eagerly so a hung run still leaves
  a usable trace.
* :class:`RunTelemetry` — in-memory aggregator: counts, wall times and
  cache accounting, plus the ASCII run summary the CLI prints.
* :class:`ProgressPrinter` — single-line live progress meter.
* :class:`MultiSink` — fan one event stream out to several sinks.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence

#: Event names, in the order a healthy job emits them.
QUEUED = "queued"
STARTED = "started"
CACHE_HIT = "cache_hit"
RETRIED = "retried"
FINISHED = "finished"
FAILED = "failed"
#: The worker pool died under a job (OOM kill, crashed interpreter);
#: unfinished jobs fall back to the serial path.
POOL_BROKEN = "pool_broken"


@dataclass
class JobEvent:
    """One scheduler observation about one job attempt."""

    event: str
    key: str                    # cache key (short id of the job)
    label: str                  # human-readable job identity
    timestamp: float
    attempt: int = 0
    wall: Optional[float] = None       # seconds, finished/failed only
    cache: Optional[str] = None        # "hit" | "miss" | "off"
    error: Optional[str] = None        # retried/failed only
    #: Structured InvariantViolation payload (failed jobs whose simulation
    #: tripped a repro.sanitize check), as InvariantViolation.to_dict().
    violation: Optional[Dict[str, Any]] = None
    #: Path of the repro.obs event trace this job wrote (finished jobs
    #: executed under REPRO_OBS_DIR / --trace-events only).
    trace: Optional[str] = None

    def to_json(self) -> str:
        data = {k: v for k, v in asdict(self).items() if v is not None}
        data["key"] = self.key[:16]
        return json.dumps(data, sort_keys=True)


class NullSink:
    def emit(self, event: JobEvent) -> None:
        pass


class MultiSink:
    def __init__(self, sinks: Sequence) -> None:
        self.sinks = list(sinks)

    def emit(self, event: JobEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)


class CollectingSink:
    """Keep every event in memory (tests, programmatic inspection)."""

    def __init__(self) -> None:
        self.events: List[JobEvent] = []

    def emit(self, event: JobEvent) -> None:
        self.events.append(event)

    def names(self) -> List[str]:
        return [event.event for event in self.events]


class JsonlTraceSink:
    """Append events to a JSONL file, one object per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "a")

    def emit(self, event: JobEvent) -> None:
        if self._fh is None:
            return
        self._fh.write(event.to_json() + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressPrinter:
    """One-line live progress: ``[done/total] hits=H label``."""

    def __init__(self, total: int, stream: Optional[IO[str]] = None) -> None:
        self.total = total
        self.done = 0
        self.hits = 0
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: JobEvent) -> None:
        if event.event == CACHE_HIT:
            self.hits += 1
        if event.event not in (FINISHED, FAILED):
            return
        self.done += 1
        line = (f"[{self.done}/{self.total}] hits={self.hits} "
                f"{event.event} {event.label}")
        end = "\n" if self.done == self.total else "\r"
        self.stream.write(f"\r{line:<78}{end}")
        self.stream.flush()


@dataclass
class RunTelemetry:
    """Aggregate view of one scheduler run (also usable as a sink)."""

    jobs: int = 0
    finished: int = 0
    failed: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0            # jobs that actually simulated
    pool_breaks: int = 0         # worker pools lost to dead workers
    violations: int = 0          # failures carrying an InvariantViolation
    job_walls: List[float] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)
    wall: float = 0.0

    def emit(self, event: JobEvent) -> None:
        if event.event == QUEUED:
            self.jobs += 1
        elif event.event == STARTED:
            self.executed += 1
        elif event.event == CACHE_HIT:
            self.cache_hits += 1
        elif event.event == RETRIED:
            self.retries += 1
        elif event.event == FINISHED:
            self.finished += 1
            if event.cache == "miss":
                self.cache_misses += 1
            if event.wall is not None:
                self.job_walls.append(event.wall)
        elif event.event == FAILED:
            self.failed += 1
            if event.violation is not None:
                self.violations += 1
        elif event.event == POOL_BROKEN:
            self.pool_breaks += 1

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        walls = self.job_walls
        return {
            "jobs": self.jobs,
            "finished": self.finished,
            "failed": self.failed,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "executed": self.executed,
            "pool_breaks": self.pool_breaks,
            "violations": self.violations,
            "wall_seconds": round(self.wall, 4),
            "mean_job_seconds": (round(sum(walls) / len(walls), 4)
                                 if walls else 0.0),
        }

    def summary(self) -> str:
        """ASCII run summary for the CLI footer."""
        data = self.as_dict()
        lines = [
            "run summary",
            f"  jobs        {data['jobs']} "
            f"({data['finished']} ok, {data['failed']} failed, "
            f"{data['retries']} retries)",
            f"  cache       {data['cache_hits']} hits / "
            f"{data['cache_misses']} misses "
            f"({100.0 * data['cache_hit_rate']:.0f}% hit rate)",
            f"  wall        {data['wall_seconds']:.2f}s total, "
            f"{data['mean_job_seconds']:.3f}s mean/job "
            f"over {data['executed']} simulated",
        ]
        return "\n".join(lines)
