"""On-disk content-addressed result store.

Layout: one JSON blob per job under ``<root>/<key[:2]>/<key>.json`` where
``key`` is :meth:`SimJob.cache_key`.  The root defaults to
``~/.cache/repro-exec`` and is overridable with ``REPRO_CACHE_DIR`` or the
``cache_dir`` execution option.  Every blob embeds the schema version and
the job's own serialization, so entries are self-describing and entries
written by an older schema are invalidated (counted and deleted) on read
rather than silently reused.

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
run can never leave a half-written blob that later reads as a corrupt hit.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exec.job import SCHEMA_VERSION, SimJob

_ENV_VAR = "REPRO_CACHE_DIR"
_ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: With a size cap set, the cap is re-enforced every this many stores
#: (a full enforcement walks the store; per-put would be quadratic).
PRUNE_INTERVAL = 32


def parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (``"500M"``)."""
    text = str(text).strip()
    multiplier = 1
    suffixes = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    if text and text[-1].upper() in suffixes:
        multiplier = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"unparseable size {text!r}: expected an integer "
                         f"byte count with an optional K/M/G suffix")
    if value < 0:
        raise ValueError(f"size must be non-negative, got {value}")
    return value * multiplier


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-exec"


@dataclass
class CacheStats:
    """Accounting for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0  # stale-schema or corrupt entries dropped
    store_failures: int = 0  # writes skipped (disk full, read-only root...)
    evictions: int = 0  # entries pruned to keep the store under its cap

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "invalidations": self.invalidations,
                "store_failures": self.store_failures,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}


@dataclass
class ResultCache:
    """Content-addressed store of job results keyed by ``cache_key``."""

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Soft size cap in bytes: every :data:`PRUNE_INTERVAL` stores the
    #: store is pruned back under it (oldest-mtime entries first).  None
    #: defers to ``REPRO_CACHE_MAX_BYTES``; both unset means unbounded.
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser()
        self._store_warned = False
        self._stores_since_prune = 0
        if self.max_bytes is None:
            env = os.environ.get(_ENV_MAX_BYTES, "").strip()
            if env:
                try:
                    self.max_bytes = parse_size(env)
                except ValueError:
                    warnings.warn(
                        f"ignoring unparseable {_ENV_MAX_BYTES}={env!r}",
                        RuntimeWarning, stacklevel=2)

    # -- addressing ----------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup / store ------------------------------------------------------
    def get(self, job: SimJob) -> Optional[Dict[str, Any]]:
        """Return the cached result dict for *job*, or None on a miss.

        Entries with a different schema version, or that fail to parse,
        are deleted and counted as invalidations (and the lookup as a
        miss).
        """
        path = self.path_for(job.cache_key())
        try:
            blob = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._drop(path)
            self.stats.misses += 1
            return None
        if blob.get("schema") != SCHEMA_VERSION or "result" not in blob:
            self._drop(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return blob["result"]

    def put(self, job: SimJob, result: Dict[str, Any]) -> Optional[Path]:
        """Store *result* for *job* atomically; returns the blob path.

        Storing is best-effort: an OSError anywhere in the write (disk
        full, read-only root, quota) degrades to a skipped store — the
        result is already computed, so the run must not die for the sake
        of a cache entry.  Skips are counted in ``stats.store_failures``
        and reported once per cache instance; the method returns None.
        """
        key = job.cache_key()
        path = self.path_for(key)
        blob = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "job": job.to_dict(),
            "result": result,
            "created": time.time(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(blob, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.store_failures += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            if not self._store_warned:
                self._store_warned = True
                warnings.warn(
                    f"result cache at {self.root} is not writable "
                    f"({type(exc).__name__}: {exc}); results will not be "
                    f"cached for this run", RuntimeWarning, stacklevel=2)
            return None
        self.stats.stores += 1
        if self.max_bytes is not None:
            self._stores_since_prune += 1
            if self._stores_since_prune >= PRUNE_INTERVAL:
                self.enforce_cap()
        return path

    def _drop(self, path: Path) -> None:
        self.stats.invalidations += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------------
    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self._entries())

    def purge(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> Dict[str, Any]:
        """Evict oldest-mtime entries until the store fits *max_bytes*.

        Mtime (not the blob's ``created`` stamp) orders eviction so that
        the policy survives entries written by other schema versions or
        left half-described; a concurrently-deleted entry is skipped.
        Evictions are counted in ``stats.evictions``.  Returns a summary
        dict for the CLI / service telemetry.
        """
        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
        self.stats.evictions += removed
        return {"removed": removed, "freed_bytes": freed,
                "remaining_bytes": total,
                "remaining_entries": len(entries) - removed,
                "max_bytes": max_bytes}

    def enforce_cap(self) -> Optional[Dict[str, Any]]:
        """Prune back under ``max_bytes``, when a cap is configured."""
        if self.max_bytes is None:
            return None
        self._stores_since_prune = 0
        return self.prune(self.max_bytes)

    def describe(self) -> Dict[str, Any]:
        """Inventory for the ``repro.exec cache`` CLI / bench telemetry."""
        return {
            "dir": str(self.root),
            "schema": SCHEMA_VERSION,
            "entries": self.entry_count(),
            "size_bytes": self.size_bytes(),
            "max_bytes": self.max_bytes,
            "session": self.stats.as_dict(),
        }
