"""On-disk content-addressed result store.

Layout: one JSON blob per job under ``<root>/<key[:2]>/<key>.json`` where
``key`` is :meth:`SimJob.cache_key`.  The root defaults to
``~/.cache/repro-exec`` and is overridable with ``REPRO_CACHE_DIR`` or the
``cache_dir`` execution option.  Every blob embeds the schema version and
the job's own serialization, so entries are self-describing and entries
written by an older schema are invalidated (counted and deleted) on read
rather than silently reused.

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
run can never leave a half-written blob that later reads as a corrupt hit.

Integrity: every blob carries a ``crc`` — crc32 over the canonical JSON
of the blob minus the crc field itself — and every read verifies it.  An
entry that fails the check (bit rot, torn storage, a hand-edited file) is
*quarantined*: moved to ``<root>/quarantine/`` and counted in
``stats.corrupt``, never returned as a hit and never a traceback.  A file
the OS refuses to read (permissions, I/O error) is left in place and
counted in ``stats.read_errors`` — it may be readable next time.
``verify()`` / ``repair()`` run the same checks over the whole store for
the ``cache verify`` / ``cache repair`` CLI subcommands, and
``sweep_tmp()`` collects ``.tmp.<pid>`` droppings from writers killed
between ``write_text`` and ``os.replace`` (age-guarded so a live writer's
temp file survives).
"""

from __future__ import annotations

import json
import os
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exec.job import SCHEMA_VERSION, SimJob

_ENV_VAR = "REPRO_CACHE_DIR"
_ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: With a size cap set, the cap is re-enforced every this many stores
#: (a full enforcement walks the store; per-put would be quadratic).
PRUNE_INTERVAL = 32

#: Where integrity-failed entries are moved (never silently deleted, so
#: a corruption burst can be investigated post hoc).
QUARANTINE_DIRNAME = "quarantine"

#: A ``.tmp.<pid>`` file younger than this is presumed to belong to a
#: live writer mid-``os.replace`` and is left alone by the sweeps.
TMP_MAX_AGE_SECONDS = 3600.0


def _canonical(obj: Any) -> str:
    """Canonical JSON: the byte-stable form the blob crc is computed over
    (independent of the pretty-printed on-disk formatting)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def blob_crc(blob: Dict[str, Any]) -> str:
    """The crc32 (hex8) of *blob* excluding its own ``crc`` field."""
    body = {k: v for k, v in blob.items() if k != "crc"}
    return f"{zlib.crc32(_canonical(body).encode('utf-8')) & 0xFFFFFFFF:08x}"


def parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (``"500M"``)."""
    text = str(text).strip()
    multiplier = 1
    suffixes = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    if text and text[-1].upper() in suffixes:
        multiplier = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"unparseable size {text!r}: expected an integer "
                         f"byte count with an optional K/M/G suffix")
    if value < 0:
        raise ValueError(f"size must be non-negative, got {value}")
    return value * multiplier


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-exec"


@dataclass
class CacheStats:
    """Accounting for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0  # stale-schema or undecodable entries dropped
    store_failures: int = 0  # writes skipped (disk full, read-only root...)
    evictions: int = 0  # entries pruned to keep the store under its cap
    corrupt: int = 0  # entries that failed the crc check -> quarantined
    read_errors: int = 0  # OS-level read failures (entry left in place)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "invalidations": self.invalidations,
                "store_failures": self.store_failures,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
                "read_errors": self.read_errors,
                "hit_rate": round(self.hit_rate, 4)}


@dataclass
class ResultCache:
    """Content-addressed store of job results keyed by ``cache_key``."""

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Soft size cap in bytes: every :data:`PRUNE_INTERVAL` stores the
    #: store is pruned back under it (oldest-mtime entries first).  None
    #: defers to ``REPRO_CACHE_MAX_BYTES``; both unset means unbounded.
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser()
        self._store_warned = False
        self._stores_since_prune = 0
        if self.max_bytes is None:
            env = os.environ.get(_ENV_MAX_BYTES, "").strip()
            if env:
                try:
                    self.max_bytes = parse_size(env)
                except ValueError:
                    warnings.warn(
                        f"ignoring unparseable {_ENV_MAX_BYTES}={env!r}",
                        RuntimeWarning, stacklevel=2)

    # -- addressing ----------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup / store ------------------------------------------------------
    def get(self, job: SimJob) -> Optional[Dict[str, Any]]:
        """Return the cached result dict for *job*, or None on a miss.

        Every non-hit outcome is a counted, named miss:

        * a file the OS cannot read right now counts in
          ``stats.read_errors`` and stays on disk (transient errors —
          permissions, NFS hiccups — may clear);
        * an entry that fails integrity (undecodable JSON, bad crc)
          counts in ``stats.corrupt`` and is quarantined, so it stops
          costing a parse on every probe and stays inspectable;
        * an entry from another schema version, or one predating the
          embedded checksum, counts in ``stats.invalidations`` and is
          deleted (honest staleness, not damage).
        """
        path = self.path_for(job.cache_key())
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.read_errors += 1
            self.stats.misses += 1
            return None
        status, blob = self._classify(raw)
        if status == "corrupt":
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if status == "stale":
            self._drop(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return blob["result"]

    def _classify(self, raw: bytes):
        """Integrity-check one blob's bytes: ``(status, blob_or_None)``
        with status ``"ok"`` | ``"corrupt"`` | ``"stale"``."""
        try:
            blob = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # A bit flip can damage the encoding as easily as the JSON.
            return "corrupt", None
        if (not isinstance(blob, dict)
                or blob.get("schema") != SCHEMA_VERSION
                or "result" not in blob or "crc" not in blob):
            # Wrong schema or a pre-checksum blob: stale, not damaged.
            return "stale", None
        if blob["crc"] != blob_crc(blob):
            return "corrupt", None
        return "ok", blob

    def put(self, job: SimJob, result: Dict[str, Any]) -> Optional[Path]:
        """Store *result* for *job* atomically; returns the blob path.

        Storing is best-effort: an OSError anywhere in the write (disk
        full, read-only root, quota) degrades to a skipped store — the
        result is already computed, so the run must not die for the sake
        of a cache entry.  Skips are counted in ``stats.store_failures``
        and reported once per cache instance; the method returns None.
        """
        key = job.cache_key()
        path = self.path_for(key)
        blob = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "job": job.to_dict(),
            "result": result,
            "created": time.time(),
        }
        blob["crc"] = blob_crc(blob)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(blob, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.store_failures += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            if not self._store_warned:
                self._store_warned = True
                warnings.warn(
                    f"result cache at {self.root} is not writable "
                    f"({type(exc).__name__}: {exc}); results will not be "
                    f"cached for this run", RuntimeWarning, stacklevel=2)
            return None
        self.stats.stores += 1
        if self.max_bytes is not None:
            self._stores_since_prune += 1
            if self._stores_since_prune >= PRUNE_INTERVAL:
                self.enforce_cap()
        return path

    def _drop(self, path: Path) -> None:
        self.stats.invalidations += 1
        try:
            path.unlink()
        except OSError:
            pass

    def _quarantine(self, path: Path) -> None:
        """Move an integrity-failed entry to ``<root>/quarantine/``.

        The move keeps the damaged bytes around for a post-mortem while
        taking them out of the lookup path.  If even the move fails the
        entry is deleted; either way the probe degrades to a counted
        miss, never a traceback.
        """
        self.stats.corrupt += 1
        qdir = self.root / QUARANTINE_DIRNAME
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    # -- maintenance ---------------------------------------------------------
    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self._entries())

    def purge(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> Dict[str, Any]:
        """Evict oldest-mtime entries until the store fits *max_bytes*.

        Mtime (not the blob's ``created`` stamp) orders eviction so that
        the policy survives entries written by other schema versions or
        left half-described; a concurrently-deleted entry is skipped.
        Evictions are counted in ``stats.evictions``.  Returns a summary
        dict for the CLI / service telemetry.
        """
        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
        self.stats.evictions += removed
        return {"removed": removed, "freed_bytes": freed,
                "remaining_bytes": total,
                "remaining_entries": len(entries) - removed,
                "max_bytes": max_bytes,
                "tmp_swept": self.sweep_tmp()}

    # -- integrity -----------------------------------------------------------
    def sweep_tmp(self, max_age: float = TMP_MAX_AGE_SECONDS) -> int:
        """Delete ``.tmp.<pid>`` files older than *max_age* seconds.

        These are the droppings of writers killed between ``write_text``
        and ``os.replace``.  The age guard keeps a live writer's temp
        file (by construction younger than its own in-flight put) safe
        from a concurrent sweep; returns the number removed.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        now = time.time()
        for path in list(self.root.glob("??/*.tmp.*")):
            try:
                if now - path.stat().st_mtime < max_age:
                    continue
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def verify(self, repair: bool = False,
               tmp_max_age: float = TMP_MAX_AGE_SECONDS) -> Dict[str, Any]:
        """Integrity-scan every entry; optionally act on what it finds.

        With ``repair=False`` the scan only classifies (and sweeps stale
        temp files — that is always safe); with ``repair=True`` corrupt
        entries are quarantined and stale-schema entries deleted, exactly
        as a ``get()`` on each of them would have done.  Returns a
        summary dict for the ``cache verify`` / ``cache repair`` CLI.
        """
        checked = ok = corrupt = stale = read_errors = 0
        quarantined = removed_stale = 0
        for path in list(self._entries()):
            checked += 1
            try:
                raw = path.read_bytes()
            except OSError:
                read_errors += 1
                self.stats.read_errors += 1
                continue
            status, _ = self._classify(raw)
            if status == "ok":
                ok += 1
            elif status == "corrupt":
                corrupt += 1
                if repair:
                    self._quarantine(path)
                    quarantined += 1
            else:
                stale += 1
                if repair:
                    self._drop(path)
                    removed_stale += 1
        return {"checked": checked, "ok": ok, "corrupt": corrupt,
                "stale": stale, "read_errors": read_errors,
                "quarantined": quarantined, "removed_stale": removed_stale,
                "tmp_swept": self.sweep_tmp(tmp_max_age), "repair": repair}

    def quarantine_count(self) -> int:
        """Entries currently sitting in ``<root>/quarantine/``."""
        qdir = self.root / QUARANTINE_DIRNAME
        if not qdir.is_dir():
            return 0
        return sum(1 for entry in qdir.iterdir() if entry.is_file())

    def enforce_cap(self) -> Optional[Dict[str, Any]]:
        """Prune back under ``max_bytes``, when a cap is configured."""
        if self.max_bytes is None:
            return None
        self._stores_since_prune = 0
        return self.prune(self.max_bytes)

    def describe(self) -> Dict[str, Any]:
        """Inventory for the ``repro.exec cache`` CLI / bench telemetry."""
        return {
            "dir": str(self.root),
            "schema": SCHEMA_VERSION,
            "entries": self.entry_count(),
            "size_bytes": self.size_bytes(),
            "max_bytes": self.max_bytes,
            "quarantined": self.quarantine_count(),
            "session": self.stats.as_dict(),
        }
