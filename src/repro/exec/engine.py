"""The scheduler: fan jobs across processes, with cache, retry and timeout.

:class:`JobRunner` takes a sequence of :class:`~repro.exec.job.SimJob`,
resolves what it can from the result cache, executes the rest — inline
when ``jobs == 1`` (byte-identical to the historical serial loops), or on
a ``ProcessPoolExecutor`` otherwise — and returns result dicts in job
order.

Failure policy:

* a job raising :class:`TransientJobError` is retried up to
  ``retries`` times with exponential backoff (``backoff * 2**attempt``
  seconds), each retry surfaced as a ``retried`` telemetry event;
* a job whose simulation trips a :class:`repro.sanitize`
  :class:`InvariantViolation` does **not** abort the grid: the violation
  becomes a structured per-job failure record (``status:
  "invariant_violation"`` plus the violation's component / cycle /
  snapshot) and a ``failed`` telemetry event carrying the same payload,
  while the remaining jobs keep running;
* any other exception, or exhausting the retry budget, fails the run
  with :class:`JobFailedError`;
* in parallel mode a job that does not produce a result within
  ``timeout`` seconds of being waited on fails the run with
  :class:`JobTimeoutError` and cancels the remaining work — the run
  never hangs.  Serial mode cannot preempt a running simulation, so
  there the timeout is checked after the job returns;
* a worker killed by the OS (OOM killer, SIGKILL) breaks the whole
  ``ProcessPoolExecutor`` and poisons every in-flight future — the
  runner emits one ``pool_broken`` event and re-runs the unfinished
  jobs on the serial path, carrying over each job's attempt count so
  the retry budget still bounds the total work.

Graceful shutdown: :meth:`JobRunner.request_drain` (or SIGTERM/SIGINT
when ``options.install_signal_handlers`` is set) stops the run admitting
new work — in-flight jobs finish and are stored/recorded normally,
not-yet-started jobs are given up with a ``drained`` telemetry event,
and the run returns partial results (``None`` for drained slots) after
flushing the telemetry trace and the run manifest.  Before this, a
killed pool could drop the trailing JSONL events and leave no manifest.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.job import SimJob, execute_job
from repro.exec.telemetry import (
    CACHE_HIT,
    DRAINED,
    FAILED,
    FINISHED,
    POOL_BROKEN,
    QUEUED,
    REPLAYED,
    RETRIED,
    STARTED,
    CollectingSink,
    JobEvent,
    JsonlTraceSink,
    MultiSink,
    NullSink,
    ProgressPrinter,
    RunTelemetry,
    run_header_record,
)
from repro.sanitize.violation import InvariantViolation
from repro.trace import (
    ENV_PARENT,
    ENV_SAMPLE,
    ENV_SPANS,
    clear_ambient,
    flight,
    maybe_tracer,
    set_ambient,
)


class TransientJobError(RuntimeError):
    """A retryable failure (flaky environment, worker hiccup)."""


class JobTimeoutError(RuntimeError):
    """A job exceeded the configured per-job timeout."""


class JobFailedError(RuntimeError):
    """A job failed permanently (non-transient, or retries exhausted)."""


@dataclass
class ExecOptions:
    """Knobs for one :class:`JobRunner`.

    ``jobs=1`` is the serial fallback: jobs run inline, in order, with no
    worker processes.  ``cache=False`` disables the result cache entirely
    (neither reads nor writes).
    """

    jobs: int = 1
    cache: bool = True
    cache_dir: Optional[str] = None
    timeout: Optional[float] = None     # seconds per job
    retries: int = 2                    # extra attempts after the first
    backoff: float = 0.25               # seconds; doubles per retry
    trace_path: Optional[str] = None    # JSONL event dump
    progress: bool = False              # live stderr progress meter
    #: Root directory for cross-run manifests (repro.perf): each run()
    #: writes ``<manifest_dir>/<run_id>/manifest.json``.  None disables.
    manifest_dir: Optional[str] = None
    #: Run provenance merged into the telemetry header and the manifest
    #: (experiment name, CLI argv, seed, ...).
    run_meta: Optional[Dict[str, Any]] = None
    #: Install SIGTERM/SIGINT handlers for the duration of each run()
    #: (main thread only): the first signal requests a graceful drain,
    #: a second one raises KeyboardInterrupt.  Off by default so library
    #: callers and tests never have their signal disposition touched.
    install_signal_handlers: bool = False
    #: Write-ahead run journal (repro.durable): each run() appends
    #: crc32-framed job start/finish/fail records to
    #: ``<journal_dir>/<run_id>/journal.jsonl`` so a killed grid can be
    #: continued with ``harness resume <run_id>``.  Active only when a
    #: journal directory resolves (``journal_dir``, else ``manifest_dir``);
    #: set False to switch journaling off even then.
    journal: bool = True
    journal_dir: Optional[str] = None
    #: fsync policy for the journal ("always" | "batch" | "off"); None
    #: defers to ``REPRO_JOURNAL_FSYNC``, then "always".
    journal_fsync: Optional[str] = None
    #: Simulation backend for bar jobs ("interp" | "vec", see
    #: :mod:`repro.vec`); None defers to ``REPRO_BACKEND``.  Plumbed
    #: through the environment (which forked pool workers inherit, the
    #: same route ``--sanitize`` uses) — never through the job itself:
    #: backends are digit-exact, so a :meth:`SimJob.cache_key` is
    #: backend-free and either backend may serve the shared cache.
    backend: Optional[str] = None
    #: repro.trace head-based sampling rate for this run ([0, 1]); None
    #: defers to ``REPRO_TRACE_SAMPLE``, then 0.0 (tracing off — the
    #: default costs one ``is None`` test per instrumentation site).
    trace_sample: Optional[float] = None
    #: Incoming ``traceparent`` header (repro.serve): when it carries a
    #: sampled context this run continues that trace regardless of the
    #: sampling rate; an unsampled parent disables tracing (head-based
    #: sampling — the caller's decision wins).
    trace_parent: Optional[str] = None
    #: Span JSONL destination override.  None (the default) places spans
    #: next to the run's other artifacts: ``<root>/<run_id>/spans.jsonl``.
    spans_path: Optional[str] = None


def _timed_call(execute: Callable[[SimJob], Dict[str, Any]],
                job: SimJob):
    """Worker-side wrapper: run *execute* and measure its wall time.

    Module-level so the process pool can pickle it by reference.
    """
    start = time.perf_counter()
    result = execute(job)
    return result, time.perf_counter() - start


class JournalSink:
    """Telemetry sink that mirrors job lifecycle events into a
    :class:`repro.durable.RunJournal`.

    Because the engine stores a result in the cache *before* emitting
    FINISHED, a journaled ``job_finish`` implies the result is durably
    cached — the invariant ``harness resume`` relies on to skip
    completed cells.  Append failures are absorbed by the journal itself
    (counted, never raised), so this sink can never take a run down.
    """

    _RECORDS = {STARTED: "job_start", FINISHED: "job_finish",
                FAILED: "job_fail", RETRIED: "job_retry",
                DRAINED: "job_drained", POOL_BROKEN: "pool_broken"}

    def __init__(self, journal) -> None:
        self.journal = journal

    def emit(self, event: JobEvent) -> None:
        rec = self._RECORDS.get(event.event)
        if rec is None:
            return
        fields: Dict[str, Any] = {"key": event.key, "label": event.label,
                                  "attempt": event.attempt}
        if event.cache is not None:
            fields["cache"] = event.cache
        if event.error is not None:
            fields["error"] = event.error
        self.journal.record(rec, **fields)


class FlightSink:
    """Telemetry sink feeding the process-wide repro.trace flight
    recorder: a bounded ring of recent scheduler events that is always
    on (appending to a deque, no I/O) and only hits disk when a crash
    path dumps it.  This is what makes a pool-broken / invariant /
    drain artifact readable — the last ~256 events before the fault.
    """

    def __init__(self, recorder) -> None:
        self.recorder = recorder

    def emit(self, event: JobEvent) -> None:
        self.recorder.note(
            "job." + event.event, key=event.key[:16], label=event.label,
            attempt=event.attempt,
            **({"error": event.error} if event.error else {}))


class JobRunner:
    """Execute SimJobs through the cache/scheduler/telemetry stack.

    ``execute`` is pluggable (module-level callable taking a SimJob) so
    tests can inject flaky or slow payloads; it defaults to
    :func:`repro.exec.job.execute_job`.
    """

    def __init__(self, options: Optional[ExecOptions] = None, *,
                 execute: Callable[[SimJob], Dict[str, Any]] = execute_job,
                 sinks: Sequence = (),
                 cache: Optional[ResultCache] = None) -> None:
        self.options = options or ExecOptions()
        if self.options.backend is not None:
            from repro.vec import BACKEND_ENV, resolve_backend

            # Validates the name (BackendError on a typo) and exports it
            # so both the serial path and forked pool workers see it.
            os.environ[BACKEND_ENV] = resolve_backend(self.options.backend)
        self.execute = execute
        self.extra_sinks = list(sinks)
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif self.options.cache:
            self.cache = (ResultCache(self.options.cache_dir)
                          if self.options.cache_dir else ResultCache())
        else:
            self.cache = None
        self.stats = RunTelemetry()
        #: Path of the most recent run's manifest.json (repro.perf), when
        #: ``options.manifest_dir`` is set and the write succeeded.
        self.last_manifest: Optional[str] = None
        #: Run id and journal path of the most recent run(), when
        #: journaling was active (``harness resume <last_run_id>``
        #: continues that run after a kill).
        self.last_run_id: Optional[str] = None
        self.last_journal: Optional[str] = None
        #: Span JSONL path of the most recent run(), when it was sampled
        #: (``harness spans <run_id>`` reads it via the manifest).
        self.last_spans: Optional[str] = None
        self._trace_opened = False
        self._drain = False
        #: repro.trace state for the duration of one run(): the sampled
        #: tracer (None → tracing off, the common case), the run-root
        #: span, the span sink path, and the flight-dump directory.
        self._tr = None
        self._run_span = None
        self._spans_path: Optional[str] = None
        self._flight_dir: Optional[str] = None
        self._flight_dumped: set = set()

    # -- graceful shutdown ---------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once a drain was requested; sticky across grids."""
        return self._drain

    def request_drain(self) -> None:
        """Ask the current (and any future) run to stop admitting work.

        Safe from signal handlers and other threads: it only sets a flag
        the run loops poll between jobs.  In-flight jobs finish and are
        recorded; jobs not yet started are marked ``drained`` and their
        result slot stays ``None``.
        """
        self._drain = True

    @contextlib.contextmanager
    def _graceful_signals(self):
        """SIGTERM/SIGINT -> drain, for the duration of one run().

        Only active when ``options.install_signal_handlers`` is set and
        we are on the main thread (the only place the signal module
        allows handler changes).  A second signal while already draining
        raises KeyboardInterrupt so a hung drain can still be escaped.
        """
        if (not self.options.install_signal_handlers
                or threading.current_thread() is not threading.main_thread()):
            yield
            return
        previous = {}

        def _on_signal(signum, frame):
            if self._drain:
                raise KeyboardInterrupt
            self.request_drain()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _on_signal)
            except (ValueError, OSError):  # non-main interpreter quirks
                pass
        try:
            yield
        finally:
            for signum, old in previous.items():
                try:
                    signal.signal(signum, old)
                except (ValueError, OSError):
                    pass

    # -- telemetry helpers ---------------------------------------------------
    def _emit(self, sink, event: str, job: SimJob, key: str,
              **extra) -> None:
        sink.emit(JobEvent(event=event, key=key, label=job.label,
                           timestamp=time.time(), **extra))

    @staticmethod
    def _trace_extra(job: SimJob) -> Dict[str, str]:
        """FINISHED-event extras for executed jobs: the per-job repro.obs
        trace path (when a trace directory is configured) and the
        effective simulation backend."""
        from repro.obs import job_trace_path, obs_trace_dir

        extra: Dict[str, str] = {}
        directory = obs_trace_dir()
        if directory:
            extra["trace"] = job_trace_path(directory, job.label)
        backend = JobRunner._effective_backend(job)
        if backend is not None:
            extra["backend"] = backend
        return extra

    @staticmethod
    def _effective_backend(job: SimJob) -> Optional[str]:
        """The backend a just-executed bar job actually ran on.

        Mirrors the dispatch in :func:`repro.harness.runner.run_bar`: a
        "vec" request downgrades to "interp" when the bar or replacement
        policy is outside the flat kernels, or a sanitizer/observer is
        attached — making vec fallbacks visible in telemetry rather than
        silent.  None for non-bar jobs (they have no backend choice).
        """
        from repro.exec.job import KIND_BAR

        if job.kind != KIND_BAR:
            return None
        from repro.harness.runner import bar_config
        from repro.obs import obs_enabled
        from repro.sanitize import sanitize_enabled
        from repro.vec import BackendError, resolve_backend, vec_supports

        try:
            backend = resolve_backend(None)
        except BackendError:  # unknown REPRO_BACKEND fails in run_bar too
            return None
        if backend != "vec":
            return "interp"
        cfg = job.config_dict()
        try:
            bar = bar_config(cfg.get("label", "N"))
        except ValueError:
            return None
        if (sanitize_enabled() or obs_enabled()
                or not vec_supports(bar, cfg.get("policy", "lru"))):
            return "interp"
        return "vec"

    def _header(self, total: int) -> Dict[str, Any]:
        """The run-header record for this invocation's telemetry stream."""
        meta = self.options.run_meta or {}
        return run_header_record(
            experiment=meta.get("experiment"),
            argv=meta.get("argv"),
            seed=meta.get("seed"),
            workers=self.options.jobs,
            jobs=total)

    def _open_journal(self, total: int):
        """Start the write-ahead journal for one run(), if configured.

        Returns ``(run_id, journal)`` — ``(None, None)`` when journaling
        is off or no journal directory resolves.  The run id is minted
        here (not at manifest-write time) so the journal and the manifest
        share one ``<root>/<run_id>/`` directory and a kill before the
        manifest still leaves a resumable run on disk.
        """
        root = self.options.journal_dir or self.options.manifest_dir
        if not self.options.journal or not root:
            return None, None
        from repro.durable.journal import (JOURNAL_NAME, RunJournal,
                                           header_record)
        from repro.perf.manifest import new_run_id

        meta = self.options.run_meta or {}
        run_id = new_run_id(meta.get("experiment"))
        journal = RunJournal(os.path.join(root, run_id, JOURNAL_NAME),
                             fsync=self.options.journal_fsync)
        journal.append(header_record(
            "exec_run", run_id=run_id, experiment=meta.get("experiment"),
            argv=meta.get("argv"), seed=meta.get("seed"),
            workers=self.options.jobs, jobs=total, started=time.time()))
        return run_id, journal

    def _build_sink(self, total: int, journal=None):
        sinks: List = [self.stats] + self.extra_sinks
        trace = None
        collector = None
        if journal is not None:
            sinks.append(JournalSink(journal))
        if self.options.trace_path:
            # First grid truncates any stale file; later grids of the
            # same runner (multi-grid experiments) append to the stream.
            trace = JsonlTraceSink(self.options.trace_path,
                                   header=self._header(total),
                                   mode="a" if self._trace_opened else "w")
            self._trace_opened = True
            sinks.append(trace)
        if self.options.manifest_dir:
            collector = CollectingSink()
            sinks.append(collector)
        if self.options.progress:
            sinks.append(ProgressPrinter(total))
        sinks.append(FlightSink(flight()))
        return (MultiSink(sinks) if sinks else NullSink()), trace, collector

    def _maybe_flight_dump(self, reason: str) -> None:
        """Dump the flight-recorder tail once per (run, reason).

        Only materializes when a destination is known — the run's own
        artifact directory, or ``REPRO_TRACE_FLIGHT_DIR`` — so library
        callers without run dirs never find stray crash files in cwd.
        """
        if reason in self._flight_dumped:
            return
        self._flight_dumped.add(reason)
        directory = self._flight_dir or os.environ.get(
            "REPRO_TRACE_FLIGHT_DIR")
        if directory:
            flight().dump(reason, directory)

    # -- main entry ----------------------------------------------------------
    def run(self, jobs: Sequence[SimJob],
            resume=None) -> List[Dict[str, Any]]:
        """Run *jobs* and return their result dicts in the same order.

        ``self.stats`` accumulates across calls (an experiment like
        ``sensitivity`` submits several grids through one runner); build a
        fresh JobRunner for independent accounting.

        *resume* is a :class:`repro.durable.RunState` (or anything with
        ``completed``/``attempts`` keyed by cache key): journal-completed
        cells are replayed from the cache without re-executing (a
        ``replayed`` event plus FINISHED with ``cache="replay"``), and
        re-run cells inherit their journaled attempt counts so the retry
        budget spans the interrupted run and the resume.  A completed
        cell whose cache entry was lost or quarantined silently re-runs.
        """
        run_id, journal = self._open_journal(len(jobs))
        meta = self.options.run_meta or {}
        self._tr = maybe_tracer(self.options.trace_sample,
                                self.options.trace_parent)
        root = self.options.journal_dir or self.options.manifest_dir
        if self._tr is not None and run_id is None and root:
            # Journaling is off but this run is sampled: mint the run id
            # here so the spans land in the same <root>/<run_id>/
            # directory the manifest will use.
            from repro.perf.manifest import new_run_id

            run_id = new_run_id(meta.get("experiment"))
        if run_id and root:
            self._flight_dir = os.path.join(root, run_id)
        self._flight_dumped = set()
        if self._tr is not None:
            self._spans_path = self.options.spans_path or (
                os.path.join(root, run_id, "spans.jsonl")
                if run_id and root else None)
            self._run_span = self._tr.start_span(
                "run", jobs=len(jobs), workers=self.options.jobs,
                **({"run_id": run_id} if run_id else {}),
                **({"experiment": meta["experiment"]}
                   if meta.get("experiment") else {}))
        sink, trace, collector = self._build_sink(len(jobs), journal)
        run_start = time.perf_counter()
        results: List[Optional[Dict[str, Any]]] = [None] * len(jobs)
        error: Optional[BaseException] = None
        completed = getattr(resume, "completed", None) or {}
        carried = dict(getattr(resume, "attempts", None) or {})
        try:
            with self._graceful_signals():
                keys = [job.cache_key() for job in jobs]
                if journal is not None:
                    jnl_span = (self._tr.start_span(
                        "journal.append", parent=self._run_span)
                        if self._tr is not None else None)
                    journal.record(
                        "run_start", run_id=run_id,
                        jobs=[{"key": key, "job": job.to_dict()}
                              for job, key in zip(jobs, keys)])
                    if jnl_span is not None:
                        jnl_span.finish()
                probe_span = (self._tr.start_span(
                    "cache.probe", parent=self._run_span)
                    if self._tr is not None else None)
                pending: List[int] = []
                attempts0: Dict[int, int] = {}
                for index, (job, key) in enumerate(zip(jobs, keys)):
                    self._emit(sink, QUEUED, job, key)
                    cached = self.cache.get(job) if self.cache else None
                    if cached is not None and key in completed:
                        results[index] = cached
                        self._emit(sink, REPLAYED, job, key)
                        self._emit(sink, FINISHED, job, key,
                                   cache="replay", wall=0.0)
                    elif cached is not None:
                        results[index] = cached
                        self._emit(sink, CACHE_HIT, job, key)
                        self._emit(sink, FINISHED, job, key, cache="hit",
                                   wall=0.0)
                    else:
                        pending.append(index)
                        if carried.get(key):
                            attempts0[index] = int(carried[key])
                if probe_span is not None:
                    probe_span.set_attr("hits", len(jobs) - len(pending))
                    probe_span.set_attr("pending", len(pending))
                    probe_span.finish()

                if pending:
                    if self.options.jobs <= 1:
                        self._run_serial(jobs, keys, pending, results, sink,
                                         attempts=attempts0 or None)
                    else:
                        self._run_parallel(jobs, keys, pending, results,
                                           sink,
                                           initial_attempts=attempts0)
            return results  # type: ignore[return-value]
        except BaseException as exc:
            error = exc
            raise
        finally:
            self.stats.wall += time.perf_counter() - run_start
            if journal is not None:
                status = ("failed" if error is not None
                          else "drained" if self._drain else "ok")
                journal.record("run_end", status=status,
                               finished=time.time())
                journal.close()
                self.stats.journal_errors += journal.errors
                self.last_run_id = run_id
                self.last_journal = (journal.path if journal.records_written
                                     else None)
            if trace is not None:
                trace.close()
            self.last_spans = (self._spans_path
                               if self._tr is not None else None)
            if collector is not None:
                mspan = (self._tr.start_span("manifest.write",
                                             parent=self._run_span)
                         if self._tr is not None else None)
                self._write_manifest(jobs, results, collector, error,
                                     run_id=run_id)
                if mspan is not None:
                    mspan.finish()
            if self._tr is not None:
                if self._run_span is not None:
                    self._run_span.finish(
                        "error" if error is not None else None)
                self._tr.flush(self._spans_path)
                self._tr = None
                self._run_span = None
                self._spans_path = None
            self._flight_dir = None

    def _write_manifest(self, jobs, results, collector, error,
                        run_id=None) -> None:
        """Cross-run observatory hook: persist this run's manifest.

        Imported lazily so repro.exec keeps no hard dependency on
        repro.perf; a manifest-write failure never masks the run itself.
        *run_id* ties the manifest to the run's journal directory when
        journaling was active.
        """
        from repro.perf.manifest import write_run_manifest

        try:
            self.last_manifest = write_run_manifest(
                self.options.manifest_dir, jobs=jobs, results=results,
                events=collector.events, runner=self,
                error=error, run_id=run_id)
        except OSError:
            self.last_manifest = None

    # -- serial path ---------------------------------------------------------
    def _run_serial(self, jobs, keys, pending, results, sink,
                    attempts: Optional[Dict[int, int]] = None,
                    span_mode: str = "serial") -> None:
        """Run *pending* inline.  *attempts* carries prior attempt counts
        (the pool-broken fallback path), so the retry budget bounds the
        total attempts a job gets across both execution modes.
        *span_mode* labels this path's repro.trace job spans — the
        pool-broken fallback re-parents its re-run jobs under the same
        run span with ``mode="serial_fallback"``."""
        cache_state = "miss" if self.cache else "off"
        for position, index in enumerate(pending):
            if self._drain:
                self._drain_indices(jobs, keys, pending[position:], results,
                                    sink, attempts)
                return
            job, key = jobs[index], keys[index]
            attempt = attempts.get(index, 0) if attempts else 0
            violation = None
            jspan = None
            if self._tr is not None:
                jspan = self._tr.start_span("job", parent=self._run_span,
                                            label=job.label, mode=span_mode)
                set_ambient(self._tr, jspan)
            try:
                while True:
                    self._emit(sink, STARTED, job, key, attempt=attempt)
                    try:
                        result, wall = _timed_call(self.execute, job)
                        break
                    except InvariantViolation as exc:
                        violation = exc
                        break
                    except TransientJobError as exc:
                        attempt += 1
                        if attempt > self.options.retries:
                            self._fail(sink, job, key, attempt, exc)
                        self._retry(sink, job, key, attempt, exc)
                    except Exception as exc:
                        self._fail(sink, job, key, attempt + 1, exc)
                if violation is not None:
                    if jspan is not None:
                        jspan.set_attr("violation", True)
                        jspan.finish("error")
                    results[index] = self._violation_result(
                        sink, job, key, attempt, violation)
                    continue
                timeout = self.options.timeout
                if timeout is not None and wall > timeout:
                    self._emit(sink, FAILED, job, key, attempt=attempt,
                               wall=wall, error="timeout")
                    raise JobTimeoutError(
                        f"job {job.label} took {wall:.2f}s, exceeding the "
                        f"{timeout:.2f}s per-job timeout (serial mode can "
                        f"only detect this after the fact; use --jobs >= 2 "
                        f"to preempt)")
                self._store(job, result)
                results[index] = result
                self._emit(sink, FINISHED, job, key, attempt=attempt,
                           wall=wall, cache=cache_state,
                           **self._trace_extra(job),
                           **({"span": jspan.span_id} if jspan else {}))
            finally:
                if jspan is not None:
                    clear_ambient()
                    jspan.set_attr("attempt", attempt)
                    if jspan.end is None:
                        jspan.finish(
                            "error" if sys.exc_info()[0] else None)

    # -- parallel path -------------------------------------------------------
    @staticmethod
    def _abort_pool(pool: ProcessPoolExecutor) -> None:
        """Stop a pool without waiting on in-flight (possibly hung) jobs."""
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass

    def _run_parallel(self, jobs, keys, pending, results, sink,
                      initial_attempts: Optional[Dict[int, int]] = None
                      ) -> None:
        cache_state = "miss" if self.cache else "off"
        workers = min(self.options.jobs, len(pending))
        timeout = self.options.timeout
        # Trace propagation across the pool boundary: forked workers
        # inherit the environment (the same route REPRO_SANITIZE and
        # REPRO_BACKEND take), so export this run's context before the
        # pool exists and restore afterwards.  Workers rebuild a tracer
        # from REPRO_TRACEPARENT, parent their sim spans to the run
        # span, and append to the shared spans file via O_APPEND.
        saved_env: Dict[str, Optional[str]] = {}
        if self._tr is not None:
            exports = {ENV_PARENT: self._tr.traceparent(self._run_span),
                       ENV_SAMPLE: "1",
                       ENV_SPANS: self._spans_path or ""}
            for name, value in exports.items():
                saved_env[name] = os.environ.get(name)
                if value:
                    os.environ[name] = value
                else:
                    os.environ.pop(name, None)
        pool = ProcessPoolExecutor(max_workers=workers)
        aborted = False
        jspans: Dict[int, Any] = {}
        try:
            futures = {}
            # Seed attempt counts carried in from a resumed run so the
            # retry budget bounds total attempts across both runs.
            attempts = {index: (initial_attempts or {}).get(index, 0)
                        for index in pending}
            for index in pending:
                self._emit(sink, STARTED, jobs[index], keys[index],
                           attempt=attempts[index])
                if self._tr is not None:
                    jspans[index] = self._tr.start_span(
                        "job", parent=self._run_span,
                        label=jobs[index].label, mode="pool")
                futures[index] = pool.submit(_timed_call, self.execute,
                                             jobs[index])
            # Collect in submission order; retries resubmit in place.
            try:
                for index in pending:
                    if self._drain and results[index] is None:
                        aborted = True
                        self._drain_pool(pool, jobs, keys, pending, futures,
                                         attempts, results, sink,
                                         cache_state)
                        return
                    job, key = jobs[index], keys[index]
                    violation = None
                    while True:
                        try:
                            result, wall = futures[index].result(
                                timeout=timeout)
                            break
                        except FutureTimeoutError:
                            aborted = True
                            self._emit(sink, FAILED, job, key,
                                       attempt=attempts[index],
                                       error="timeout")
                            self._abort_pool(pool)
                            raise JobTimeoutError(
                                f"job {job.label} produced no result within "
                                f"the {timeout:.2f}s per-job timeout; run "
                                f"aborted "
                                f"({sum(r is None for r in results)} jobs "
                                f"unfinished)") from None
                        except BrokenProcessPool:
                            raise  # handled below: fall back to serial
                        except InvariantViolation as exc:
                            violation = exc
                            break
                        except TransientJobError as exc:
                            attempts[index] += 1
                            if attempts[index] > self.options.retries:
                                aborted = True
                                self._abort_pool(pool)
                                self._fail(sink, job, key, attempts[index],
                                           exc)
                            self._retry(sink, job, key, attempts[index], exc)
                            self._emit(sink, STARTED, job, key,
                                       attempt=attempts[index])
                            futures[index] = pool.submit(_timed_call,
                                                         self.execute, job)
                        except Exception as exc:
                            aborted = True
                            self._abort_pool(pool)
                            self._fail(sink, job, key, attempts[index] + 1,
                                       exc)
                    jspan = jspans.pop(index, None)
                    if violation is not None:
                        if jspan is not None:
                            jspan.set_attr("violation", True)
                            jspan.set_attr("attempt", attempts[index])
                            jspan.finish("error")
                        results[index] = self._violation_result(
                            sink, job, key, attempts[index], violation)
                        continue
                    if jspan is not None:
                        jspan.set_attr("attempt", attempts[index])
                        jspan.finish()
                    self._store(job, result)
                    results[index] = result
                    self._emit(sink, FINISHED, job, key,
                               attempt=attempts[index], wall=wall,
                               cache=cache_state,
                               **self._trace_extra(job),
                               **({"span": jspan.span_id} if jspan else {}))
            except BrokenProcessPool as exc:
                # A worker died hard (OOM kill, crashed interpreter): the
                # pool and every in-flight future are poisoned.  Tear the
                # pool down and finish the remaining jobs serially — the
                # results already collected stand, and attempt counts carry
                # over so the retry budget still bounds total work.
                aborted = True
                self._emit(sink, POOL_BROKEN, job, key,
                           attempt=attempts.get(index, 0),
                           error=f"{type(exc).__name__}: {exc}")
                self._maybe_flight_dump("pool_broken")
                self._abort_pool(pool)
                # Close the dead pool's dispatch spans; the fallback
                # re-runs get fresh spans (mode="serial_fallback") under
                # the same run span, so the tree stays connected.
                for orphan in jspans.values():
                    orphan.set_attr("pool_broken", True)
                    orphan.finish("error")
                jspans.clear()
                unfinished = [i for i in pending if results[i] is None]
                self._run_serial(jobs, keys, unfinished, results, sink,
                                 attempts=attempts,
                                 span_mode="serial_fallback")
        finally:
            if not aborted:
                pool.shutdown(wait=True, cancel_futures=True)
            for name, value in saved_env.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    # -- graceful drain ------------------------------------------------------
    def _drain_indices(self, jobs, keys, indices, results, sink,
                       attempts: Optional[Dict[int, int]] = None) -> None:
        """Mark every unfinished job in *indices* as drained."""
        self._maybe_flight_dump("drain")
        for index in indices:
            if results[index] is not None:
                continue
            attempt = (attempts or {}).get(index, 0)
            self._emit(sink, DRAINED, jobs[index], keys[index],
                       attempt=attempt)

    def _drain_pool(self, pool, jobs, keys, pending, futures, attempts,
                    results, sink, cache_state) -> None:
        """Drain the parallel path: wait for in-flight futures, cancel the
        queued ones, harvest whatever completed, mark the rest drained."""
        self._maybe_flight_dump("drain")
        pool.shutdown(wait=True, cancel_futures=True)
        for index in pending:
            if results[index] is not None:
                continue
            future = futures.get(index)
            attempt = attempts.get(index, 0)
            if (future is not None and future.done()
                    and not future.cancelled()):
                exc = future.exception()
                if exc is None:
                    result, wall = future.result()
                    self._store(jobs[index], result)
                    results[index] = result
                    self._emit(sink, FINISHED, jobs[index], keys[index],
                               attempt=attempt, wall=wall,
                               cache=cache_state,
                               **self._trace_extra(jobs[index]))
                    continue
                if isinstance(exc, InvariantViolation):
                    results[index] = self._violation_result(
                        sink, jobs[index], keys[index], attempt, exc)
                    continue
                # Any other in-flight failure during a drain is recorded
                # as drained-with-error rather than aborting the flush.
                self._emit(sink, DRAINED, jobs[index], keys[index],
                           attempt=attempt,
                           error=f"{type(exc).__name__}: {exc}")
                continue
            self._emit(sink, DRAINED, jobs[index], keys[index],
                       attempt=attempt)

    # -- shared helpers ------------------------------------------------------
    def _violation_result(self, sink, job, key, attempt,
                          exc: InvariantViolation) -> Dict[str, Any]:
        """Convert an in-simulation invariant violation into a structured
        per-job failure record; the rest of the grid keeps running."""
        self._emit(sink, FAILED, job, key, attempt=attempt,
                   error=f"{type(exc).__name__}: {exc}",
                   violation=exc.to_dict())
        self._maybe_flight_dump("invariant_violation")
        return {"status": "invariant_violation", "job": job.to_dict(),
                "violation": exc.to_dict()}

    def _store(self, job: SimJob, result: Dict[str, Any]) -> None:
        if self.cache is not None:
            self.cache.put(job, result)

    def _retry(self, sink, job, key, attempt, exc) -> None:
        self._emit(sink, RETRIED, job, key, attempt=attempt,
                   error=f"{type(exc).__name__}: {exc}")
        time.sleep(self.options.backoff * (2 ** (attempt - 1)))

    def _fail(self, sink, job, key, attempts, exc) -> None:
        """Abort the run; *attempts* is the total number of attempts made."""
        self._emit(sink, FAILED, job, key, attempt=attempts - 1,
                   error=f"{type(exc).__name__}: {exc}")
        raise JobFailedError(
            f"job {job.label} failed after {attempts} attempt(s): "
            f"{type(exc).__name__}: {exc}") from exc
