"""The job model: one pure simulation cell and its content address.

A :class:`SimJob` captures everything that determines a simulation's
outcome — machine key, benchmark name, handler/mechanism spec, run sizes
and seed — and nothing else.  Because every simulator in this repository
is deterministic (see ``tests/test_determinism.py``), two jobs with equal
fields produce equal results, so the canonical serialization of those
fields is a sound content address: :meth:`SimJob.cache_key` hashes the
canonical JSON form together with :data:`SCHEMA_VERSION`.

:func:`execute_job` is the single module-level entry point the scheduler
ships to worker processes; it dispatches on ``SimJob.kind`` and returns a
plain JSON-able dict (what the result cache stores verbatim).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Bumped whenever job semantics or result layout change; stale cache
#: entries written under another version are invalidated on read.
SCHEMA_VERSION = 1

#: Job kinds understood by :func:`execute_job`.
KIND_BAR = "bar"
KIND_ACCESS_CONTROL = "access_control"
KIND_APP = "app"


def _canonical(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, no NaN laundering."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def _freeze(config: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Sort a config mapping into a hashable tuple of pairs."""
    out = []
    for key in sorted(config):
        value = config[key]
        if isinstance(value, Mapping):
            value = _freeze(value)
        out.append((key, value))
    return tuple(out)


def _thaw(config: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return {key: (_thaw(value) if isinstance(value, tuple)
                  and value and isinstance(value[0], tuple) else value)
            for key, value in config}


@dataclass(frozen=True)
class SimJob:
    """One schedulable simulation cell.

    ``config`` holds the kind-specific knobs (bar label, coherence method,
    machine parameter overrides, ...) as a sorted tuple of pairs so the
    job stays hashable and its serialization canonical.
    """

    kind: str
    machine: str
    benchmark: str
    instructions: int
    warmup: int
    seed: int = 0
    config: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    # -- constructors --------------------------------------------------------
    @classmethod
    def bar(cls, benchmark: str, machine: str, label: str,
            instructions: int, warmup: int, seed: int = 0,
            policy: str = "lru") -> "SimJob":
        """A figure bar: one (benchmark, machine, informing-config) run.

        *policy* names a replacement-registry entry; the default ``"lru"``
        is deliberately omitted from the config so every pre-registry
        cache key (and golden capture) remains reachable unchanged.
        """
        config: Dict[str, Any] = {"label": label}
        if policy != "lru":
            config["policy"] = policy
        return cls(kind=KIND_BAR, machine=machine, benchmark=benchmark,
                   instructions=instructions, warmup=warmup, seed=seed,
                   config=_freeze(config))

    @classmethod
    def app(cls, experiment: str, benchmark: str, machine: str,
            instructions: int, warmup: int, seed: int = 0,
            policy: str = "lru") -> "SimJob":
        """A §4.1 application-lab run (repro.apps.experiments).

        Same ``policy`` normalization as :meth:`bar`: the default
        ``"lru"`` stays out of the config so a policy sweep and the
        default run key differently only when results can differ.
        """
        config: Dict[str, Any] = {"experiment": experiment}
        if policy != "lru":
            config["policy"] = policy
        return cls(kind=KIND_APP, machine=machine, benchmark=benchmark,
                   instructions=instructions, warmup=warmup, seed=seed,
                   config=_freeze(config))

    @classmethod
    def access_control(cls, workload: str, method: str,
                       machine_params: Mapping[str, Any]) -> "SimJob":
        """A §4.3 coherence run: one (parallel kernel, method, machine)."""
        return cls(kind=KIND_ACCESS_CONTROL, machine="coherence",
                   benchmark=workload, instructions=0, warmup=0, seed=0,
                   config=_freeze({"method": method,
                                   "machine_params": dict(machine_params)}))

    # -- accessors -----------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable identity used in telemetry and progress lines."""
        cfg = self.config_dict()
        tag = (cfg.get("label") or cfg.get("method")
               or cfg.get("experiment") or self.kind)
        return f"{self.benchmark}/{self.machine}/{tag}"

    def config_dict(self) -> Dict[str, Any]:
        return _thaw(self.config)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "machine": self.machine,
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
            "config": self.config_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimJob":
        return cls(kind=data["kind"], machine=data["machine"],
                   benchmark=data["benchmark"],
                   instructions=data["instructions"], warmup=data["warmup"],
                   seed=data.get("seed", 0),
                   config=_freeze(data.get("config", {})))

    def cache_key(self) -> str:
        """Stable content address of this job (hex SHA-256).

        Derived from the canonical JSON of every outcome-determining field
        plus :data:`SCHEMA_VERSION` and the package version (so simulator
        changes shipped with a version bump can never replay stale
        results); identical fields give identical keys in any process, and
        any field change changes the key.
        """
        from repro import __version__

        payload = dict(self.to_dict(), schema=SCHEMA_VERSION,
                       repro=__version__)
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# -- execution ---------------------------------------------------------------

def _execute_bar(job: SimJob) -> Dict[str, Any]:
    from dataclasses import asdict

    from repro.harness.runner import bar_config, run_bar

    cfg = job.config_dict()
    result = run_bar(job.benchmark, job.machine, bar_config(cfg["label"]),
                     job.instructions, job.warmup, seed=job.seed,
                     policy=cfg.get("policy", "lru"))
    return asdict(result)


def _execute_access_control(job: SimJob) -> Dict[str, Any]:
    from repro.coherence import (
        AccessControlMethod,
        CoherenceMachineParams,
        run_access_control_experiment,
    )
    from repro.workloads.parallel import PARALLEL_KERNELS

    cfg = job.config_dict()
    machine = CoherenceMachineParams(**cfg["machine_params"])
    method = AccessControlMethod[cfg["method"]]
    outcome = run_access_control_experiment(
        PARALLEL_KERNELS[job.benchmark], method, machine=machine,
        name=job.benchmark)
    return {
        "workload": job.benchmark,
        "method": method.name,
        "execution_time": outcome.execution_time,
        "remote_invalidations": outcome.remote_invalidations,
    }


def _execute_app(job: SimJob) -> Dict[str, Any]:
    from repro.apps.experiments import run_app_experiment

    cfg = job.config_dict()
    return run_app_experiment(cfg["experiment"], job.benchmark,
                              machine=job.machine,
                              instructions=job.instructions,
                              warmup=job.warmup, seed=job.seed,
                              policy=cfg.get("policy", "lru"))


_EXECUTORS = {
    KIND_BAR: _execute_bar,
    KIND_ACCESS_CONTROL: _execute_access_control,
    KIND_APP: _execute_app,
}


def execute_job(job: SimJob) -> Dict[str, Any]:
    """Run one job to completion and return its JSON-able result dict.

    This is the function the scheduler submits to worker processes; it
    must stay module-level (picklable by reference) and side-effect free
    beyond the simulation itself.
    """
    try:
        executor = _EXECUTORS[job.kind]
    except KeyError:
        raise ValueError(f"unknown job kind {job.kind!r}; "
                         f"expected one of {sorted(_EXECUTORS)}") from None
    # repro.trace: one "sim.execute" span per executed job.  In the
    # serial path this nests under the engine's ambient job span; in a
    # pool worker it rebuilds context from REPRO_TRACEPARENT and
    # parents to the submitting run's span — the cross-process edge of
    # the trace tree.  Yields None (one attribute test) when untraced.
    from repro.trace import job_trace_span

    with job_trace_span("sim.execute", label=job.label, kind=job.kind):
        return executor(job)


def bar_result_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`repro.harness.runner.BarResult` from a job result."""
    from repro.harness.runner import BarResult

    return BarResult(**dict(data))
