"""``python -m repro.exec`` — manage the result cache.

Subcommands::

    python -m repro.exec cache stats    # location, entry count, size
    python -m repro.exec cache purge    # delete every cached result
    python -m repro.exec cache path     # print the cache directory
    python -m repro.exec cache prune --max-bytes 500M
                                        # evict oldest entries over the cap
    python -m repro.exec cache verify   # integrity-scan every entry
    python -m repro.exec cache repair   # ... and quarantine/drop the bad

The cache directory is ``~/.cache/repro-exec`` unless ``REPRO_CACHE_DIR``
or ``--dir`` says otherwise.  ``prune`` keeps the store bounded under
sustained service traffic: entries are evicted oldest-mtime first until
the store fits ``--max-bytes`` (suffixes K/M/G accepted; defaults to
``REPRO_CACHE_MAX_BYTES`` when set).  ``verify`` crc-checks every blob
and reports ok/corrupt/stale counts (exit 1 when corruption is found);
``repair`` additionally quarantines corrupt entries and deletes
stale-schema ones.  Both, like ``prune``, sweep aged-out ``.tmp.<pid>``
files left by writers killed mid-store.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec.cache import ResultCache, default_cache_dir, parse_size


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.exec",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    cache = sub.add_parser("cache",
                           help="inspect, prune or purge the result cache")
    cache.add_argument("action", choices=["stats", "purge", "path", "prune",
                                          "verify", "repair"])
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR or "
                            "~/.cache/repro-exec)")
    cache.add_argument("--max-bytes", default=None, metavar="SIZE",
                       help="size cap for prune; integer bytes with an "
                            "optional K/M/G suffix (default: "
                            "REPRO_CACHE_MAX_BYTES)")
    args = parser.parse_args(argv)

    store = ResultCache(args.dir) if args.dir else ResultCache()
    if args.action == "path":
        print(store.root)
    elif args.action == "stats":
        info = store.describe()
        print(f"cache dir   {info['dir']}")
        print(f"schema      v{info['schema']}")
        print(f"entries     {info['entries']}")
        print(f"size        {info['size_bytes']} bytes")
        if info["quarantined"]:
            print(f"quarantined {info['quarantined']}")
        if info["max_bytes"] is not None:
            print(f"size cap    {info['max_bytes']} bytes")
    elif args.action == "purge":
        removed = store.purge()
        print(f"purged {removed} cached result(s) from {store.root}")
    elif args.action == "prune":
        if args.max_bytes is not None:
            try:
                cap = parse_size(args.max_bytes)
            except ValueError as exc:
                parser.error(str(exc))
        elif store.max_bytes is not None:  # from REPRO_CACHE_MAX_BYTES
            cap = store.max_bytes
        else:
            parser.error("prune needs --max-bytes (or REPRO_CACHE_MAX_BYTES)")
        summary = store.prune(cap)
        print(f"pruned {summary['removed']} entr(y/ies), "
              f"{summary['freed_bytes']} bytes freed; "
              f"{summary['remaining_entries']} entr(y/ies) / "
              f"{summary['remaining_bytes']} bytes remain "
              f"(cap {summary['max_bytes']}); "
              f"{summary['tmp_swept']} stale tmp file(s) swept")
    elif args.action in ("verify", "repair"):
        summary = store.verify(repair=args.action == "repair")
        print(f"verified {summary['checked']} entr(y/ies): "
              f"{summary['ok']} ok, {summary['corrupt']} corrupt, "
              f"{summary['stale']} stale, "
              f"{summary['read_errors']} unreadable; "
              f"{summary['tmp_swept']} stale tmp file(s) swept")
        if summary["repair"]:
            print(f"repair: {summary['quarantined']} quarantined to "
                  f"{store.root}/quarantine, "
                  f"{summary['removed_stale']} stale entr(y/ies) removed")
        elif summary["corrupt"] or summary["stale"]:
            print("run `cache repair` to quarantine corrupt entries and "
                  "drop stale ones")
        # Unrepaired corruption is the only failing outcome: stale
        # entries are routine schema turnover, and repair leaves the
        # store clean by construction.
        if summary["corrupt"] and not summary["repair"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
