"""``python -m repro.exec`` — manage the result cache.

Subcommands::

    python -m repro.exec cache stats    # location, entry count, size
    python -m repro.exec cache purge    # delete every cached result
    python -m repro.exec cache path     # print the cache directory

The cache directory is ``~/.cache/repro-exec`` unless ``REPRO_CACHE_DIR``
or ``--dir`` says otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec.cache import ResultCache, default_cache_dir


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.exec",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    cache = sub.add_parser("cache", help="inspect or purge the result cache")
    cache.add_argument("action", choices=["stats", "purge", "path"])
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR or "
                            "~/.cache/repro-exec)")
    args = parser.parse_args(argv)

    store = ResultCache(args.dir) if args.dir else ResultCache()
    if args.action == "path":
        print(store.root)
    elif args.action == "stats":
        info = store.describe()
        print(f"cache dir   {info['dir']}")
        print(f"schema      v{info['schema']}")
        print(f"entries     {info['entries']}")
        print(f"size        {info['size_bytes']} bytes")
    elif args.action == "purge":
        removed = store.purge()
        print(f"purged {removed} cached result(s) from {store.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
