"""Machine-readable timing baseline: ``BENCH_harness.json``.

Every engine-backed CLI experiment appends/updates one entry keyed by
experiment name — wall time, worker count, job/cache/retry accounting —
so the repo accumulates a bench trajectory that scripts (and future
perf PRs) can diff without scraping stdout.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict

BENCH_SCHEMA = 1
DEFAULT_BENCH_PATH = "BENCH_harness.json"


def record_run(path, experiment: str, runner) -> Dict[str, Any]:
    """Merge one experiment's run stats from *runner* into the bench file.

    Returns the entry written.  The file maps experiment name → most
    recent run; corrupt or old-schema files are replaced wholesale.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError("stale bench schema")
    except (OSError, ValueError):
        data = {"schema": BENCH_SCHEMA, "experiments": {}}

    stats = runner.stats.as_dict()
    entry = dict(stats)
    entry["workers"] = runner.options.jobs
    entry["cache_enabled"] = runner.cache is not None
    entry["timestamp"] = time.time()
    data["experiments"][experiment] = entry
    data["updated"] = entry["timestamp"]
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry
