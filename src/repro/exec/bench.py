"""Machine-readable timing baseline: ``BENCH_harness.json``.

Every engine-backed CLI experiment appends/updates one entry keyed by
experiment name — wall time, worker count, job/cache/retry accounting —
so the repo accumulates a bench trajectory that scripts (and future
perf PRs) can diff without scraping stdout.

Schema 2 keeps **cold and warm runs apart**: a run that simulated every
job (no cache hits) lands under ``"cold"``, a run served at least partly
from the content-addressed cache lands under ``"warm"``.  The two walls
measure different things — simulator speed vs cache/orchestration
overhead — and schema 1 silently overwrote one with the other, which made
the trajectory useless for perf comparisons the moment anyone ran with a
warm cache.

Writes are **atomic** (tmp file + ``os.replace`` in the same directory)
so a killed run never leaves a truncated baseline, and the file — with
its ``updated`` stamp — is only rewritten when an entry's values
actually changed (timestamps aside), so CI diffs of ``BENCH_*.json``
show real movement instead of churn.  Independently of the snapshot
file, every recorded run appends one line to ``BENCH_trajectory.jsonl``
next to it (see :mod:`repro.perf.trajectory`): the snapshot answers
"what is the current baseline", the trajectory answers "how did we get
here".
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

BENCH_SCHEMA = 2
DEFAULT_BENCH_PATH = "BENCH_harness.json"

#: Cache-temperature slots within one experiment's bench entry.
TEMPERATURES = ("cold", "warm")

#: Entry fields that change on every run without the run being different.
VOLATILE_FIELDS = ("timestamp",)


def run_temperature(stats_dict: Dict[str, Any]) -> str:
    """Classify a run: ``"warm"`` if any job came from cache else ``"cold"``."""
    return "warm" if stats_dict.get("cache_hits", 0) > 0 else "cold"


def atomic_write_json(path, data: Any) -> None:
    """Write *data* as JSON via a same-directory tmp file + rename.

    ``os.replace`` is atomic on POSIX, so readers (and git) only ever see
    the old file or the complete new one — never a truncated write.
    """
    path = Path(path)
    payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=str(path.parent or Path(".")),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(payload)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _stable(entry: Dict[str, Any]) -> Dict[str, Any]:
    """An entry with its volatile fields dropped, for change detection."""
    return {k: v for k, v in entry.items() if k not in VOLATILE_FIELDS}


def record_run(path, experiment: str, runner) -> Dict[str, Any]:
    """Merge one experiment's run stats from *runner* into the bench file.

    Returns the entry recorded.  The file maps experiment name →
    ``{"cold": ..., "warm": ...}`` (each slot holds the most recent run of
    that temperature; a cold run never clobbers the warm baseline and vice
    versa).  Corrupt or old-schema files are replaced wholesale.  When the
    new entry matches the existing slot in everything but its timestamp,
    the file is left untouched (``updated`` keeps its old value); the
    trajectory line is appended either way.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError("stale bench schema")
    except (OSError, ValueError):
        data = {"schema": BENCH_SCHEMA, "experiments": {}}

    stats = runner.stats.as_dict()
    entry = dict(stats)
    entry["workers"] = runner.options.jobs
    entry["cache_enabled"] = runner.cache is not None
    entry["timestamp"] = time.time()
    temperature = run_temperature(entry)
    entry["temperature"] = temperature
    slot = data["experiments"].setdefault(experiment, {})
    changed = _stable(slot.get(temperature, {})) != _stable(entry)
    if changed:
        slot[temperature] = entry
        data["updated"] = entry["timestamp"]
        atomic_write_json(path, data)

    from repro.perf.trajectory import append_bench_run
    append_bench_run(path, experiment, entry)
    return entry
