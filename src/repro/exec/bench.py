"""Machine-readable timing baseline: ``BENCH_harness.json``.

Every engine-backed CLI experiment appends/updates one entry keyed by
experiment name — wall time, worker count, job/cache/retry accounting —
so the repo accumulates a bench trajectory that scripts (and future
perf PRs) can diff without scraping stdout.

Schema 2 keeps **cold and warm runs apart**: a run that simulated every
job (no cache hits) lands under ``"cold"``, a run served at least partly
from the content-addressed cache lands under ``"warm"``.  The two walls
measure different things — simulator speed vs cache/orchestration
overhead — and schema 1 silently overwrote one with the other, which made
the trajectory useless for perf comparisons the moment anyone ran with a
warm cache.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict

BENCH_SCHEMA = 2
DEFAULT_BENCH_PATH = "BENCH_harness.json"

#: Cache-temperature slots within one experiment's bench entry.
TEMPERATURES = ("cold", "warm")


def run_temperature(stats_dict: Dict[str, Any]) -> str:
    """Classify a run: ``"warm"`` if any job came from cache else ``"cold"``."""
    return "warm" if stats_dict.get("cache_hits", 0) > 0 else "cold"


def record_run(path, experiment: str, runner) -> Dict[str, Any]:
    """Merge one experiment's run stats from *runner* into the bench file.

    Returns the entry written.  The file maps experiment name →
    ``{"cold": ..., "warm": ...}`` (each slot holds the most recent run of
    that temperature; a cold run never clobbers the warm baseline and vice
    versa).  Corrupt or old-schema files are replaced wholesale.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError("stale bench schema")
    except (OSError, ValueError):
        data = {"schema": BENCH_SCHEMA, "experiments": {}}

    stats = runner.stats.as_dict()
    entry = dict(stats)
    entry["workers"] = runner.options.jobs
    entry["cache_enabled"] = runner.cache is not None
    entry["timestamp"] = time.time()
    temperature = run_temperature(entry)
    entry["temperature"] = temperature
    slot = data["experiments"].setdefault(experiment, {})
    slot[temperature] = entry
    data["updated"] = entry["timestamp"]
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry
