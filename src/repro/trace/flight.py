"""Always-on flight recorder: a bounded ring of recent engine events.

Unlike spans (sampled, off by default), the flight recorder is always
cheap — appending a small dict to a ``deque(maxlen=...)`` — and only
materializes to disk when something goes wrong: a sanitizer invariant
fires, a pool worker dies, a journal append fails, or SIGTERM drain
begins.  The dump is a small JSON artifact next to the run's other
artifacts so every chaos fault class leaves a trace you can read.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from threading import Lock
from typing import Any, Deque, Dict, List, Optional

FLIGHT_CAPACITY = 256
ENV_FLIGHT_DIR = "REPRO_TRACE_FLIGHT_DIR"

__all__ = ["FlightRecorder", "flight", "FLIGHT_CAPACITY", "ENV_FLIGHT_DIR"]


class FlightRecorder:
    """Bounded in-memory ring buffer of recent events."""

    def __init__(self, capacity: int = FLIGHT_CAPACITY) -> None:
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = Lock()
        self.records = 0
        self.dropped = 0
        self.dumps = 0
        self.dump_errors = 0

    def note(self, kind: str, **fields: Any) -> None:
        """Record one event.  Never raises; O(1)."""
        record = {"t": time.time(), "kind": kind}
        if fields:
            record.update(fields)
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
            self.records += 1

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            items = list(self._ring)
        if n is not None:
            items = items[-n:]
        return items

    def stats(self) -> Dict[str, int]:
        with self._lock:
            depth = len(self._ring)
        return {
            "capacity": self.capacity,
            "depth": depth,
            "records": self.records,
            "dropped": self.dropped,
            "dumps": self.dumps,
            "dump_errors": self.dump_errors,
        }

    def dump(self, reason: str, directory: Optional[str] = None) -> Optional[str]:
        """Write the ring's tail to ``flight_<reason>_<pid>.json``.

        *directory* defaults to ``$REPRO_TRACE_FLIGHT_DIR`` then the
        current directory.  Returns the artifact path, or None on
        failure (never raises — this runs on crash paths).
        """
        directory = directory or os.environ.get(ENV_FLIGHT_DIR) or "."
        safe = "".join(c if (c.isalnum() or c in "-_") else "_" for c in reason) or "unknown"
        path = os.path.join(directory, f"flight_{safe}_{os.getpid()}.json")
        payload = {
            "kind": "flight_dump",
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "stats": self.stats(),
            "events": self.tail(),
        }
        try:
            os.makedirs(directory, exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
            self.dumps += 1
            return path
        except OSError:
            self.dump_errors += 1
            return None


_FLIGHT: Optional[FlightRecorder] = None


def flight() -> FlightRecorder:
    """The process-wide flight recorder (created on first use)."""
    global _FLIGHT
    if _FLIGHT is None:
        _FLIGHT = FlightRecorder()
    return _FLIGHT
