"""Spans and the in-process tracer.

A :class:`Span` is one timed operation inside a trace; a
:class:`Tracer` owns every span started in this process for one trace
and serializes them to a JSONL file on :meth:`Tracer.flush`.  Spans
use ``time.time()`` (not the monotonic clock) so spans recorded in
different processes land on a shared axis and a single request's tree
lines up across the gateway, the exec engine, and pool workers.

Flushing appends each process's spans with a single ``O_APPEND``
write, which the kernel makes atomic per call — concurrent workers can
share one ``spans.jsonl`` without interleaving partial lines (same
idiom as the durable journal).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from .context import TraceContext, new_span_id, new_trace_id

SPAN_SCHEMA = 1

__all__ = ["SPAN_SCHEMA", "Span", "Tracer"]


class Span:
    """One timed operation.  Mutable until :meth:`finish`."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attrs",
        "status",
        "pid",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}
        self.status = "ok"
        self.pid = os.getpid()

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, sampled=True)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def finish(self, status: Optional[str] = None) -> None:
        if self.end is None:
            self.end = time.time()
        if status is not None:
            self.status = status

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "schema": SPAN_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "status": self.status,
            "pid": self.pid,
        }
        if self.parent_id:
            record["parent_id"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _SpanScope:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.finish("error" if exc_type is not None else None)


class Tracer:
    """Collects spans for one trace inside one process.

    Thread-safe: serve shards and engine threads may start spans
    concurrently.  The tracer never raises from the hot path — flush
    failures disable further flushing and are surfaced via
    :attr:`flush_errors`.
    """

    def __init__(self, context: Optional[TraceContext] = None) -> None:
        if context is None:
            self.trace_id = new_trace_id()
            # A fresh trace: our root spans have no parent.
            self.remote_parent_id: Optional[str] = None
        else:
            self.trace_id = context.trace_id
            # The propagated span id is the *parent* for our root spans.
            self.remote_parent_id = context.span_id
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._flushed = 0
        self.flush_errors = 0

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Start a span.  ``parent`` wins over ``parent_id`` over the
        remote parent this tracer was created from."""
        if parent is not None:
            pid = parent.span_id
        elif parent_id is not None:
            pid = parent_id
        else:
            pid = self.remote_parent_id
        span = Span(self.trace_id, new_span_id(), pid, name, time.time(), attrs or None)
        with self._lock:
            self._spans.append(span)
        return span

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> _SpanScope:
        """``with tracer.span("cache.probe") as s: ...`` — finishes on
        exit, status="error" if the body raised."""
        return _SpanScope(self.start_span(name, parent=parent, parent_id=parent_id, **attrs))

    def traceparent(self, span: Optional[Span] = None) -> str:
        from .context import format_traceparent

        span_id = span.span_id if span is not None else (self.remote_parent_id or new_span_id())
        return format_traceparent(TraceContext(self.trace_id, span_id, sampled=True))

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def flush(self, path: Optional[str]) -> int:
        """Append all finished-or-not spans not yet flushed to *path*.

        Returns the number of spans written.  Unfinished spans are
        closed at flush time so a crash/drain still yields a readable
        file.  Never raises.
        """
        if not path:
            return 0
        with self._lock:
            pending = self._spans[self._flushed :]
            if not pending:
                return 0
            self._flushed = len(self._spans)
        try:
            lines = []
            for span in pending:
                if span.end is None:
                    span.finish("unfinished")
                lines.append(json.dumps(span.to_record(), sort_keys=True))
            payload = ("\n".join(lines) + "\n").encode("utf-8")
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            return len(pending)
        except OSError:
            self.flush_errors += 1
            return 0
