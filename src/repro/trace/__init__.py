"""repro.trace — end-to-end span tracing for one logical request.

Follows the zero-cost-when-off pattern established by ``repro.sanitize``
and ``repro.obs``: tracing is enabled per-run by a sampling rate
(``--trace-sample`` / ``REPRO_TRACE_SAMPLE``, default 0.0) and every
instrumentation site guards with ``if tracer is not None`` (or the
equivalent ambient check), so the disabled path costs one attribute
test.

Propagation:

* **HTTP** — the W3C ``traceparent`` header carries the context from
  ``repro.serve``'s client through the gateway (see
  :mod:`repro.trace.context`).
* **Process pool** — the exec engine exports ``REPRO_TRACEPARENT`` /
  ``REPRO_TRACE_SPANS`` before creating the pool, and workers rebuild
  a tracer from the environment on first traced job
  (:func:`job_trace_span`), appending to the same ``spans.jsonl`` via
  atomic ``O_APPEND`` writes.
* **In-process** — a thread-local *ambient* (tracer, current span)
  lets deep code (``run_bar``, obs stamping) attach spans without
  threading tracer arguments through every call.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Any, Iterator, Optional, Tuple

from .context import (
    TraceContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from .flight import ENV_FLIGHT_DIR, FlightRecorder, flight
from .span import SPAN_SCHEMA, Span, Tracer

ENV_SAMPLE = "REPRO_TRACE_SAMPLE"
ENV_PARENT = "REPRO_TRACEPARENT"
ENV_SPANS = "REPRO_TRACE_SPANS"

__all__ = [
    "ENV_SAMPLE",
    "ENV_PARENT",
    "ENV_SPANS",
    "ENV_FLIGHT_DIR",
    "SPAN_SCHEMA",
    "Span",
    "Tracer",
    "TraceContext",
    "FlightRecorder",
    "flight",
    "new_trace_id",
    "new_span_id",
    "parse_traceparent",
    "format_traceparent",
    "trace_sample",
    "maybe_tracer",
    "set_ambient",
    "clear_ambient",
    "ambient",
    "ambient_span",
    "job_trace_span",
]


def trace_sample(explicit: Optional[float] = None) -> float:
    """Effective sampling rate in [0, 1]; malformed env values mean off."""
    if explicit is not None:
        rate = explicit
    else:
        raw = os.environ.get(ENV_SAMPLE, "")
        if not raw:
            return 0.0
        try:
            rate = float(raw)
        except ValueError:
            return 0.0
    return min(1.0, max(0.0, rate))


def maybe_tracer(
    sample: Optional[float] = None,
    parent: Optional[str] = None,
) -> Optional[Tracer]:
    """A Tracer if this run is sampled, else None.

    Head-based sampling: when *parent* (a ``traceparent`` header or the
    ``REPRO_TRACEPARENT`` env value) carries a valid context, its
    sampled flag is the decision — sampled parents are continued,
    unsampled parents disable tracing regardless of the local rate.
    Without a parent, a coin weighted by the sampling rate decides.
    """
    if parent is None:
        parent = os.environ.get(ENV_PARENT)
    ctx = parse_traceparent(parent)
    if ctx is not None:
        if not ctx.sampled:
            return None
        return Tracer(ctx)
    rate = trace_sample(sample)
    if rate <= 0.0:
        return None
    if rate < 1.0 and random.random() >= rate:
        return None
    return Tracer()


# --------------------------------------------------------------------------
# Ambient (thread-local) trace state.

_AMBIENT = threading.local()


def set_ambient(tracer: Optional[Tracer], span: Optional[Span]) -> None:
    _AMBIENT.tracer = tracer
    _AMBIENT.span = span


def clear_ambient() -> None:
    _AMBIENT.tracer = None
    _AMBIENT.span = None


def ambient() -> Tuple[Optional[Tracer], Optional[Span]]:
    return getattr(_AMBIENT, "tracer", None), getattr(_AMBIENT, "span", None)


def ambient_span() -> Optional[Span]:
    return getattr(_AMBIENT, "span", None)


# --------------------------------------------------------------------------
# Worker-side instrumentation.

_WORKER_LOCK = threading.Lock()
_WORKER_TRACER: Optional[Tracer] = None
_WORKER_PARENT: Optional[str] = None


def _worker_tracer() -> Optional[Tracer]:
    """Tracer rebuilt from the environment inside a pool worker.

    Cached per (process, REPRO_TRACEPARENT value): the engine exports a
    fresh parent per run, so a long-lived worker reused across runs
    re-keys correctly.  Returns None when the env carries no sampled
    context — the common (untraced) case costs one dict lookup.
    """
    global _WORKER_TRACER, _WORKER_PARENT
    parent = os.environ.get(ENV_PARENT)
    if not parent:
        return None
    with _WORKER_LOCK:
        if _WORKER_PARENT != parent:
            _WORKER_PARENT = parent
            _WORKER_TRACER = maybe_tracer(parent=parent)
        return _WORKER_TRACER


class _JobSpanScope:
    """Context manager wrapping one job execution in a span.

    Chooses the ambient tracer when present (serial path / serve
    shard), else a worker tracer derived from the environment (pool
    path).  Worker-owned spans are flushed to ``REPRO_TRACE_SPANS``
    after every job so a killed worker loses at most the in-flight job.
    """

    __slots__ = ("_tracer", "_span", "_owns_ambient", "_worker_owned", "_saved")

    def __init__(self, name: str, **attrs: Any) -> None:
        tracer, parent = ambient()
        self._worker_owned = False
        self._saved: Tuple[Optional[Tracer], Optional[Span]] = (None, None)
        if tracer is None:
            tracer = _worker_tracer()
            self._worker_owned = tracer is not None
            parent = None
        self._tracer = tracer
        if tracer is None:
            self._span = None
            self._owns_ambient = False
            return
        self._span = tracer.start_span(name, parent=parent, **attrs)
        self._owns_ambient = True

    def __enter__(self) -> Optional[Span]:
        if self._span is not None and self._owns_ambient:
            self._saved = ambient()
            set_ambient(self._tracer, self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is None:
            return
        if self._owns_ambient:
            set_ambient(*self._saved)
        self._span.finish("error" if exc_type is not None else None)
        if self._worker_owned and self._tracer is not None:
            self._tracer.flush(os.environ.get(ENV_SPANS))


def job_trace_span(name: str, **attrs: Any) -> _JobSpanScope:
    """Span around one simulator job; yields None when tracing is off."""
    return _JobSpanScope(name, **attrs)
