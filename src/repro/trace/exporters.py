"""Span file readers and export formats.

``read_spans`` tolerates torn tails (the file may be appended to by a
process that was SIGKILLed mid-write of a *final* partial line) by
skipping undecodable lines and reporting how many were skipped.

Two export formats:

* Chrome ``trace_event`` JSON — load in ``chrome://tracing`` / Perfetto.
* OTLP-compatible JSON — the ``resourceSpans`` shape OpenTelemetry
  collectors ingest, so the spans can leave the repo without new deps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

__all__ = ["read_spans", "spans_to_chrome", "spans_to_otlp"]


def read_spans(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read a spans.jsonl file -> (records, bad_line_count)."""
    records: List[Dict[str, Any]] = []
    bad = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if not isinstance(record, dict) or "span_id" not in record:
                bad += 1
                continue
            records.append(record)
    return records, bad


def spans_to_chrome(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace_event JSON: one complete ("X") event per span."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        start = float(span.get("start", 0.0))
        end = float(span.get("end", start))
        args: Dict[str, Any] = {
            "trace_id": span.get("trace_id"),
            "span_id": span.get("span_id"),
            "status": span.get("status", "ok"),
        }
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        args.update(span.get("attrs") or {})
        events.append(
            {
                "name": span.get("name", "?"),
                "ph": "X",
                "ts": start * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "pid": span.get("pid", 0),
                "tid": span.get("pid", 0),
                "cat": "repro.trace",
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _otlp_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def spans_to_otlp(spans: List[Dict[str, Any]], service_name: str = "repro") -> Dict[str, Any]:
    """OTLP/JSON ``resourceSpans`` payload (nanosecond timestamps)."""
    otlp_spans: List[Dict[str, Any]] = []
    for span in spans:
        start = float(span.get("start", 0.0))
        end = float(span.get("end", start))
        attrs = [
            {"key": key, "value": _otlp_value(value)}
            for key, value in sorted((span.get("attrs") or {}).items())
        ]
        attrs.append({"key": "process.pid", "value": _otlp_value(span.get("pid", 0))})
        record: Dict[str, Any] = {
            "traceId": span.get("trace_id", ""),
            "spanId": span.get("span_id", ""),
            "name": span.get("name", "?"),
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(int(start * 1e9)),
            "endTimeUnixNano": str(int(end * 1e9)),
            "attributes": attrs,
            "status": {"code": 2 if span.get("status") == "error" else 1},
        }
        if span.get("parent_id"):
            record["parentSpanId"] = span["parent_id"]
        otlp_spans.append(record)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {"key": "service.name", "value": {"stringValue": service_name}}
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.trace", "version": "1"},
                        "spans": otlp_spans,
                    }
                ],
            }
        ]
    }
