"""W3C-traceparent-style trace context.

A :class:`TraceContext` is the unit of propagation: a 128-bit trace id
shared by every span in one logical request, the span id of the caller
(so the receiving side can parent correctly), and the head-based
sampling decision.  The wire format is the W3C ``traceparent`` header::

    00-<32 hex trace id>-<16 hex span id>-<2 hex flags>

Parsing is deliberately tolerant: a malformed or foreign header yields
``None`` rather than an error, so a bad client can never break a
request (ISSUE satellite: malformed/foreign traceparent tolerated).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

TRACEPARENT_VERSION = "00"

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "parse_traceparent",
    "format_traceparent",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Immutable propagation context: who we are inside which trace."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A context for a new span under this one (same trace)."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; return None for anything malformed.

    Accepts any version byte (future-proof per the W3C spec) but
    rejects wrong field counts, wrong lengths, non-hex fields, and the
    all-zero trace/span ids the spec declares invalid.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) or set(trace_id) == {"0"}:
        return None
    if len(span_id) != 16 or not _is_hex(span_id) or set(span_id) == {"0"}:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id.lower(), span_id.lower(), sampled)


def format_traceparent(ctx: TraceContext) -> str:
    flags = "01" if ctx.sampled else "00"
    return f"{TRACEPARENT_VERSION}-{ctx.trace_id}-{ctx.span_id}-{flags}"
