"""Reproduction of "Informing Memory Operations: Providing Memory
Performance Feedback in Modern Processors" (Horowitz, Martonosi, Mowry,
Smith — ISCA 1996).

An informing memory operation is a load/store fused with a conditional
branch-and-link taken only on a primary-cache miss, giving software a
fine-grained, low-overhead view of its own memory behaviour.  The package
provides the paper's two machine models (in-order 21164-like,
out-of-order R10000-like), both informing mechanisms (condition code and
low-overhead trap), the software clients of Section 4.1, and the
Section 4.3 coherence case study, plus the harness that regenerates every
table and figure in the evaluation.

Start with :mod:`repro.harness` (machine configs + experiment runners) or
the examples/ directory; DESIGN.md maps the paper onto the code and
EXPERIMENTS.md records paper-vs-measured results.
"""

__version__ = "1.0.0"
