"""Kill-and-resume: rebuild a run's state from its journal and finish it.

``python -m repro.harness resume <run_id>`` is the user-facing half of
the write-ahead journal: it loads ``<runs_root>/<run_id>/journal.jsonl``,
reconstructs the exact grid the dead run was executing (every
:class:`~repro.exec.SimJob` is serialized into the journal's
``run_start`` record), and re-runs it through a fresh
:class:`~repro.exec.JobRunner` with the journal's completion state as
the resume plan:

* cells the journal marks finished are *replayed* — served from the
  result cache without re-executing (each one a ``replayed`` telemetry
  event, counted in the resumed run's manifest), so a resumed grid's
  numbers are digit-exact with an uninterrupted run by construction;
* cells that were in flight or never started re-run with their journaled
  attempt counts carried over, so the retry budget bounds total attempts
  across the original run and every resume;
* a finished cell whose cache entry was lost or quarantined simply
  re-runs — the journal is a skip-list hint, never a source of results.

Resuming a resume works the same way: each resumed run writes its own
journal under its own run id, with ``resumed_from`` linking the chain in
the manifest.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.durable.journal import (
    JOURNAL_NAME,
    check_header,
    read_records,
)

#: Journal kind written by the exec engine (see ``JobRunner``).
EXEC_KIND = "exec_run"


class JournalError(RuntimeError):
    """A run journal could not be located, parsed or trusted."""


@dataclass
class RunState:
    """Everything the journal knows about one (possibly dead) run."""

    run_id: str
    path: str
    experiment: Optional[str] = None
    argv: Optional[List[str]] = None
    seed: Optional[int] = None
    workers: int = 1
    #: ``[{"key": <cache key>, "job": <SimJob.to_dict()>}, ...]`` in grid
    #: order, from the ``run_start`` record.
    job_records: List[Dict[str, Any]] = field(default_factory=list)
    #: cache key -> cache state ("hit"/"miss"/"replay") at finish time.
    completed: Dict[str, str] = field(default_factory=dict)
    #: cache key -> highest attempt number the journal saw started.
    attempts: Dict[str, int] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    drained: Set[str] = field(default_factory=set)
    #: ``run_end`` status when the run closed cleanly; None after a kill.
    ended: Optional[str] = None
    truncated: bool = False
    bad_lines: int = 0

    @property
    def keys(self) -> List[str]:
        return [record["key"] for record in self.job_records]

    @property
    def incomplete(self) -> List[str]:
        return [key for key in self.keys if key not in self.completed]

    def jobs(self) -> List:
        """Rebuild the grid's SimJobs in their original order."""
        from repro.exec import SimJob

        return [SimJob.from_dict(record["job"])
                for record in self.job_records]


def journal_path_for(ref: str, runs_root: Optional[str] = None) -> str:
    """Resolve *ref* (run id, run dir, or journal path) to a file path."""
    from repro.perf.manifest import runs_root as resolve_root

    candidates = [
        ref,
        os.path.join(ref, JOURNAL_NAME),
        os.path.join(resolve_root(runs_root), ref, JOURNAL_NAME),
    ]
    for candidate in candidates:
        if os.path.isfile(candidate):
            return candidate
    raise JournalError(
        f"no run journal found for {ref!r} (tried the path itself, "
        f"<ref>/{JOURNAL_NAME}, and "
        f"{resolve_root(runs_root)}/<ref>/{JOURNAL_NAME})")


def load_run_state(ref: str, runs_root: Optional[str] = None) -> RunState:
    """Read and fold a run journal into a :class:`RunState`.

    Tolerant of a killed writer: a torn tail is trusted up to the last
    intact record (``truncated``/``bad_lines`` report what was dropped).
    An unreadable header — wrong kind, wrong schema, or corruption in
    the very first line — raises :class:`JournalError`.
    """
    path = journal_path_for(ref, runs_root)
    records, bad_lines, truncated = read_records(path)
    if not records or not check_header(records, EXEC_KIND):
        raise JournalError(
            f"{path} does not lead with a readable exec-run journal "
            f"header; it is either corrupt from the start or written by "
            f"an incompatible version")
    head = records[0]
    state = RunState(
        run_id=head.get("run_id") or os.path.basename(os.path.dirname(path)),
        path=path,
        experiment=head.get("experiment"),
        argv=head.get("argv"),
        seed=head.get("seed"),
        workers=head.get("workers") or 1,
        truncated=truncated,
        bad_lines=bad_lines,
    )
    for record in records[1:]:
        rec, key = record.get("rec"), record.get("key")
        if rec == "run_start":
            state.job_records = [
                entry for entry in record.get("jobs", ())
                if isinstance(entry, dict) and "key" in entry
                and "job" in entry]
        elif rec == "job_start":
            attempt = int(record.get("attempt") or 0)
            state.attempts[key] = max(state.attempts.get(key, 0), attempt)
        elif rec == "job_finish":
            state.completed[key] = record.get("cache") or "miss"
        elif rec == "job_fail":
            state.failed[key] = record.get("error") or "failed"
        elif rec == "job_drained":
            state.drained.add(key)
        elif rec == "run_end":
            state.ended = record.get("status")
    return state


# -- CLI ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness resume",
        description="continue a killed grid run exactly where it died: "
                    "journal-completed cells replay from the result "
                    "cache, the rest re-run with carried attempt counts")
    parser.add_argument("run_id",
                        help="run id, run directory, or journal path of "
                             "the interrupted run")
    parser.add_argument("--runs-root", default=None, metavar="DIR",
                        help="manifest/journal root (default results/runs "
                             "or REPRO_RUNS_DIR)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: the original "
                             "run's worker count)")
    parser.add_argument("--backend", choices=("interp", "vec"),
                        default=None,
                        help="simulation backend for the re-run cells "
                             "(results are digit-exact either way)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the completed figure results as JSON")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="append per-job telemetry events as JSONL")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS", help="per-job timeout")
    parser.add_argument("--no-cache", action="store_true",
                        help="re-run every cell (disables replay; only "
                             "useful to re-validate a suspect cache)")
    parser.add_argument("--progress", action="store_true",
                        help="live progress meter on stderr")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the rendered figure (summary only)")
    return parser


def resume_main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        state = load_run_state(args.run_id, args.runs_root)
    except JournalError as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 2
    if not state.job_records:
        print(f"resume: journal {state.path} holds no run_start record "
              f"(the run died before the grid was announced); there is "
              f"nothing to resume — re-run the original command",
              file=sys.stderr)
        return 2
    if state.truncated:
        print(f"resume: journal tail is torn ({state.bad_lines} "
              f"distrusted line(s)); resuming from the intact prefix",
              file=sys.stderr)
    if state.ended == "ok" and not state.incomplete:
        print(f"resume: run {state.run_id} already completed cleanly; "
              f"replaying all {len(state.job_records)} cell(s) from the "
              f"cache anyway")

    jobs = state.jobs()
    drifted = sum(1 for job, record in zip(jobs, state.job_records)
                  if job.cache_key() != record["key"])
    if drifted:
        print(f"resume: {drifted} cell key(s) changed since the journal "
              f"was written (code/schema drift); those cells re-run from "
              f"scratch", file=sys.stderr)

    from repro.exec import ExecOptions, JobRunner
    from repro.perf.manifest import runs_root as resolve_root

    options = ExecOptions(
        jobs=args.jobs or state.workers or 1,
        cache=not args.no_cache,
        timeout=args.timeout,
        trace_path=args.trace,
        progress=args.progress,
        manifest_dir=resolve_root(args.runs_root),
        backend=args.backend,
        run_meta={"experiment": state.experiment,
                  "argv": ["resume", state.run_id],
                  "seed": state.seed,
                  "resumed_from": state.run_id},
    )
    runner = JobRunner(options)
    results = runner.run(jobs, resume=state)

    failures = sum(1 for result in results
                   if result is None
                   or result.get("status") == "invariant_violation")
    if not args.quiet:
        _render(state, results)
    print(runner.stats.summary())
    print(f"resumed {state.run_id}: {runner.stats.replayed} cell(s) "
          f"replayed from the journal, {runner.stats.executed} "
          f"re-executed, {failures} failed")
    if runner.last_manifest:
        print(f"run manifest: {runner.last_manifest}")
    if args.json and failures == 0:
        _export_json(state, results, args.json)
        print(f"results written to {args.json}")
    return 1 if failures else 0


def _figure_result(state: RunState, results):
    """Rebuild a FigureResult when every cell is a bar job, else None."""
    from repro.exec import bar_result_from_dict
    from repro.exec.job import KIND_BAR
    from repro.harness.runner import FigureResult

    if any(record["job"].get("kind") != KIND_BAR
           for record in state.job_records):
        return None
    figure = FigureResult(name=state.experiment or "resumed")
    figure.bars = [bar_result_from_dict(row) for row in results]
    figure.normalize()
    return figure


def _render(state: RunState, results) -> None:
    if any(result is None or result.get("status") == "invariant_violation"
           for result in results):
        return
    figure = _figure_result(state, results)
    if figure is None:
        return
    from repro.harness import report

    print(report.render_figure(
        figure, f"{figure.name} (resumed from {state.run_id})"))


def _export_json(state: RunState, results, path: str) -> None:
    import json

    figure = _figure_result(state, results)
    if figure is not None:
        from repro.harness import export

        payload = export.figure_to_json(figure)
    else:
        payload = json.dumps({"run_id": state.run_id, "results": results},
                             indent=1, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(payload)
