"""The write-ahead run journal: crash-safe, append-only, self-checking.

A :class:`RunJournal` is an append-only JSONL file in which every line is
a crc32-framed record::

    <crc32 hex8> <canonical JSON payload>\n

The crc is computed over the exact payload bytes, so a torn tail (a
writer SIGKILLed mid-``write``), a truncated file, or a flipped byte is
detected on read instead of being half-parsed.  :func:`read_records`
scans a journal conservatively: it stops at the first record that fails
the frame check and reports how much it trusted — everything before the
bad record is intact (appends never rewrite earlier bytes), everything
after is unknown and treated as never-happened, which for a write-ahead
log is always the safe direction (work is re-done, never skipped).

Durability is configurable per journal (:data:`FSYNC_POLICIES`):

* ``"always"`` — fsync after every append (the default: a record that
  was reported written survives a power loss);
* ``"batch"`` — fsync every :data:`BATCH_FSYNC_INTERVAL` appends and on
  close (bounded loss window, cheaper under high record rates);
* ``"off"`` — flush to the OS only (survives a process kill, not a
  machine crash).

``REPRO_JOURNAL_FSYNC`` overrides the default policy process-wide.

Append failures (ENOSPC, a yanked filesystem, a read-only mount) never
raise out of :meth:`RunJournal.append`: the journal counts the error,
disables itself, warns once, and every later append reports ``False`` —
the run it is journaling must not die for the sake of its log.  Callers
surface ``journal.errors`` as a named, counted outcome in their own
telemetry.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import Any, Dict, List, Optional, Tuple

#: Journal layout version, embedded in the header record; readers reject
#: versions they do not understand instead of mis-parsing.
JOURNAL_SCHEMA = 1

#: Discriminator record type written as the first line of every journal.
HEADER_RECORD = "journal_header"

FSYNC_POLICIES = ("always", "batch", "off")
ENV_FSYNC = "REPRO_JOURNAL_FSYNC"
BATCH_FSYNC_INTERVAL = 16

#: Conventional journal file name inside a run directory.
JOURNAL_NAME = "journal.jsonl"


def fsync_policy(explicit: Optional[str] = None) -> str:
    """Resolve the fsync policy: *explicit*, ``REPRO_JOURNAL_FSYNC``, or
    ``"always"``.  Unknown names raise ValueError (a typo must not
    silently weaken durability)."""
    policy = explicit or os.environ.get(ENV_FSYNC, "").strip() or "always"
    if policy not in FSYNC_POLICIES:
        raise ValueError(f"unknown fsync policy {policy!r}; "
                         f"choose from {FSYNC_POLICIES}")
    return policy


def frame(record: Dict[str, Any]) -> str:
    """One journal line for *record*: ``<crc32 hex8> <canonical json>``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"),
                         allow_nan=False)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n"


def unframe(line: str) -> Optional[Dict[str, Any]]:
    """Parse one journal line; None if the frame or crc check fails."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, payload = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class RunJournal:
    """Append-only, crc-framed, fsync-policied record log.

    The journal opens lazily on the first append (so constructing one
    for a run that journals nothing costs no I/O) and never raises from
    :meth:`append`: I/O failures disable the journal, are counted in
    ``errors``, and surface as a one-time RuntimeWarning.
    """

    def __init__(self, path: str, fsync: Optional[str] = None,
                 mode: str = "a") -> None:
        self.path = str(path)
        self.policy = fsync_policy(fsync)
        self.errors = 0
        self.records_written = 0
        self._mode = mode
        self._fh = None
        self._disabled = False
        self._warned = False
        self._since_fsync = 0

    @property
    def disabled(self) -> bool:
        """True once an I/O failure stopped this journal for good."""
        return self._disabled

    # -- writing -------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> bool:
        """Durably append one record; False if the journal is disabled.

        A failed append (ENOSPC, EROFS, a vanished directory) counts in
        ``errors`` and permanently disables the journal — the caller's
        run continues, merely without crash-safety from here on.
        """
        if self._disabled:
            return False
        try:
            if self._fh is None:
                os.makedirs(os.path.dirname(self.path) or ".",
                            exist_ok=True)
                self._fh = open(self.path, self._mode)
            self._fh.write(frame(record))
            self._fh.flush()
            self._maybe_fsync()
        except (OSError, ValueError) as exc:
            self._fail(exc)
            return False
        self.records_written += 1
        return True

    def record(self, rec: str, **fields: Any) -> bool:
        """Append ``{"rec": rec, **fields}``."""
        return self.append(dict(fields, rec=rec))

    def _maybe_fsync(self) -> None:
        if self.policy == "off":
            return
        self._since_fsync += 1
        if (self.policy == "always"
                or self._since_fsync >= BATCH_FSYNC_INTERVAL):
            os.fsync(self._fh.fileno())
            self._since_fsync = 0

    def _fail(self, exc: BaseException) -> None:
        self.errors += 1
        self._disabled = True
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"run journal at {self.path} is not writable "
                f"({type(exc).__name__}: {exc}); the run continues "
                f"without crash-safety", RuntimeWarning, stacklevel=3)
            # Crash-path observability (repro.trace): note the failure
            # in the always-on flight ring and dump its tail next to
            # the journal — a dead disk under the journal is exactly
            # the moment post-hoc diagnosis needs the last few events.
            try:
                from repro.trace import flight

                recorder = flight()
                recorder.note("journal.append_failed", path=self.path,
                              error=f"{type(exc).__name__}: {exc}")
                recorder.dump("journal_failed",
                              os.path.dirname(self.path) or ".")
            except Exception:
                pass  # never let diagnostics take down the run
        self._close_quietly()

    def _close_quietly(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def close(self) -> None:
        """Flush, fsync (unless ``off``) and close the journal file."""
        if self._fh is None:
            return
        try:
            self._fh.flush()
            if self.policy != "off":
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            self._fail(exc)
            return
        self._close_quietly()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_records(path: str) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Scan a journal file; returns ``(records, bad_lines, truncated)``.

    The scan is conservative: it stops at the first line that fails the
    crc frame (a torn tail, a flipped byte, a half-written record) and
    reports ``truncated=True`` with ``bad_lines`` counting how many
    trailing lines were distrusted.  Records before the first bad line
    are exactly the journal's durable prefix.  A missing file reads as
    an empty, untruncated journal.
    """
    try:
        with open(path) as fh:
            lines = fh.read().split("\n")
    except FileNotFoundError:
        return [], 0, False
    if lines and lines[-1] == "":
        lines.pop()
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        record = unframe(line)
        if record is None:
            return records, len(lines) - index, True
        records.append(record)
    return records, 0, False


def header_record(kind: str, **fields: Any) -> Dict[str, Any]:
    """The self-describing first record of a journal file."""
    return dict(fields, rec=HEADER_RECORD, kind=kind,
                schema=JOURNAL_SCHEMA)


def check_header(records: List[Dict[str, Any]], kind: str) -> bool:
    """True when *records* lead with a compatible header for *kind*."""
    if not records:
        return False
    head = records[0]
    return (head.get("rec") == HEADER_RECORD and head.get("kind") == kind
            and head.get("schema") == JOURNAL_SCHEMA)
