"""Crash-safe execution: write-ahead run journals and kill-and-resume.

``repro.durable`` is the durability layer under the exec engine and the
serve gateway: :mod:`repro.durable.journal` provides the crc32-framed
append-only journal both of them write, and :mod:`repro.durable.resume`
turns a dead run's journal back into a finished figure
(``python -m repro.harness resume <run_id>``).
"""

from repro.durable.journal import (
    BATCH_FSYNC_INTERVAL,
    ENV_FSYNC,
    FSYNC_POLICIES,
    HEADER_RECORD,
    JOURNAL_NAME,
    JOURNAL_SCHEMA,
    RunJournal,
    check_header,
    frame,
    fsync_policy,
    header_record,
    read_records,
    unframe,
)
from repro.durable.resume import (
    EXEC_KIND,
    JournalError,
    RunState,
    journal_path_for,
    load_run_state,
    resume_main,
)

__all__ = [
    "BATCH_FSYNC_INTERVAL",
    "ENV_FSYNC",
    "EXEC_KIND",
    "FSYNC_POLICIES",
    "HEADER_RECORD",
    "JOURNAL_NAME",
    "JOURNAL_SCHEMA",
    "JournalError",
    "RunJournal",
    "RunState",
    "check_header",
    "frame",
    "fsync_policy",
    "header_record",
    "journal_path_for",
    "load_run_state",
    "read_records",
    "resume_main",
    "unframe",
]
