"""Counter / histogram registry backing the observability layer.

Metrics are the cheap always-aggregated half of the obs subsystem: a
trace answers "what happened at cycle N", the registry answers "how was
it distributed" without replaying anything.  Everything here is plain
Python integers and dicts — JSON-able with no conversion step.

Histograms use power-of-two buckets: ``record(v)`` lands in the bucket
whose lower bound is the largest power of two <= v (0 gets its own
bucket), which is the right shape for miss latencies and handler
lengths — both span two orders of magnitude and only the coarse shape
matters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class Counter:
    """A named monotonically-increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Power-of-two bucketed value distribution.

    Buckets are keyed by their lower bound (0, 1, 2, 4, 8, ...); counts
    plus ``total``/``count`` give the mean without storing samples.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        bucket = 0 if value <= 0 else 1 << (value.bit_length() - 1)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": round(self.mean, 3),
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def render(self, width: int = 40) -> List[str]:
        """ASCII rows ``[lo, 2*lo) ####... count`` for the report."""
        if not self.buckets:
            return ["  (empty)"]
        peak = max(self.buckets.values())
        rows = []
        for lo, n in sorted(self.buckets.items()):
            hi = 1 if lo == 0 else lo * 2
            bar = "#" * max(1, round(width * n / peak))
            rows.append(f"  [{lo:>6},{hi:>6}) {bar} {n}")
        return rows


class Registry:
    """A flat name -> Counter/Histogram store.

    ``counter(name)`` / ``histogram(name)`` create on first use, so hook
    code never pre-declares; ``to_dict()`` is the metrics.json payload.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.counters(),
            "histograms": {name: h.to_dict() for name, h
                           in sorted(self._histograms.items())},
        }


def top_n(heat: Dict[int, int], n: int = 5) -> List[Tuple[int, int]]:
    """The *n* hottest (key, count) pairs, hottest first, ties by key."""
    return sorted(heat.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
