"""The :class:`Observer`: cycle-stamped event capture + live metrics.

Mirrors the :class:`repro.sanitize.Sanitizer` attachment pattern: the
observer is wired into a core (or a bare hierarchy) by setting the
``_obs`` slot on each component, and every hook site in the simulator
costs exactly one ``if self._obs is not None`` identity test when
tracing is off.  All hooks are strictly read-only with respect to
simulator state — they never touch recency order, MSHR bookkeeping or
pipeline structures — so a traced run is bit-exact with an untraced one
(the obs-smoke CI job replays the full golden ``figure2 --quick`` grid
under ``REPRO_OBS=1`` to prove it).

The observer keeps three things:

* ``events`` — the ordered list of cycle-stamped event dicts (see
  :mod:`repro.obs.events` for the taxonomy);
* ``metrics`` — a :class:`repro.obs.metrics.Registry` of counters and
  histograms (miss latency, handler length, MSHR occupancy);
* dedicated structures a flat registry does not fit: per-set conflict
  heat per cache, and the MSHR occupancy high-water timeline.

``reset()`` is called at the cores' warm-up boundary (alongside the
statistics reset), so a run's trace covers exactly the measured region
and event counts reconcile with the reported aggregates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as ev


class Observer:
    """One run's tracing + metrics state.

    Args:
        trace: capture the per-event list.  False keeps only metrics —
            the cheap mode the golden-parity smoke uses, and what plain
            ``REPRO_OBS=1`` without a trace directory enables.
    """

    def __init__(self, trace: bool = True) -> None:
        self.trace = trace
        self.cycle = 0
        self.events: List[Dict[str, Any]] = []
        from repro.obs.metrics import Registry
        self.metrics = Registry()
        #: cache name -> {set index -> evictions} (conflict heat).
        self.conflict_heat: Dict[str, Dict[int, int]] = {}
        #: (cycle, occupancy) appended whenever MSHR occupancy reaches a
        #: new high-water mark within the observed region.
        self.mshr_timeline: List[Tuple[int, int]] = []
        self._mshr_high = 0
        # Open informing-handler commit run: [start_cycle, committed].
        self._handler_run: Optional[List[int]] = None

    # -- attachment ----------------------------------------------------------
    def attach(self, core) -> Any:
        """Wire this observer into *core*, its engine and its hierarchy."""
        self.attach_hierarchy(core.hierarchy)
        core.engine._obs = self
        return core

    def attach_hierarchy(self, hierarchy) -> Any:
        """Wire this observer into a memory hierarchy's components."""
        hierarchy._obs = self
        hierarchy.l1._obs = self
        hierarchy.l2._obs = self
        hierarchy.mshrs._obs = self
        return hierarchy

    def reset(self) -> None:
        """Warm-up boundary: drop everything observed so far."""
        self.events.clear()
        from repro.obs.metrics import Registry
        self.metrics = Registry()
        self.conflict_heat.clear()
        self.mshr_timeline.clear()
        self._mshr_high = 0
        self._handler_run = None

    def finish(self) -> None:
        """End of run: close any handler run still open at the last commit."""
        self._close_handler_run(self.cycle)

    # -- access outcomes (hierarchy) -----------------------------------------
    def on_access(self, cycle: int) -> None:
        """Every demand/prefetch data access, before its outcome is known."""
        self.cycle = cycle
        self.metrics.counter("accesses").inc()

    def on_l1_hit(self, line_addr: int, is_write: bool) -> None:
        self.metrics.counter(ev.L1_HIT).inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.L1_HIT,
                                "line": line_addr, "write": is_write})

    def on_l1_miss(self, line_addr: int, level: int, start: int, ready: int,
                   mshr_id: Optional[int]) -> None:
        self.metrics.counter(ev.L1_MISS).inc()
        self.metrics.counter("l2.hit" if level == 2 else "l2.miss").inc()
        self.metrics.histogram("miss_latency").record(ready - start)
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.L1_MISS,
                                "line": line_addr, "level": level,
                                "start": start, "ready": ready,
                                "mshr": mshr_id})

    def on_l1_merge(self, line_addr: int, mshr_id: int, ready: int) -> None:
        self.metrics.counter(ev.L1_MERGE).inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.L1_MERGE,
                                "line": line_addr, "mshr": mshr_id,
                                "ready": ready})

    def on_stream_buffer(self, line_addr: int, arrived: bool) -> None:
        """A demand access satisfied from a Jouppi stream buffer."""
        if arrived:
            self.metrics.counter(ev.L1_HIT).inc()
        else:
            self.metrics.counter(ev.L1_MISS).inc()
        if self.trace:
            kind = ev.L1_HIT if arrived else ev.L1_MISS
            self.events.append({"cycle": self.cycle, "kind": kind,
                                "line": line_addr, "via": "stream"})

    # -- tag-store state changes (cache) -------------------------------------
    def on_cache_fill(self, cache, set_index: int, line_addr: int,
                      victim) -> None:
        self.metrics.counter(ev.CACHE_FILL).inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.CACHE_FILL,
                                "cache": cache.name, "set": set_index,
                                "line": line_addr})
        if victim is not None:
            self.metrics.counter(ev.CACHE_EVICT).inc()
            heat = self.conflict_heat.setdefault(cache.name, {})
            heat[set_index] = heat.get(set_index, 0) + 1
            if self.trace:
                self.events.append({"cycle": self.cycle,
                                    "kind": ev.CACHE_EVICT,
                                    "cache": cache.name, "set": set_index,
                                    "line": victim.line_addr,
                                    "dirty": victim.dirty})

    def on_cache_invalidate(self, cache, set_index: int,
                            line_addr: int) -> None:
        self.metrics.counter(ev.CACHE_INVAL).inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.CACHE_INVAL,
                                "cache": cache.name, "set": set_index,
                                "line": line_addr})

    # -- MSHR lifetime --------------------------------------------------------
    def _note_occupancy(self, occupancy: int) -> None:
        self.metrics.histogram("mshr_occupancy").record(occupancy)
        if occupancy > self._mshr_high:
            self._mshr_high = occupancy
            self.mshr_timeline.append((self.cycle, occupancy))

    def on_mshr_alloc(self, entry, occupancy: int) -> None:
        self.metrics.counter(ev.MSHR_ALLOC).inc()
        self._note_occupancy(occupancy)
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.MSHR_ALLOC,
                                "mshr": entry.mshr_id,
                                "line": entry.line_addr,
                                "occupancy": occupancy})

    def on_mshr_merge(self, entry) -> None:
        self.metrics.counter(ev.MSHR_MERGE).inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.MSHR_MERGE,
                                "mshr": entry.mshr_id,
                                "line": entry.line_addr,
                                "merged": entry.merged})

    def on_mshr_fill(self, entry, occupancy: int) -> None:
        self.metrics.counter(ev.MSHR_FILL).inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.MSHR_FILL,
                                "mshr": entry.mshr_id,
                                "line": entry.line_addr,
                                "occupancy": occupancy})

    def on_mshr_release(self, entry, squashed: bool,
                        occupancy: int) -> None:
        self.metrics.counter(ev.MSHR_RELEASE).inc()
        if squashed:
            self.metrics.counter("mshr.squashed").inc()
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.MSHR_RELEASE,
                                "mshr": entry.mshr_id,
                                "line": entry.line_addr,
                                "squashed": squashed,
                                "occupancy": occupancy})

    # -- informing mechanism --------------------------------------------------
    def on_trap_fire(self, inst, handler_len: int) -> None:
        self.metrics.counter(ev.TRAP_FIRE).inc()
        self.metrics.histogram("handler_injected").record(handler_len)
        if self.trace:
            self.events.append({"cycle": self.cycle, "kind": ev.TRAP_FIRE,
                                "pc": inst.pc, "addr": inst.addr,
                                "handler_len": handler_len})

    def on_handler_commit(self, cycle: int) -> None:
        """One handler-body instruction committed/graduated."""
        self.cycle = cycle
        if self._handler_run is None:
            self._handler_run = [cycle, 1]
        else:
            self._handler_run[1] += 1

    def on_app_commit(self, cycle: int) -> None:
        """One application instruction committed — closes a handler run."""
        self.cycle = cycle
        if self._handler_run is not None:
            self._close_handler_run(cycle)

    def _close_handler_run(self, cycle: int) -> None:
        run = self._handler_run
        if run is None:
            return
        self._handler_run = None
        start, committed = run
        self.metrics.counter(ev.TRAP_RETURN).inc()
        self.metrics.histogram("handler_committed").record(committed)
        if self.trace:
            self.events.append({"cycle": cycle, "kind": ev.TRAP_RETURN,
                                "start": start, "committed": committed})

    # -- graduation-slot classes ----------------------------------------------
    def on_slots(self, cycle: int, busy: int, lost: int,
                 cache_blame: bool) -> None:
        """One pipeline cycle's graduation-slot accounting (metrics only:
        a per-cycle trace event would dwarf everything else combined)."""
        metrics = self.metrics
        metrics.counter("slots.cycles").inc()
        if busy:
            metrics.counter("slots.busy").inc(busy)
        if lost:
            metrics.counter("slots.cache_stall" if cache_blame
                            else "slots.other_stall").inc(lost)

    # -- summaries -------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Event-kind counters (the reconciliation surface for tests)."""
        return self.metrics.counters()
