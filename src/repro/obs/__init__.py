"""repro.obs — cycle-stamped event tracing and metrics for the simulators.

The observability layer the paper's premise implies the simulator itself
should have: informing operations give *software* memory-performance
feedback; ``repro.obs`` gives the *experimenter* the same per-reference
visibility.  An :class:`Observer` attaches to a core exactly like the
:mod:`repro.sanitize` sanitizer — one ``if self._obs is not None``
identity test per hook site, zero cost when off — and records
cycle-stamped structured events (cache hits/misses/fills/evictions,
MSHR lifetimes, informing trap entry/exit), counter and histogram
metrics, per-set conflict heat, and the MSHR occupancy high-water
timeline.  Exporters serialize traces as JSONL or Chrome
``trace_event`` JSON; ``python -m repro.harness report`` renders the
text report.

Enable per-run with ``run_bar(..., observe=Observer())``, or for a whole
harness invocation (including pool workers, which inherit the
environment) with ``--trace-events DIR`` / ``REPRO_OBS=1``:

* ``REPRO_OBS=1`` — attach an observer to every simulated cell
  (metrics only unless a trace directory is set);
* ``REPRO_OBS_DIR=DIR`` — also capture full event traces and write
  ``<benchmark>_<machine>_<label>.events.jsonl`` + ``*.metrics.json``
  per cell under ``DIR`` (implies ``REPRO_OBS=1``).

Observation is strictly read-only: traced runs are bit-exact with
untraced ones (CI replays the golden ``figure2 --quick`` grid under
tracing to enforce this).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.events import EVENT_KINDS, make_event
from repro.obs.export import (
    chrome_trace,
    parse_openmetrics,
    read_jsonl,
    to_openmetrics,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
    write_run_artifacts,
)
from repro.obs.metrics import Counter, Histogram, Registry, top_n
from repro.obs.observer import Observer
from repro.obs.report import render_report, report_main, summarize

#: Environment variable that enables observation ("1"/"true"/"yes").
ENV_VAR = "REPRO_OBS"
#: Directory for per-run trace artifacts; setting it implies ENV_VAR.
ENV_DIR = "REPRO_OBS_DIR"

__all__ = [
    "ENV_DIR",
    "ENV_VAR",
    "EVENT_KINDS",
    "Counter",
    "Histogram",
    "Observer",
    "Registry",
    "chrome_trace",
    "job_trace_path",
    "make_event",
    "maybe_observer",
    "obs_enabled",
    "obs_trace_dir",
    "parse_openmetrics",
    "read_jsonl",
    "render_report",
    "report_main",
    "summarize",
    "to_openmetrics",
    "top_n",
    "write_chrome_trace",
    "write_jsonl",
    "write_openmetrics",
    "write_run_artifacts",
]


def obs_enabled() -> bool:
    """True when the environment requests observation."""
    if os.environ.get(ENV_DIR, "").strip():
        return True
    return os.environ.get(ENV_VAR, "").strip().lower() in ("1", "true", "yes")


def obs_trace_dir() -> Optional[str]:
    """The per-run trace-artifact directory, or None for metrics-only."""
    return os.environ.get(ENV_DIR, "").strip() or None


def maybe_observer(explicit: Optional[bool] = None) -> Optional[Observer]:
    """A fresh :class:`Observer`, or None when observation is off.

    *explicit* overrides the environment in both directions (tests pass
    False to pin observation off regardless of the environment).  Event
    capture is enabled when a trace directory is configured; otherwise
    the observer aggregates metrics only.
    """
    enabled = obs_enabled() if explicit is None else explicit
    if not enabled:
        return None
    return Observer(trace=explicit is True or obs_trace_dir() is not None)


def job_trace_path(directory: str, label: str) -> str:
    """The ``*.events.jsonl`` path a job labelled *label* writes under
    *directory* (slashes in the label become underscores)."""
    return os.path.join(directory,
                        label.replace("/", "_") + ".events.jsonl")
