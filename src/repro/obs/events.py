"""The event taxonomy: every kind a trace can contain, and what it means.

An event is a plain dict with at least ``{"cycle": int, "kind": str}``
plus kind-specific fields; keeping events as dicts makes the JSONL and
Chrome ``trace_event`` exporters trivial and lets the report layer
consume a live run and a re-loaded trace file identically.

Kinds mirror where the simulator's aggregate counters are incremented,
so a trace always reconciles with the run's end-of-run statistics (the
test suite asserts this): one ``l1.hit`` per ``MemStats.l1_hits``, one
``l1.miss`` per primary miss, one ``l1.merge`` per secondary miss, one
``trap.fire`` per handler invocation, and so on.
"""

from __future__ import annotations

from typing import Any, Dict

# -- access outcomes (emitted by memory/hierarchy.py) -------------------------
L1_HIT = "l1.hit"            # demand access satisfied by the L1 tag store
L1_MISS = "l1.miss"          # primary demand miss (level: 2=L2 hit, 3=memory)
L1_MERGE = "l1.merge"        # secondary miss merged into an in-flight MSHR

# -- tag-store state changes (emitted by memory/cache.py) ---------------------
CACHE_FILL = "cache.fill"    # a line installed into a tag store
CACHE_EVICT = "cache.evict"  # the victim a fill displaced (dirty => writeback)
CACHE_INVAL = "cache.invalidate"  # an explicit invalidation removed a line

# -- MSHR lifetime (emitted by memory/mshr.py) --------------------------------
MSHR_ALLOC = "mshr.alloc"    # primary miss allocated a register
MSHR_MERGE = "mshr.merge"    # secondary miss merged into a register
MSHR_FILL = "mshr.fill"      # the register's fill completed
MSHR_RELEASE = "mshr.release"  # extended-lifetime graduate/squash release

# -- informing mechanism (emitted by core/engine.py and the run loops) --------
TRAP_FIRE = "trap.fire"      # a miss handler was entered (handler_len injected)
TRAP_RETURN = "trap.return"  # the handler's last instruction committed

#: kind -> one-line meaning, for documentation and report footers.
EVENT_KINDS: Dict[str, str] = {
    L1_HIT: "demand access hit the primary data cache",
    L1_MISS: "primary demand miss (field 'level': 2 = L2 hit, 3 = memory)",
    L1_MERGE: "secondary miss merged into an outstanding line fetch",
    CACHE_FILL: "line installed into a tag store (field 'cache' names it)",
    CACHE_EVICT: "fill victim displaced (field 'dirty' means writeback)",
    CACHE_INVAL: "line removed by an explicit invalidation",
    MSHR_ALLOC: "MSHR allocated for a primary miss (field 'occupancy')",
    MSHR_MERGE: "secondary miss recorded on an MSHR",
    MSHR_FILL: "an MSHR's fill completed",
    MSHR_RELEASE: "extended-lifetime MSHR release (field 'squashed')",
    TRAP_FIRE: "informing miss handler entered (field 'handler_len')",
    TRAP_RETURN: "handler body finished committing (field 'committed')",
}


def make_event(cycle: int, kind: str, **fields: Any) -> Dict[str, Any]:
    """Build one cycle-stamped event dict (helper for tests and tools)."""
    event = {"cycle": cycle, "kind": kind}
    event.update(fields)
    return event
