"""The ``report`` subcommand: render a text report from a trace or live run.

Everything is computed from the event list alone — never from simulator
counters — so the same code path serves a re-loaded ``*.events.jsonl``
trace (``--trace-file``) and a live single-cell run (``--benchmark /
--machine / --label``).  In live mode the simulator's own aggregate
counters are printed alongside as a cross-check: the event-derived miss
breakdown must reproduce the cell's ``l1_miss_rate`` exactly, which is
what ``tests/test_obs_report.py`` asserts.

Usage::

    python -m repro.harness report --trace-file traces/compress_ooo_S10.events.jsonl
    python -m repro.harness report <run_id> [--cell SUBSTR]
    python -m repro.harness report --benchmark compress --machine ooo \
        --label S10 --quick

The bare-argument form mirrors ``harness explain``: a run id (or
manifest path) from a ``--trace-events DIR`` run resolves through its
manifest and reports every cell that recorded a trace, ``--cell``
narrowing by label substring.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.obs import events as ev
from repro.obs.metrics import Histogram, top_n


def summarize(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce an event list to the report's aggregate view."""
    counts: Dict[str, int] = {}
    miss_levels = {2: 0, 3: 0}
    stream_hits = stream_misses = 0
    latency = Histogram("miss_latency")
    handler_injected = Histogram("handler_injected")
    handler_committed = Histogram("handler_committed")
    conflict_heat: Dict[str, Dict[int, int]] = {}
    fills: Dict[str, int] = {}
    mshr_high = 0
    mshr_squashed = 0
    writebacks = 0
    first_cycle: Optional[int] = None
    last_cycle = 0
    for event in events:
        kind = event["kind"]
        counts[kind] = counts.get(kind, 0) + 1
        cycle = event["cycle"]
        if first_cycle is None:
            first_cycle = cycle
        last_cycle = cycle if cycle > last_cycle else last_cycle
        if kind == ev.L1_MISS:
            if event.get("via") == "stream":
                stream_misses += 1
            else:
                miss_levels[event["level"]] = (
                    miss_levels.get(event["level"], 0) + 1)
                latency.record(event["ready"] - event["start"])
        elif kind == ev.L1_HIT:
            if event.get("via") == "stream":
                stream_hits += 1
        elif kind == ev.CACHE_FILL:
            cache = event["cache"]
            fills[cache] = fills.get(cache, 0) + 1
        elif kind == ev.CACHE_EVICT:
            cache = event["cache"]
            heat = conflict_heat.setdefault(cache, {})
            heat[event["set"]] = heat.get(event["set"], 0) + 1
            if event.get("dirty"):
                writebacks += 1
        elif kind == ev.MSHR_ALLOC:
            occupancy = event.get("occupancy", 0)
            if occupancy > mshr_high:
                mshr_high = occupancy
        elif kind == ev.MSHR_RELEASE:
            if event.get("squashed"):
                mshr_squashed += 1
        elif kind == ev.TRAP_FIRE:
            handler_injected.record(event.get("handler_len", 0))
        elif kind == ev.TRAP_RETURN:
            handler_committed.record(event.get("committed", 0))
    hits = counts.get(ev.L1_HIT, 0)
    misses = counts.get(ev.L1_MISS, 0)
    merges = counts.get(ev.L1_MERGE, 0)
    accesses = hits + misses + merges
    return {
        "events": len(events),
        "counts": counts,
        "cycles": (first_cycle or 0, last_cycle),
        "accesses": accesses,
        "hits": hits,
        "misses": misses,
        "merges": merges,
        "miss_rate": (misses + merges) / accesses if accesses else 0.0,
        "l2_hits": miss_levels.get(2, 0),
        "mem_misses": miss_levels.get(3, 0),
        "stream_hits": stream_hits,
        "stream_misses": stream_misses,
        "latency": latency,
        "fills": fills,
        "conflict_heat": conflict_heat,
        "writeback_evictions": writebacks,
        "mshr_allocs": counts.get(ev.MSHR_ALLOC, 0),
        "mshr_merges": counts.get(ev.MSHR_MERGE, 0),
        "mshr_fills": counts.get(ev.MSHR_FILL, 0),
        "mshr_releases": counts.get(ev.MSHR_RELEASE, 0),
        "mshr_squashed": mshr_squashed,
        "mshr_high_water": mshr_high,
        "trap_fires": counts.get(ev.TRAP_FIRE, 0),
        "trap_returns": counts.get(ev.TRAP_RETURN, 0),
        "handler_injected": handler_injected,
        "handler_committed": handler_committed,
    }


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -"


def render_report(summary: Dict[str, Any], title: str = "trace") -> str:
    """Render the per-benchmark text report from a :func:`summarize` dict."""
    lo, hi = summary["cycles"]
    accesses = summary["accesses"]
    lines = [
        f"obs report — {title}",
        f"  {summary['events']} events over cycles [{lo}, {hi}]",
        "",
        "miss breakdown",
        f"  demand accesses    {accesses}",
        f"  L1 hits            {summary['hits']:>8}  "
        f"{_pct(summary['hits'], accesses)}",
        f"  primary misses     {summary['misses']:>8}  "
        f"{_pct(summary['misses'], accesses)}",
        f"    L2 hits          {summary['l2_hits']:>8}",
        f"    memory           {summary['mem_misses']:>8}",
        f"  secondary (merged) {summary['merges']:>8}  "
        f"{_pct(summary['merges'], accesses)}",
        f"  miss rate          {summary['miss_rate']:.4f}",
    ]
    if summary["stream_hits"] or summary["stream_misses"]:
        lines.append(f"  via stream buffer  "
                     f"{summary['stream_hits']} hit, "
                     f"{summary['stream_misses']} in flight")
    latency: Histogram = summary["latency"]
    if latency.count:
        lines += ["", f"miss latency (cycles): mean {latency.mean:.1f}, "
                      f"min {latency.min}, max {latency.max}"]
        lines += latency.render()
    lines += ["", "top conflict sets (evictions)"]
    if summary["conflict_heat"]:
        for cache, heat in sorted(summary["conflict_heat"].items()):
            total = sum(heat.values())
            hot = ", ".join(f"set {s}: {n}" for s, n in top_n(heat))
            lines.append(f"  {cache:<4} {total:>6} total — {hot}")
    else:
        lines.append("  (no evictions)")
    lines += [
        "",
        "MSHR accounting",
        f"  allocated {summary['mshr_allocs']}, "
        f"merged {summary['mshr_merges']}, "
        f"filled {summary['mshr_fills']}",
        f"  released {summary['mshr_releases']} "
        f"({summary['mshr_squashed']} squashed), "
        f"high water {summary['mshr_high_water']}",
    ]
    lines += ["", "informing traps"]
    if summary["trap_fires"]:
        injected: Histogram = summary["handler_injected"]
        committed: Histogram = summary["handler_committed"]
        lines.append(f"  fired {summary['trap_fires']} "
                     f"(handler body {injected.mean:.1f} insts mean), "
                     f"returned {summary['trap_returns']}")
        if committed.count:
            lines.append(f"  committed per handler run: "
                         f"mean {committed.mean:.1f}, "
                         f"min {committed.min}, max {committed.max}")
    else:
        lines.append("  (none fired)")
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------

def _live_events(args):
    """Run one figure cell with an Observer attached; return it + result."""
    from repro.harness.runner import (
        DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, bar_config, run_bar)
    from repro.obs.observer import Observer

    divisor = 4 if args.quick else 1
    observer = Observer(trace=True)
    result = run_bar(
        args.benchmark, args.machine, bar_config(args.label),
        instructions=DEFAULT_INSTRUCTIONS // divisor,
        warmup=DEFAULT_WARMUP // divisor,
        seed=args.seed, observe=observer)
    return observer, result


def report_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness report",
        description="Render a per-benchmark observability report from a "
                    "trace file or a live single-cell run.")
    parser.add_argument("ref", nargs="?", default=None,
                        metavar="TRACE_OR_RUN_ID",
                        help="an *.events.jsonl trace file, or a run id / "
                             "manifest path from a --trace-events run "
                             "(same resolution as 'harness explain')")
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="render from an existing *.events.jsonl trace")
    parser.add_argument("--cell", default=None, metavar="SUBSTR",
                        help="run-id mode: only cells whose label "
                             "contains SUBSTR")
    parser.add_argument("--manifest-dir", default=None, metavar="DIR",
                        help="run-id mode: manifest root (default "
                             "results/runs or REPRO_RUNS_DIR)")
    parser.add_argument("--benchmark", default=None,
                        help="live mode: SPEC92 benchmark name")
    parser.add_argument("--machine", default=None,
                        choices=("ooo", "inorder"),
                        help="live mode: machine model")
    parser.add_argument("--label", default="N",
                        help="live mode: bar label (N, S1, U10, ...; "
                             "default N)")
    parser.add_argument("--quick", action="store_true",
                        help="live mode: 4x shorter run")
    parser.add_argument("--seed", type=int, default=0,
                        help="live mode: workload seed offset")
    parser.add_argument("--chrome", default=None, metavar="PATH",
                        help="also write the events as a Chrome "
                             "trace_event JSON file (run-id mode: the "
                             "last reported cell)")
    args = parser.parse_args(argv)

    sources: List[Any] = []
    result = None
    if args.ref:
        # Bare-argument form: a trace file or a run id, resolved the
        # same way `harness explain` resolves its input.
        from repro.harness.explain import _load_trace, _resolve_traces
        pairs, error = _resolve_traces(args.ref, args.manifest_dir,
                                       args.cell)
        if error:
            print(f"report: {error}", file=sys.stderr)
            return 2
        for title, path in pairs:
            events, error = _load_trace(path)
            if events is None:
                print(f"report: {error}", file=sys.stderr)
                return 2
            sources.append((title, events))
    elif args.trace_file:
        from repro.obs.export import read_jsonl
        sources.append((args.trace_file, read_jsonl(args.trace_file)))
    elif args.benchmark and args.machine:
        observer, result = _live_events(args)
        sources.append(
            (f"{args.benchmark}/{args.machine}/{args.label} (live)",
             observer.events))
    else:
        parser.error("pass --trace-file PATH, a trace-file/run-id "
                     "argument, or --benchmark and --machine for a "
                     "live run")

    print("\n\n".join(render_report(summarize(events), title)
                      for title, events in sources))
    events = sources[-1][1]
    if result is not None:
        print(f"\nsimulator cross-check: {result.cycles} cycles, "
              f"l1_miss_rate {result.l1_miss_rate:.4f}, "
              f"{result.handler_invocations} handler invocations")
    if args.chrome:
        from repro.obs.export import write_chrome_trace
        write_chrome_trace(events, args.chrome)
        print(f"chrome trace written to {args.chrome}")
    return 0
