"""Trace exporters: JSONL (lossless) and Chrome ``trace_event`` (visual).

JSONL is the canonical on-disk form — one event dict per line, loadable
with :func:`read_jsonl` into exactly the list an :class:`Observer`
accumulated, so the report layer treats live runs and re-loaded traces
identically.

The Chrome exporter maps events onto the ``trace_event`` JSON format
(the JSON-object flavour: ``{"traceEvents": [...]}``) that
``chrome://tracing`` and Perfetto load directly.  Cycles map to
microseconds one-to-one.  Point events become instants (``ph: "i"``);
events with a known span — an ``l1.miss`` between its ``start`` and
``ready`` cycles, a ``trap.return`` covering its handler's commit run —
become complete events (``ph: "X"`` with ``dur``) so miss latency and
handler occupancy are visible as bars on the timeline.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List

from repro.obs import events as ev

#: Chrome trace thread ids: one lane per event family keeps the timeline
#: readable (kind prefix -> (tid, lane name)).
_LANES = {
    "l1": (1, "L1 accesses"),
    "cache": (2, "tag stores"),
    "mshr": (3, "MSHRs"),
    "trap": (4, "informing"),
}
_DEFAULT_LANE = (5, "other")


# -- JSONL --------------------------------------------------------------------

def write_jsonl(events: Iterable[Dict[str, Any]], path: str) -> str:
    """Write *events* one JSON object per line; return *path*."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into the in-memory event-list form."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- Chrome trace_event -------------------------------------------------------

def _lane(kind: str):
    return _LANES.get(kind.split(".", 1)[0], _DEFAULT_LANE)


def chrome_trace(events: Iterable[Dict[str, Any]],
                 process_name: str = "repro-sim") -> Dict[str, Any]:
    """Convert an event list to a Chrome ``trace_event`` JSON object."""
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for tid, name in sorted(set(_LANES.values()) | {_DEFAULT_LANE}):
        trace_events.append({"name": "thread_name", "ph": "M", "pid": 0,
                             "tid": tid, "args": {"name": name}})
    for event in events:
        kind = event["kind"]
        cycle = event["cycle"]
        tid, _ = _lane(kind)
        args = {k: v for k, v in event.items()
                if k not in ("cycle", "kind")}
        record: Dict[str, Any] = {"name": kind, "pid": 0, "tid": tid,
                                  "args": args}
        if kind == ev.L1_MISS and "start" in event:
            record["ph"] = "X"
            record["ts"] = event["start"]
            record["dur"] = max(event["ready"] - event["start"], 1)
        elif kind == ev.TRAP_RETURN and "start" in event:
            record["ph"] = "X"
            record["ts"] = event["start"]
            record["dur"] = max(cycle - event["start"], 1)
        else:
            record["ph"] = "i"
            record["ts"] = cycle
            record["s"] = "t"  # instant scoped to its thread lane
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_chrome_trace(events: Iterable[Dict[str, Any]], path: str,
                       process_name: str = "repro-sim") -> str:
    """Write the Chrome ``trace_event`` JSON for *events*; return *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(events, process_name), fh)
    return path


# -- per-run artifacts --------------------------------------------------------

def write_run_artifacts(observer, directory: str, stem: str
                        ) -> Dict[str, str]:
    """Write one run's trace + metrics under *directory*.

    Produces ``<stem>.events.jsonl`` (when the observer captured events)
    and ``<stem>.metrics.json``; returns ``{"events": path, "metrics":
    path}`` for whatever was written.
    """
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}
    if observer.trace:
        paths["events"] = write_jsonl(
            observer.events, os.path.join(directory,
                                          f"{stem}.events.jsonl"))
    payload = {
        "stem": stem,
        "events": len(observer.events),
        "metrics": observer.metrics.to_dict(),
        "conflict_heat": {
            cache: {str(s): n for s, n in sorted(heat.items())}
            for cache, heat in sorted(observer.conflict_heat.items())},
        "mshr_timeline": [list(point) for point in observer.mshr_timeline],
    }
    metrics_path = os.path.join(directory, f"{stem}.metrics.json")
    with open(metrics_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    paths["metrics"] = metrics_path
    return paths
