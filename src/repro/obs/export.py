"""Trace exporters: JSONL (lossless) and Chrome ``trace_event`` (visual).

JSONL is the canonical on-disk form — one event dict per line, loadable
with :func:`read_jsonl` into exactly the list an :class:`Observer`
accumulated, so the report layer treats live runs and re-loaded traces
identically.

The Chrome exporter maps events onto the ``trace_event`` JSON format
(the JSON-object flavour: ``{"traceEvents": [...]}``) that
``chrome://tracing`` and Perfetto load directly.  Cycles map to
microseconds one-to-one.  Point events become instants (``ph: "i"``);
events with a known span — an ``l1.miss`` between its ``start`` and
``ready`` cycles, a ``trap.return`` covering its handler's commit run —
become complete events (``ph: "X"`` with ``dur``) so miss latency and
handler occupancy are visible as bars on the timeline.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List

from repro.obs import events as ev

#: Chrome trace thread ids: one lane per event family keeps the timeline
#: readable (kind prefix -> (tid, lane name)).
_LANES = {
    "l1": (1, "L1 accesses"),
    "cache": (2, "tag stores"),
    "mshr": (3, "MSHRs"),
    "trap": (4, "informing"),
}
_DEFAULT_LANE = (5, "other")


# -- JSONL --------------------------------------------------------------------

def write_jsonl(events: Iterable[Dict[str, Any]], path: str) -> str:
    """Write *events* one JSON object per line; return *path*."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_jsonl(path: str, strict: bool = False) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into the in-memory event-list form.

    A run killed mid-write leaves a truncated (or, over NFS, garbled)
    final line; by default such lines are skipped so the surviving
    prefix stays loadable.  ``strict=True`` raises ``ValueError`` on the
    first corrupt line instead, for callers that would rather know.
    """
    events = []
    with open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                if strict:
                    raise ValueError(
                        f"{path}:{number}: corrupt JSONL line") from None
    return events


# -- Chrome trace_event -------------------------------------------------------

def _lane(kind: str):
    return _LANES.get(kind.split(".", 1)[0], _DEFAULT_LANE)


def chrome_trace(events: Iterable[Dict[str, Any]],
                 process_name: str = "repro-sim") -> Dict[str, Any]:
    """Convert an event list to a Chrome ``trace_event`` JSON object."""
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for tid, name in sorted(set(_LANES.values()) | {_DEFAULT_LANE}):
        trace_events.append({"name": "thread_name", "ph": "M", "pid": 0,
                             "tid": tid, "args": {"name": name}})
    for event in events:
        kind = event["kind"]
        cycle = event["cycle"]
        tid, _ = _lane(kind)
        args = {k: v for k, v in event.items()
                if k not in ("cycle", "kind")}
        record: Dict[str, Any] = {"name": kind, "pid": 0, "tid": tid,
                                  "args": args}
        if kind == ev.L1_MISS and "start" in event:
            record["ph"] = "X"
            record["ts"] = event["start"]
            record["dur"] = max(event["ready"] - event["start"], 1)
        elif kind == ev.TRAP_RETURN and "start" in event:
            record["ph"] = "X"
            record["ts"] = event["start"]
            record["dur"] = max(cycle - event["start"], 1)
        else:
            record["ph"] = "i"
            record["ts"] = cycle
            record["s"] = "t"  # instant scoped to its thread lane
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_chrome_trace(events: Iterable[Dict[str, Any]], path: str,
                       process_name: str = "repro-sim") -> str:
    """Write the Chrome ``trace_event`` JSON for *events*; return *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(events, process_name), fh)
    return path


# -- OpenMetrics / Prometheus -------------------------------------------------

def _om_name(name: str, prefix: str) -> str:
    """Sanitize a registry name into an OpenMetrics metric name."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return prefix + safe


def _om_payload(metrics) -> Dict[str, Any]:
    """Accept a Registry or its ``to_dict()`` payload."""
    return metrics if isinstance(metrics, dict) else metrics.to_dict()


def to_openmetrics(metrics, prefix: str = "repro_") -> str:
    """Render a metrics registry as OpenMetrics (Prometheus) text.

    Counters become ``<name>_total``; histograms keep their power-of-two
    bucketing as cumulative ``le`` edges (bucket with lower bound ``lo``
    holds integer values up to ``2*lo - 1``), plus ``_sum``/``_count``
    and ``_min``/``_max`` gauges so the exposition is lossless (see
    :func:`parse_openmetrics`).  Dots and other non-identifier
    characters in registry names become underscores.  Ends with the
    mandatory ``# EOF`` terminator.
    """
    payload = _om_payload(metrics)
    lines: List[str] = []
    for name, value in sorted(payload.get("counters", {}).items()):
        metric = _om_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {value}")
    for name, hist in sorted(payload.get("histograms", {}).items()):
        metric = _om_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for lo_str, count in sorted(hist.get("buckets", {}).items(),
                                    key=lambda kv: int(kv[0])):
            lo = int(lo_str)
            le = 0 if lo == 0 else 2 * lo - 1
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.get("count", 0)}')
        lines.append(f"{metric}_sum {hist.get('total', 0)}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
        for bound in ("min", "max"):
            if hist.get(bound) is not None:
                gauge = f"{metric}_{bound}"
                lines.append(f"# TYPE {gauge} gauge")
                lines.append(f"{gauge} {hist[bound]}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(metrics, path: str, prefix: str = "repro_") -> str:
    """Write the OpenMetrics exposition for *metrics*; return *path*."""
    with open(path, "w") as fh:
        fh.write(to_openmetrics(metrics, prefix))
    return path


def parse_openmetrics(text: str, prefix: str = "repro_") -> Dict[str, Any]:
    """Parse :func:`to_openmetrics` output back into registry-dict form.

    Returns ``{"counters": {...}, "histograms": {...}}`` with the
    *sanitized* metric names (the exposition does not keep the original
    dots); histogram dicts regain ``buckets``/``count``/``total``/
    ``mean``/``min``/``max``, so a round trip through the exporter
    preserves every number the registry held.
    """
    counters: Dict[str, int] = {}
    hists: Dict[str, Dict[str, Any]] = {}
    minmax: Dict[str, Dict[str, int]] = {}

    def _strip(name: str) -> str:
        return name[len(prefix):] if name.startswith(prefix) else name

    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value_str = line.partition(" ")
        value = float(value_str) if "." in value_str else int(value_str)
        if "{" in name:
            metric, _, label = name.partition("{")
            if not metric.endswith("_bucket"):
                continue
            base = _strip(metric[:-len("_bucket")])
            le = label.split('"')[1]
            hist = hists.setdefault(base, {"buckets": {}, "count": 0,
                                           "total": 0})
            if le == "+Inf":
                continue  # count comes from _count
            lo = 0 if le == "0" else (int(le) + 1) // 2
            hist["buckets"][str(lo)] = value  # cumulative; fixed up below
        elif name.endswith("_sum"):
            hists.setdefault(_strip(name[:-4]),
                             {"buckets": {}, "count": 0})["total"] = value
        elif name.endswith("_count"):
            hists.setdefault(_strip(name[:-6]),
                             {"buckets": {}, "total": 0})["count"] = value
        elif name.endswith("_min") or name.endswith("_max"):
            base, bound = _strip(name[:-4]), name[-3:]
            minmax.setdefault(base, {})[bound] = value
        elif name.endswith("_total"):
            counters[_strip(name[:-6])] = value
    for base, hist in hists.items():
        cumulative = sorted(((int(lo), n) for lo, n in
                             hist["buckets"].items()))
        previous = 0
        buckets = {}
        for lo, running in cumulative:
            buckets[str(lo)] = running - previous
            previous = running
        hist["buckets"] = buckets
        count = hist.get("count", 0)
        hist["mean"] = round(hist.get("total", 0) / count, 3) if count else 0.0
        hist["min"] = minmax.get(base, {}).get("min")
        hist["max"] = minmax.get(base, {}).get("max")
    return {"counters": counters, "histograms": hists}


# -- per-run artifacts --------------------------------------------------------

def write_run_artifacts(observer, directory: str, stem: str
                        ) -> Dict[str, str]:
    """Write one run's trace + metrics under *directory*.

    Produces ``<stem>.events.jsonl`` (when the observer captured events)
    and ``<stem>.metrics.json``; returns ``{"events": path, "metrics":
    path}`` for whatever was written.
    """
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}
    if observer.trace:
        paths["events"] = write_jsonl(
            observer.events, os.path.join(directory,
                                          f"{stem}.events.jsonl"))
    payload = {
        "stem": stem,
        "events": len(observer.events),
        "metrics": observer.metrics.to_dict(),
        "conflict_heat": {
            cache: {str(s): n for s, n in sorted(heat.items())}
            for cache, heat in sorted(observer.conflict_heat.items())},
        "mshr_timeline": [list(point) for point in observer.mshr_timeline],
    }
    metrics_path = os.path.join(directory, f"{stem}.metrics.json")
    with open(metrics_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    paths["metrics"] = metrics_path
    return paths
