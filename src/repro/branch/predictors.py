"""Branch predictors.

Both simulated machines use a table of 2-bit saturating counters (Table 1).
The informing-operation machinery additionally relies on static not-taken
prediction: an explicit ``BLMISS`` check or the implicit trap branch is
always predicted not-taken, so the mispredict penalty applies only to the
cache-miss case (Section 2.1).
"""

from __future__ import annotations


class BranchPredictor:
    """Interface: predict an outcome for pc, then train on the real one."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError


class TwoBitCounterPredictor(BranchPredictor):
    """Classic table of 2-bit saturating counters, indexed by pc.

    Counter states 0..3; predict taken when >= 2.  Initialised to
    weakly-not-taken (1).
    """

    def __init__(self, entries: int = 2048) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._table = [1] * entries
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        self.lookups += 1
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)

    def record_mispredict(self) -> None:
        self.mispredicts += 1

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class StaticNotTakenPredictor(BranchPredictor):
    """Always predicts not-taken (the informing-check prediction policy)."""

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysTakenPredictor(BranchPredictor):
    """Always predicts taken (baseline for predictor comparisons in tests)."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass
