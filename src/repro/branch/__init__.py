"""Branch prediction (Table 1: 2-bit counters for both machines)."""

from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BranchPredictor,
    StaticNotTakenPredictor,
    TwoBitCounterPredictor,
)

__all__ = [
    "BranchPredictor",
    "TwoBitCounterPredictor",
    "StaticNotTakenPredictor",
    "AlwaysTakenPredictor",
]
