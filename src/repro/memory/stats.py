"""Counters for the memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set


@dataclass
class MemStats:
    """Hierarchy-wide event counters.

    ``l1_misses`` counts *primary* data-cache misses — the event that
    triggers an informing memory operation.  Secondary (merged) misses are
    tracked separately because they do not re-trigger the informing
    mechanism in our model: the line fetch they piggyback on has already
    invoked the handler.
    """

    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l1_secondary_misses: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    prefetches: int = 0
    prefetches_dropped: int = 0
    writebacks_l1: int = 0
    writebacks_l2: int = 0
    bank_conflict_cycles: int = 0
    mshr_stalls: int = 0
    squash_invalidations: int = 0
    _seen_lines: Set[int] = field(default_factory=set, repr=False)
    compulsory_misses: int = 0

    @property
    def l1_miss_rate(self) -> float:
        """Primary-miss rate over demand accesses (merges count as misses)."""
        if self.l1_accesses == 0:
            return 0.0
        return (self.l1_misses + self.l1_secondary_misses) / self.l1_accesses

    @property
    def l2_local_miss_rate(self) -> float:
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    def note_line(self, line_addr: int) -> None:
        """Record a missed line for compulsory/other classification."""
        if line_addr not in self._seen_lines:
            self._seen_lines.add(line_addr)
            self.compulsory_misses += 1
