"""Bandwidth-limited main memory (Table 1: one access per 20 cycles)."""

from __future__ import annotations


class MainMemory:
    """Serialises accesses at a fixed issue rate.

    The model matches the paper's single "main memory bandwidth" row: a new
    access may begin at most every ``cycles_per_access`` cycles; an access
    arriving while the port is busy queues behind the previous one.
    """

    def __init__(self, cycles_per_access: int = 20) -> None:
        if cycles_per_access < 1:
            raise ValueError("cycles_per_access must be positive")
        self.cycles_per_access = cycles_per_access
        self._next_free = 0
        self.accesses = 0
        self.queued_cycles = 0  # total cycles accesses waited for the port

    def schedule(self, cycle: int) -> int:
        """Reserve the port for an access arriving at *cycle*.

        Returns the cycle at which the access actually starts (>= cycle).
        """
        start = max(cycle, self._next_free)
        self.queued_cycles += start - cycle
        self._next_free = start + self.cycles_per_access
        self.accesses += 1
        return start

    def reset(self) -> None:
        self._next_free = 0
        self.accesses = 0
        self.queued_cycles = 0
