"""Cache and hierarchy configuration records (the memory half of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.replacement import get_policy_class


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Args:
        size: total capacity in bytes.
        assoc: ways per set (1 = direct mapped).
        line_size: bytes per line.
    """

    size: int
    assoc: int
    line_size: int = 32

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_size):
            raise ValueError(f"line size must be a power of two: {self.line_size}")
        if self.assoc < 1:
            raise ValueError(f"associativity must be >= 1: {self.assoc}")
        if self.size % (self.assoc * self.line_size) != 0:
            raise ValueError(
                f"size {self.size} not divisible by assoc*line "
                f"({self.assoc}*{self.line_size})"
            )
        if not _is_pow2(self.num_sets):
            raise ValueError(f"number of sets must be a power of two: {self.num_sets}")

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class HierarchyConfig:
    """Full two-level hierarchy parameters (Table 1, memory columns).

    Latencies are *primary-to-X miss latencies* as the paper specifies: the
    extra cycles beyond an L1 hit that a reference pays when it is satisfied
    by the secondary cache or by main memory.
    """

    l1: CacheConfig
    l2: CacheConfig
    l1_hit_latency: int = 2          # load-use latency on a primary hit
    l1_to_l2_latency: int = 12       # primary-to-secondary miss latency
    l1_to_mem_latency: int = 75      # primary-to-memory miss latency
    mshr_count: int = 8
    data_banks: int = 2
    fill_time: int = 4               # cycles a fill occupies the data banks
    mem_cycles_per_access: int = 20  # main-memory bandwidth: 1 access / N cycles
    replacement_policy: str = "lru"  # registry name (repro.memory.replacement)

    def __post_init__(self) -> None:
        get_policy_class(self.replacement_policy)  # raises on unknown names
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1 and L2 must share a line size")
        if self.l1_to_l2_latency < 1 or self.l1_to_mem_latency < self.l1_to_l2_latency:
            raise ValueError("miss latencies must grow with hierarchy depth")
        if self.mshr_count < 1:
            raise ValueError("at least one MSHR is required")
        if self.data_banks < 1:
            raise ValueError("at least one data bank is required")
