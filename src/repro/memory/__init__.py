"""Memory-hierarchy substrate.

Implements the two-level, non-blocking cache hierarchy of Table 1:
set-associative LRU caches, a Miss Status Handling Register (MSHR) file with
the *extended lifetime* semantics of Section 3.3 (entries pinned until the
owning instruction graduates or is squashed; a squash invalidates the
speculatively filled L1 line), bank conflicts, fill occupancy, and a
bandwidth-limited main memory (one access per N cycles).
"""

from repro.memory.config import CacheConfig, HierarchyConfig
from repro.memory.cache import Cache, EvictedLine, REPLACEMENT_POLICIES
from repro.memory.mshr import MSHR, MSHRFile
from repro.memory.main_memory import MainMemory
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.replacement import (
    DEFAULT_REPLACEMENT_SEED,
    ReplacementPolicy,
    available_policies,
    create_policy,
    derive_seed,
    get_policy_class,
)
from repro.memory.stats import MemStats
from repro.memory.victim_cache import VictimCache, VictimCachedL1

__all__ = [
    "CacheConfig",
    "HierarchyConfig",
    "Cache",
    "EvictedLine",
    "REPLACEMENT_POLICIES",
    "DEFAULT_REPLACEMENT_SEED",
    "ReplacementPolicy",
    "available_policies",
    "create_policy",
    "derive_seed",
    "get_policy_class",
    "MSHR",
    "MSHRFile",
    "MainMemory",
    "AccessResult",
    "MemoryHierarchy",
    "MemStats",
    "VictimCache",
    "VictimCachedL1",
]
