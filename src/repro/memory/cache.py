"""A set-associative cache with pluggable replacement (true LRU default).

The cache tracks tags, dirty bits and replacement ordering only — data
values live in the functional layer (:mod:`repro.isa.interp`) or nowhere at
all for the statistical workloads.  All methods take byte addresses; *line
addresses* are derived internally.

Recency is tracked through dict insertion order (Python dicts are ordered):
each set maps line address -> dirty flag, a recency refresh is a delete and
re-insert (O(1)), and the replacement victim is the set's first key.  This
replaces the historical per-way LRU stamps and their ``min()`` scan in the
victim chooser; because the stamp clock was strictly monotonic, "minimum
stamp" and "first in insertion/refresh order" pick identical victims, so
the rewrite is cycle-exact.

Which events refresh the order — and whether the victim comes from the
front or a seeded random index — is decided by the replacement policy,
looked up by name in :mod:`repro.memory.replacement`.  The dict-order
family (lru/fifo/random) compiles down to the same inline code this module
has always run; stateful policies (plru/rrip/brrip) additionally receive
on-hit/on-fill/evict/on-invalidate callbacks through ``self._stateful``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional

from repro.memory.config import CacheConfig
from repro.memory.replacement import (
    DEFAULT_REPLACEMENT_SEED,
    available_policies,
    create_policy,
)


@dataclass(frozen=True)
class EvictedLine:
    """A victim returned by :meth:`Cache.fill`."""

    line_addr: int
    dirty: bool


def _replacement_policies() -> tuple:
    """Registered policy names (module attribute kept for compatibility)."""
    return available_policies()


#: Supported replacement policies (registry order: the paper's true LRU
#: and the historical fifo/random ablation entries first, then the
#: tree-PLRU and RRIP-family additions).
REPLACEMENT_POLICIES = _replacement_policies()


class Cache:
    """Tag array with pluggable replacement (LRU by default).

    The probe/fill split matters for non-blocking behaviour: a miss does not
    immediately install the line; the hierarchy installs it (``fill``) when
    the data returns, which is what lets the MSHR squash path cancel a
    speculative install (Section 3.3 of the paper).

    Per-set state is one dict of line address -> dirty bool, ordered
    oldest-first in replacement order:

    * **lru** — :meth:`probe` hits and :meth:`fill` merges both move the
      line to the back of its set.
    * **fifo** — only :meth:`fill` refreshes the order (a merged write miss
      counts as a re-fill, matching the historical stamp semantics).
    * **random** — order is pure insertion order (never refreshed) and the
      victim is drawn from it with a seeded LCG, reproducing the historical
      ``list(cache_set)[lcg % ways]`` choice without building the list.

    Stateful policies (**plru**, **rrip**, **brrip**) keep their own per-set
    metadata next to the dict and choose victims through it; the dict then
    carries pure insertion order and the dirty bits.
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 policy: str = "lru",
                 seed: int = DEFAULT_REPLACEMENT_SEED) -> None:
        pol = create_policy(policy, config, seed)
        self.config = config
        self.name = name
        self.policy = policy
        self.policy_impl = pol
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1
        self._assoc = config.assoc
        # Flag view of the dict-order family; the inline hot paths in this
        # module and in MemoryHierarchy/vec key off these exactly as they
        # did before the registry existed.
        self._is_lru = pol.dict_order and pol.refresh_on_hit
        self._is_random = pol.dict_order and pol.random_victim
        # Stateful policies keep the dict in pure insertion order (their
        # metadata owns recency); random never reorders either.
        self._refill_reorders = pol.dict_order and pol.refresh_on_fill
        # Stateful policies get touch callbacks; None keeps the hook cost
        # to one identity test on the dict-order family.
        self._stateful = None if pol.dict_order else pol
        # Cheap deterministic LCG for the random policy (no random import
        # on the hot path).
        self._rand_state = seed or 1
        # Optional runtime invariant checker (repro.sanitize); None keeps
        # the hook cost to one identity test per fill/invalidate.
        self._san = None
        # Optional observer (repro.obs), same pattern and same cost.
        self._obs = None

    # -- address helpers ---------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Line-granularity address of byte address *addr*."""
        return addr >> self._line_shift

    def _set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    # -- operations ----------------------------------------------------------
    def probe(self, addr: int, is_write: bool = False, update_lru: bool = True
              ) -> bool:
        """Return True on a tag hit; updates LRU (and dirty on writes)."""
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        dirty = cache_set.get(line)
        if dirty is None:
            return False
        if update_lru and self._is_lru:
            del cache_set[line]
            cache_set[line] = dirty or is_write
        else:
            if is_write:
                cache_set[line] = True
            if update_lru and self._stateful is not None:
                self._stateful.on_hit(line & self._set_mask, line)
        return True

    def fill(self, addr: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install the line containing *addr*; return the victim, if any.

        Filling a line that is already resident refreshes its LRU stamp and
        ORs in the dirty bit (a merged write miss), evicting nothing.
        """
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        existing = cache_set.get(line)
        if existing is not None:
            if self._refill_reorders:
                del cache_set[line]
                cache_set[line] = existing or dirty
            else:
                # Random replacement never reorders: victim choice indexes
                # pure insertion order, exactly as the stamp era did.
                # Stateful policies likewise keep pure insertion order and
                # track the touch in their own metadata.
                cache_set[line] = existing or dirty
                if self._stateful is not None:
                    self._stateful.on_hit(line & self._set_mask, line)
            return None
        victim: Optional[EvictedLine] = None
        stateful = self._stateful
        if len(cache_set) >= self._assoc:
            if stateful is not None:
                victim_line = stateful.evict(line & self._set_mask, cache_set)
            else:
                victim_line = self._choose_victim(cache_set)
            victim = EvictedLine(victim_line, cache_set[victim_line])
            del cache_set[victim_line]
        cache_set[line] = dirty
        if stateful is not None:
            stateful.on_fill(line & self._set_mask, line)
        if self._san is not None:
            self._san.on_fill(self, line & self._set_mask)
        if self._obs is not None:
            self._obs.on_cache_fill(self, line & self._set_mask, line, victim)
        return victim

    def _choose_victim(self, cache_set: Dict[int, bool]) -> int:
        if self._is_random:
            self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
            index = self._rand_state % len(cache_set)
            return next(islice(cache_set, index, None))
        # LRU and FIFO both evict the front of the order; they differ in
        # whether probe() refreshes it (LRU) or only fill() does (FIFO).
        return next(iter(cache_set))

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing *addr*; return True if it was resident."""
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            del cache_set[line]
            if self._stateful is not None:
                self._stateful.on_invalidate(line & self._set_mask, line)
            if self._san is not None:
                self._san.on_invalidate(self, line & self._set_mask)
            if self._obs is not None:
                self._obs.on_cache_invalidate(self, line & self._set_mask,
                                              line)
            return True
        return False

    def contains(self, addr: int) -> bool:
        """Tag check with no LRU side effect."""
        line = addr >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def is_dirty(self, addr: int) -> bool:
        """True if the line containing *addr* is resident and dirty."""
        line = addr >> self._line_shift
        return bool(self._sets[line & self._set_mask].get(line))

    def flush(self) -> None:
        """Empty the cache (used between experiment phases)."""
        for cache_set in self._sets:
            cache_set.clear()
        if self._stateful is not None:
            self._stateful.reset()

    def resident_lines(self) -> int:
        """Number of lines currently resident (for occupancy assertions)."""
        return sum(len(s) for s in self._sets)
