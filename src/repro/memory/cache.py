"""A set-associative cache with true-LRU replacement.

The cache tracks tags, dirty bits and LRU ordering only — data values live
in the functional layer (:mod:`repro.isa.interp`) or nowhere at all for the
statistical workloads.  All methods take *line addresses* are derived from
byte addresses internally, so callers pass plain byte addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.config import CacheConfig


@dataclass(frozen=True)
class EvictedLine:
    """A victim returned by :meth:`Cache.fill`."""

    line_addr: int
    dirty: bool


class _Way:
    """One resident line: LRU stamp plus dirty bit."""

    __slots__ = ("stamp", "dirty")

    def __init__(self, stamp: int, dirty: bool) -> None:
        self.stamp = stamp
        self.dirty = dirty


#: Supported replacement policies.  The paper's machines use true LRU;
#: FIFO and (seeded) random exist for the replacement ablation bench.
REPLACEMENT_POLICIES = ("lru", "fifo", "random")


class Cache:
    """Tag array with pluggable replacement (LRU by default).

    The probe/fill split matters for non-blocking behaviour: a miss does not
    immediately install the line; the hierarchy installs it (``fill``) when
    the data returns, which is what lets the MSHR squash path cancel a
    speculative install (Section 3.3 of the paper).
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 policy: str = "lru", seed: int = 12345) -> None:
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {REPLACEMENT_POLICIES}")
        self.config = config
        self.name = name
        self.policy = policy
        self._sets: List[Dict[int, _Way]] = [dict() for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1
        self._clock = 0
        # Cheap deterministic LCG for the random policy (no random import
        # on the hot path).
        self._rand_state = seed or 1

    # -- address helpers ---------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Line-granularity address of byte address *addr*."""
        return addr >> self._line_shift

    def _set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    # -- operations ----------------------------------------------------------
    def probe(self, addr: int, is_write: bool = False, update_lru: bool = True
              ) -> bool:
        """Return True on a tag hit; updates LRU (and dirty on writes)."""
        line = self.line_addr(addr)
        way = self._sets[self._set_index(line)].get(line)
        if way is None:
            return False
        if update_lru and self.policy == "lru":
            self._clock += 1
            way.stamp = self._clock
        if is_write:
            way.dirty = True
        return True

    def fill(self, addr: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install the line containing *addr*; return the victim, if any.

        Filling a line that is already resident refreshes its LRU stamp and
        ORs in the dirty bit (a merged write miss), evicting nothing.
        """
        line = self.line_addr(addr)
        cache_set = self._sets[self._set_index(line)]
        self._clock += 1
        existing = cache_set.get(line)
        if existing is not None:
            existing.stamp = self._clock
            existing.dirty = existing.dirty or dirty
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.config.assoc:
            victim_line = self._choose_victim(cache_set)
            victim = EvictedLine(victim_line, cache_set[victim_line].dirty)
            del cache_set[victim_line]
        cache_set[line] = _Way(self._clock, dirty)
        return victim

    def _choose_victim(self, cache_set: Dict[int, _Way]) -> int:
        if self.policy == "random":
            self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
            keys = list(cache_set)
            return keys[self._rand_state % len(keys)]
        # LRU and FIFO both evict the minimum stamp; they differ in whether
        # probe() refreshes it (LRU) or only fill() sets it (FIFO).
        return min(cache_set, key=lambda tag: cache_set[tag].stamp)

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing *addr*; return True if it was resident."""
        line = self.line_addr(addr)
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def contains(self, addr: int) -> bool:
        """Tag check with no LRU side effect."""
        line = self.line_addr(addr)
        return line in self._sets[self._set_index(line)]

    def is_dirty(self, addr: int) -> bool:
        """True if the line containing *addr* is resident and dirty."""
        line = self.line_addr(addr)
        way = self._sets[self._set_index(line)].get(line)
        return way is not None and way.dirty

    def flush(self) -> None:
        """Empty the cache (used between experiment phases)."""
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        """Number of lines currently resident (for occupancy assertions)."""
        return sum(len(s) for s in self._sets)
