"""A set-associative cache with true-LRU replacement.

The cache tracks tags, dirty bits and LRU ordering only — data values live
in the functional layer (:mod:`repro.isa.interp`) or nowhere at all for the
statistical workloads.  All methods take *line addresses* are derived from
byte addresses internally, so callers pass plain byte addresses.

Recency is tracked through dict insertion order (Python dicts are ordered):
each set maps line address -> dirty flag, a recency refresh is a delete and
re-insert (O(1)), and the replacement victim is the set's first key.  This
replaces the historical per-way LRU stamps and their ``min()`` scan in the
victim chooser; because the stamp clock was strictly monotonic, "minimum
stamp" and "first in insertion/refresh order" pick identical victims, so
the rewrite is cycle-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional

from repro.memory.config import CacheConfig


@dataclass(frozen=True)
class EvictedLine:
    """A victim returned by :meth:`Cache.fill`."""

    line_addr: int
    dirty: bool


#: Supported replacement policies.  The paper's machines use true LRU;
#: FIFO and (seeded) random exist for the replacement ablation bench.
REPLACEMENT_POLICIES = ("lru", "fifo", "random")


class Cache:
    """Tag array with pluggable replacement (LRU by default).

    The probe/fill split matters for non-blocking behaviour: a miss does not
    immediately install the line; the hierarchy installs it (``fill``) when
    the data returns, which is what lets the MSHR squash path cancel a
    speculative install (Section 3.3 of the paper).

    Per-set state is one dict of line address -> dirty bool, ordered
    oldest-first in replacement order:

    * **lru** — :meth:`probe` hits and :meth:`fill` merges both move the
      line to the back of its set.
    * **fifo** — only :meth:`fill` refreshes the order (a merged write miss
      counts as a re-fill, matching the historical stamp semantics).
    * **random** — order is pure insertion order (never refreshed) and the
      victim is drawn from it with a seeded LCG, reproducing the historical
      ``list(cache_set)[lcg % ways]`` choice without building the list.
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 policy: str = "lru", seed: int = 12345) -> None:
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {REPLACEMENT_POLICIES}")
        self.config = config
        self.name = name
        self.policy = policy
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1
        self._assoc = config.assoc
        self._is_lru = policy == "lru"
        self._is_random = policy == "random"
        # Cheap deterministic LCG for the random policy (no random import
        # on the hot path).
        self._rand_state = seed or 1
        # Optional runtime invariant checker (repro.sanitize); None keeps
        # the hook cost to one identity test per fill/invalidate.
        self._san = None
        # Optional observer (repro.obs), same pattern and same cost.
        self._obs = None

    # -- address helpers ---------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Line-granularity address of byte address *addr*."""
        return addr >> self._line_shift

    def _set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    # -- operations ----------------------------------------------------------
    def probe(self, addr: int, is_write: bool = False, update_lru: bool = True
              ) -> bool:
        """Return True on a tag hit; updates LRU (and dirty on writes)."""
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        dirty = cache_set.get(line)
        if dirty is None:
            return False
        if update_lru and self._is_lru:
            del cache_set[line]
            cache_set[line] = dirty or is_write
        elif is_write:
            cache_set[line] = True
        return True

    def fill(self, addr: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install the line containing *addr*; return the victim, if any.

        Filling a line that is already resident refreshes its LRU stamp and
        ORs in the dirty bit (a merged write miss), evicting nothing.
        """
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        existing = cache_set.get(line)
        if existing is not None:
            if self._is_random:
                # Random replacement never reorders: victim choice indexes
                # pure insertion order, exactly as the stamp era did.
                cache_set[line] = existing or dirty
            else:
                del cache_set[line]
                cache_set[line] = existing or dirty
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self._assoc:
            victim_line = self._choose_victim(cache_set)
            victim = EvictedLine(victim_line, cache_set[victim_line])
            del cache_set[victim_line]
        cache_set[line] = dirty
        if self._san is not None:
            self._san.on_fill(self, line & self._set_mask)
        if self._obs is not None:
            self._obs.on_cache_fill(self, line & self._set_mask, line, victim)
        return victim

    def _choose_victim(self, cache_set: Dict[int, bool]) -> int:
        if self._is_random:
            self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
            index = self._rand_state % len(cache_set)
            return next(islice(cache_set, index, None))
        # LRU and FIFO both evict the front of the order; they differ in
        # whether probe() refreshes it (LRU) or only fill() does (FIFO).
        return next(iter(cache_set))

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing *addr*; return True if it was resident."""
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            del cache_set[line]
            if self._san is not None:
                self._san.on_invalidate(self, line & self._set_mask)
            if self._obs is not None:
                self._obs.on_cache_invalidate(self, line & self._set_mask,
                                              line)
            return True
        return False

    def contains(self, addr: int) -> bool:
        """Tag check with no LRU side effect."""
        line = addr >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def is_dirty(self, addr: int) -> bool:
        """True if the line containing *addr* is resident and dirty."""
        line = addr >> self._line_shift
        return bool(self._sets[line & self._set_mask].get(line))

    def flush(self) -> None:
        """Empty the cache (used between experiment phases)."""
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        """Number of lines currently resident (for occupancy assertions)."""
        return sum(len(s) for s in self._sets)
