"""Pluggable cache replacement policies — the registry behind ``Cache``.

The cache's replacement behaviour is described by a
:class:`ReplacementPolicy` entry looked up by name in a module-level
registry.  Two families coexist:

* **dict-order policies** (``lru``, ``fifo``, ``random``) — their whole
  semantics is *which events refresh a line's position* in the set's
  insertion-ordered dict, plus how the victim index is drawn.  They carry
  no state of their own: :class:`repro.memory.cache.Cache` interprets the
  three class flags (``refresh_on_hit`` / ``refresh_on_fill`` /
  ``random_victim``) with exactly the inline code it has always run, so
  re-expressing them as registry entries is digit-exact by construction
  (the golden-parity suite proves it end to end).
* **stateful policies** (``plru``, ``rrip``, ``brrip``) — they keep real
  per-set metadata (a PLRU bit tree, RRPV counters) and take part in the
  cache's operations through four touch hooks: ``on_hit`` (a probe hit or
  a merged re-fill), ``on_fill`` (a new line installed), ``evict``
  (choose and release the victim of a full set) and ``on_invalidate``.

Victim choice for every policy is a pure function of the access history,
the configuration and the seed — simulations stay deterministic, which is
what lets :meth:`repro.exec.SimJob.cache_key` treat the policy name as a
complete description.

Seeding: the ``random`` and ``brrip`` policies draw from the same LCG the
cache has always used.  :func:`derive_seed` maps the harness-level
workload seed onto a cache seed — seed 0 (the default everywhere) keeps
the historical constant :data:`DEFAULT_REPLACEMENT_SEED` so existing
golden captures replay digit-exact, while a non-zero ``--seed`` gives the
random policy an honestly different (but reproducible) eviction stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

#: The cache seed used when no harness seed is in play — the historical
#: hardcoded LCG seed, load-bearing for golden-capture parity.
DEFAULT_REPLACEMENT_SEED = 12345

#: LCG constants shared by the random policy and BRRIP's insertion dice
#: (same generator the cache has used since the stamp era).
_LCG_MUL = 1103515245
_LCG_ADD = 12345
_LCG_MASK = 0x7FFFFFFF


def derive_seed(harness_seed: int, salt: int = 0) -> int:
    """Cache replacement seed for a harness-level workload seed.

    Seed 0 — the untouched default path — maps to
    :data:`DEFAULT_REPLACEMENT_SEED`, keeping every existing capture
    digit-exact.  Any other seed is mixed (splitmix-style) so nearby
    harness seeds give unrelated eviction streams; *salt* separates
    consumers that want distinct streams from one harness seed.
    """
    if not harness_seed:
        return DEFAULT_REPLACEMENT_SEED
    x = (harness_seed * 0x9E3779B1 + salt * 0x85EBCA6B
         + DEFAULT_REPLACEMENT_SEED) & _LCG_MASK
    return x or DEFAULT_REPLACEMENT_SEED


class ReplacementPolicy:
    """Base replacement-policy entry.

    Class attributes describe the dict-order family; stateful policies
    override the hook methods instead.  Instances are constructed per
    cache with ``(config, seed)`` where *config* is the cache's
    :class:`repro.memory.config.CacheConfig`.
    """

    #: Registry key (subclasses set it).
    name: str = ""
    #: True when the policy is fully expressed by the set dict's order.
    dict_order: bool = False
    #: dict-order: a probe hit moves the line to the back of the order.
    refresh_on_hit: bool = False
    #: dict-order: a (re-)fill moves the line to the back of the order.
    refresh_on_fill: bool = True
    #: dict-order: the victim indexes the order through the seeded LCG
    #: instead of taking the front.
    random_victim: bool = False

    def __init__(self, config, seed: int = DEFAULT_REPLACEMENT_SEED) -> None:
        self.config = config
        self.seed = seed

    # -- stateful hooks (no-ops for the dict-order family) -------------------
    def on_hit(self, set_index: int, line_addr: int) -> None:
        """The resident *line_addr* was touched (probe hit or re-fill)."""

    def on_fill(self, set_index: int, line_addr: int) -> None:
        """A new line was installed into a set with a free way."""

    def evict(self, set_index: int, cache_set: Dict[int, bool]) -> int:
        """Choose the victim of a full set and release its metadata.

        *cache_set* is the set's resident dict (line addr -> dirty bit) in
        insertion order; the cache deletes the returned line afterwards.
        """
        raise NotImplementedError

    def on_invalidate(self, set_index: int, line_addr: int) -> None:
        """The resident *line_addr* was invalidated (way freed)."""

    def reset(self) -> None:
        """Drop all per-set metadata (cache flush)."""


_REGISTRY: Dict[str, Type[ReplacementPolicy]] = {}


def register(cls: Type[ReplacementPolicy]) -> Type[ReplacementPolicy]:
    """Class decorator: add a policy to the registry under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"policy class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, registration order (historical ones first)."""
    return tuple(_REGISTRY)


def get_policy_class(name: str) -> Type[ReplacementPolicy]:
    """Look up a registered policy class.

    Raises:
        ValueError: for unknown names, listing the registered choices.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {available_policies()}") from None


def create_policy(name: str, config,
                  seed: int = DEFAULT_REPLACEMENT_SEED) -> ReplacementPolicy:
    """Instantiate the policy *name* for one cache."""
    return get_policy_class(name)(config, seed)


# -- the dict-order family (semantics interpreted by Cache) -------------------

@register
class LRUPolicy(ReplacementPolicy):
    """True LRU: probe hits and fills both refresh recency (the paper's
    machines)."""

    name = "lru"
    dict_order = True
    refresh_on_hit = True
    refresh_on_fill = True


@register
class FIFOPolicy(ReplacementPolicy):
    """FIFO: only fills refresh the order (a merged write miss counts as a
    re-fill, matching the historical stamp semantics)."""

    name = "fifo"
    dict_order = True
    refresh_on_hit = False
    refresh_on_fill = True


@register
class RandomPolicy(ReplacementPolicy):
    """Seeded random: pure insertion order, victim drawn by the cache's
    LCG — reproducing the historical ``list(set)[lcg % ways]`` choice."""

    name = "random"
    dict_order = True
    refresh_on_hit = False
    refresh_on_fill = False
    random_victim = True


# -- tree-PLRU ----------------------------------------------------------------

@register
class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two associativity.

    Per set: ``assoc - 1`` direction bits arranged as an implicit binary
    heap (bit ``p`` = 0 sends the victim walk left, 1 sends it right) and
    a way table mapping ways to resident lines.  Touching a way flips
    every bit on its root path to point *away* from it; the victim walk
    follows the bits from the root.  Hardware cost is ``assoc - 1`` bits
    per set versus true LRU's ``assoc·log2(assoc)`` — the classic
    approximation the ablation bench quantifies.
    """

    name = "plru"

    def __init__(self, config, seed: int = DEFAULT_REPLACEMENT_SEED) -> None:
        super().__init__(config, seed)
        assoc = config.assoc
        if assoc & (assoc - 1):
            raise ValueError(
                f"tree-PLRU needs a power-of-two associativity, got {assoc}")
        self.assoc = assoc
        self._internal = assoc - 1
        num_sets = config.num_sets
        self._bits = [0] * num_sets
        self._ways = [[None] * assoc for _ in range(num_sets)]
        self._way_of: list = [dict() for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = self._internal + way
        while node:
            parent = (node - 1) >> 1
            if node == 2 * parent + 1:   # accessed via the left child
                bits |= 1 << parent      # -> point the victim walk right
            else:
                bits &= ~(1 << parent)   # -> point it left
            node = parent
        self._bits[set_index] = bits

    def on_hit(self, set_index: int, line_addr: int) -> None:
        way = self._way_of[set_index].get(line_addr)
        if way is not None:
            self._touch(set_index, way)

    def on_fill(self, set_index: int, line_addr: int) -> None:
        ways = self._ways[set_index]
        way = ways.index(None)  # the cache guarantees a free way
        ways[way] = line_addr
        self._way_of[set_index][line_addr] = way
        self._touch(set_index, way)

    def evict(self, set_index: int, cache_set: Dict[int, bool]) -> int:
        bits = self._bits[set_index]
        internal = self._internal
        node = 0
        while node < internal:
            node = 2 * node + 1 + ((bits >> node) & 1)
        way = node - internal
        ways = self._ways[set_index]
        line = ways[way]
        ways[way] = None
        del self._way_of[set_index][line]
        return line

    def on_invalidate(self, set_index: int, line_addr: int) -> None:
        way = self._way_of[set_index].pop(line_addr, None)
        if way is not None:
            self._ways[set_index][way] = None

    def reset(self) -> None:
        num_sets = self.config.num_sets
        self._bits = [0] * num_sets
        self._ways = [[None] * self.assoc for _ in range(num_sets)]
        self._way_of = [dict() for _ in range(num_sets)]


# -- RRIP family (TRRIP-inspired) ---------------------------------------------

@register
class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP (SRRIP-HP) with 2-bit re-reference prediction values.

    Fills insert at RRPV ``max - 1`` ("long re-reference interval"), hits
    promote to 0 ("near-immediate"), and the victim is the first line in
    way order whose RRPV saturated at ``max`` — ageing every line until
    one does.  Lines that are filled and never touched again age out
    ahead of lines with demonstrated reuse, which is exactly the
    scan/thrash resistance the TRRIP line of work builds on.
    """

    name = "rrip"
    #: 2-bit RRPVs: 0 = near-immediate reuse, 3 = eviction candidate.
    MAX_RRPV = 3
    INSERT_RRPV = 2

    def __init__(self, config, seed: int = DEFAULT_REPLACEMENT_SEED) -> None:
        super().__init__(config, seed)
        self._rrpv: list = [dict() for _ in range(config.num_sets)]

    def _insert_rrpv(self) -> int:
        return self.INSERT_RRPV

    def on_fill(self, set_index: int, line_addr: int) -> None:
        self._rrpv[set_index][line_addr] = self._insert_rrpv()

    def on_hit(self, set_index: int, line_addr: int) -> None:
        rrpv = self._rrpv[set_index]
        if line_addr in rrpv:
            rrpv[line_addr] = 0

    def evict(self, set_index: int, cache_set: Dict[int, bool]) -> int:
        rrpv = self._rrpv[set_index]
        maximum = self.MAX_RRPV
        while True:
            for line in cache_set:  # way order = insertion order: a fixed,
                if rrpv[line] >= maximum:  # deterministic tie-break
                    del rrpv[line]
                    return line
            for line in rrpv:
                rrpv[line] += 1

    def on_invalidate(self, set_index: int, line_addr: int) -> None:
        self._rrpv[set_index].pop(line_addr, None)

    def reset(self) -> None:
        self._rrpv = [dict() for _ in range(self.config.num_sets)]


@register
class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: inserts at ``max`` RRPV, occasionally (1/32, drawn
    from the seeded LCG) at ``max - 1`` — the thrash-resistant half of
    DRRIP, useful when a working set cycles through a set faster than
    SRRIP's insertion point can protect it."""

    name = "brrip"
    #: One long-interval insertion per this many fills (the rest insert
    #: distant, i.e. immediately evictable once aged).
    EPSILON = 32

    def __init__(self, config, seed: int = DEFAULT_REPLACEMENT_SEED) -> None:
        super().__init__(config, seed)
        self._state = seed or 1

    def _insert_rrpv(self) -> int:
        self._state = (self._state * _LCG_MUL + _LCG_ADD) & _LCG_MASK
        if self._state % self.EPSILON == 0:
            return self.INSERT_RRPV
        return self.MAX_RRPV

    def reset(self) -> None:
        super().reset()
        self._state = self.seed or 1


__all__ = [
    "DEFAULT_REPLACEMENT_SEED",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "available_policies",
    "create_policy",
    "derive_seed",
    "get_policy_class",
    "register",
]
