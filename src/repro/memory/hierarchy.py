"""Two-level non-blocking memory hierarchy with Table 1 timing.

The hierarchy is the single point the cores talk to.  Accesses are submitted
with a cycle number (non-decreasing); the hierarchy applies any fills whose
data has arrived, models bank and main-memory-port contention, and returns
an :class:`AccessResult` with the cycle the data is ready — or ``None`` when
no MSHR is free, in which case the core retries the access on a later cycle
(a structural stall, exactly how a lockup-free cache behaves).

Fills are deferred: a missed line is installed only when its data returns.
That deferral is what makes the Section 3.3 guarantee implementable — a
pinned MSHR released as *squashed* after its fill invalidates the L1 line,
and one released (squashed) before its fill suppresses the install entirely.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.memory.cache import Cache
from repro.memory.config import CacheConfig, HierarchyConfig
from repro.memory.replacement import DEFAULT_REPLACEMENT_SEED
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHRFile
from repro.memory.stats import MemStats


class AccessResult:
    """Timing outcome of one data-cache access.

    Attributes:
        l1_miss: True when the reference's hit/miss signal says *miss* —
            the condition that fires an informing memory operation.  Both
            primary and merged (secondary) misses raise it.
        level: 1 (L1 hit), 2 (L2 hit) or 3 (main memory); merged misses
            report the level of the miss they joined.
        start_cycle: when the access actually occupied a bank (>= the
            submitted cycle under contention).
        ready_cycle: when the data is available to dependents.
        mshr_id: the MSHR servicing the miss (primary or merged), else None.
        merged: True when this was a secondary miss on an in-flight line.
        needs_inform: True when this reference should invoke the informing
            mechanism — it initiated a line fetch, or merged with one whose
            handler has not yet run (the triggering reference was squashed
            before its trap was taken, or the fetch was a prefetch).
            Informing fires once per line fetch (Section 3.3: the access
            check happens "every time a new line is fetched into the
            cache"); cores call :meth:`MemoryHierarchy.mark_informed` when
            the handler is actually taken.
    """

    __slots__ = ("l1_miss", "level", "start_cycle", "ready_cycle",
                 "mshr_id", "merged", "needs_inform")

    def __init__(self, l1_miss: bool, level: int, start_cycle: int,
                 ready_cycle: int, mshr_id: Optional[int] = None,
                 merged: bool = False, needs_inform: bool = False) -> None:
        # A plain __slots__ class, not a dataclass: one AccessResult is
        # built per data access, and the frozen-dataclass __init__ (seven
        # object.__setattr__ calls) was measurable on the L1-hit path.
        self.l1_miss = l1_miss
        self.level = level
        self.start_cycle = start_cycle
        self.ready_cycle = ready_cycle
        self.mshr_id = mshr_id
        self.merged = merged
        self.needs_inform = needs_inform

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AccessResult(l1_miss={self.l1_miss}, level={self.level}, "
                f"start_cycle={self.start_cycle}, "
                f"ready_cycle={self.ready_cycle}, mshr_id={self.mshr_id}, "
                f"merged={self.merged}, needs_inform={self.needs_inform})")


class MemoryHierarchy:
    """L1 data cache + unified L2 + bandwidth-limited memory (+ optional L1I)."""

    def __init__(
        self,
        config: HierarchyConfig,
        icache: Optional[CacheConfig] = None,
        extended_mshr_lifetime: bool = False,
        stream_buffers: int = 0,
        replacement_policy: Optional[str] = None,
        replacement_seed: int = DEFAULT_REPLACEMENT_SEED,
    ) -> None:
        self.config = config
        if replacement_policy is None:
            replacement_policy = config.replacement_policy
        self.replacement_policy = replacement_policy
        self.l1 = Cache(config.l1, "L1D", policy=replacement_policy,
                        seed=replacement_seed)
        self.l2 = Cache(config.l2, "L2", policy=replacement_policy,
                        seed=replacement_seed)
        # The instruction cache stays true LRU: the paper's handler-overhead
        # model only needs first-touch cost, and the policy ablations are
        # about the data side.
        self.icache = Cache(icache, "L1I") if icache is not None else None
        self.mshrs = MSHRFile(config.mshr_count, extended_mshr_lifetime)
        self.memory = MainMemory(config.mem_cycles_per_access)
        self.stats = MemStats()
        # Jouppi-style stream buffers [Jou90] — the purely-hardware
        # alternative the paper's introduction contrasts informing
        # operations with.  Each buffer tracks one sequential stream with
        # several prefetches in flight (FIFO of depth entries): a demand
        # miss matching the buffer head is satisfied from the buffer and
        # the stream advances; a miss matching nothing reallocates the
        # least-recently-used buffer.
        self.stream_buffer_depth = 4
        self._stream_buffers = [
            {"entries": [], "tail": -1, "last_used": 0}
            for _ in range(stream_buffers)]
        self.stream_buffer_hits = 0
        self._line_shift = config.l1.line_size.bit_length() - 1
        self._bank_free: List[int] = [0] * config.data_banks
        self._num_banks = config.data_banks
        self._l1_hit_latency = config.l1_hit_latency
        # Pending fills: (ready_cycle, seq, mshr_id, line_addr, dirty, from_mem)
        self._pending: List[Tuple[int, int, int, int, bool, bool]] = []
        self._fill_seq = 0
        self._last_cycle = 0
        self.i_accesses = 0
        self.i_misses = 0
        # Optional runtime invariant checker (repro.sanitize); attached via
        # Sanitizer.attach_hierarchy, None keeps hooks to one identity test.
        self._san = None
        # Optional observer (repro.obs); attached via
        # Observer.attach_hierarchy, same pattern and same off cost.
        self._obs = None
        # Optional L1 fill filter (adaptive bypass, repro.apps.bypass):
        # called with the byte address of an arriving fill; returning True
        # skips the L1 install (the line still lands in the L2).  None
        # keeps the cost to one identity test per fill.
        self.bypass_filter = None
        self.bypassed_fills = 0

    # -- internal helpers ----------------------------------------------------
    def _line_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def _line_to_byte(self, line_addr: int) -> int:
        return line_addr << self._line_shift

    def _claim_bank(self, line_addr: int, cycle: int, busy: int) -> int:
        """Occupy the bank for *busy* cycles; return the start cycle."""
        bank = line_addr % len(self._bank_free)
        start = max(cycle, self._bank_free[bank])
        self.stats.bank_conflict_cycles += start - cycle
        self._bank_free[bank] = start + busy
        return start

    def _apply_fills(self, cycle: int) -> None:
        """Install lines whose data has arrived by *cycle*."""
        obs = self._obs
        while self._pending and self._pending[0][0] <= cycle:
            ready, _seq, mshr_id, line_addr, dirty, from_mem = heapq.heappop(
                self._pending)
            if obs is not None:
                # Fill/evict events stamp at data arrival, not at the
                # access that triggered the drain (heap pops ascending,
                # so the stamps stay monotonic).
                obs.cycle = ready
            byte_addr = self._line_to_byte(line_addr)
            if from_mem:
                self._install_l2(byte_addr)
            entry = self.mshrs.get(mshr_id)
            if entry is None:
                # Squashed before the data returned: the MSHR drop already
                # stopped the forward; we also skip the L1 install.  The L2
                # install above still happens — the paper's "effectively
                # prefetched into the second-level cache".
                continue
            if self.bypass_filter is not None and self.bypass_filter(byte_addr):
                # Adaptive bypass: the handler judged this line dead on
                # arrival, so it never enters the L1 (no bank fill, no
                # victim).  The line stays in the L2; a dirty merge writes
                # through to the L2 copy instead.
                self.bypassed_fills += 1
                if dirty:
                    self.l2.probe(byte_addr, is_write=True)
                self.mshrs.mark_filled(mshr_id)
                continue
            self._claim_bank(line_addr, ready, self.config.fill_time)
            victim = self.l1.fill(byte_addr, dirty=dirty)
            if victim is not None and victim.dirty:
                self.stats.writebacks_l1 += 1
                self.l2.probe(self._line_to_byte(victim.line_addr),
                              is_write=True)
            self.mshrs.mark_filled(mshr_id)

    def _install_l2(self, byte_addr: int) -> None:
        victim = self.l2.fill(byte_addr)
        if victim is not None:
            victim_byte = self._line_to_byte(victim.line_addr)
            if victim.dirty:
                self.stats.writebacks_l2 += 1
                self.memory.schedule(self._last_cycle)
            # Maintain inclusion: an L2 eviction purges the L1 copy.
            self.l1.invalidate(victim_byte)

    # -- public API ----------------------------------------------------------
    def access(self, addr: int, is_write: bool, cycle: int,
               prefetch: bool = False) -> Optional[AccessResult]:
        """Submit a data access at *cycle*; see the module docstring.

        Cycles must be non-decreasing across calls.  Returns None when the
        access could not be accepted (MSHR file full, or a dropped
        prefetch); demand accesses must then be retried.
        """
        if cycle < self._last_cycle:
            raise ValueError(
                f"accesses must be submitted in cycle order "
                f"({cycle} < {self._last_cycle})")
        self._last_cycle = cycle
        if self._pending:
            self._apply_fills(cycle)
        if self._san is not None:
            self._san.on_access(self, cycle)
        obs = self._obs
        if obs is not None:
            obs.on_access(cycle)
        line_addr = addr >> self._line_shift
        stats = self.stats

        if prefetch:
            stats.prefetches += 1
        else:
            stats.l1_accesses += 1

        # -- L1-hit fast path ------------------------------------------------
        # The overwhelmingly common case (the paper's §2 premise): resolve a
        # primary-cache hit with one dict lookup, an O(1) recency refresh,
        # and an inline bank claim — no Cache.probe/_claim_bank call frames.
        l1 = self.l1
        cache_set = l1._sets[line_addr & l1._set_mask]
        dirty = cache_set.get(line_addr)
        if dirty is not None:
            if l1._is_lru:
                del cache_set[line_addr]
                cache_set[line_addr] = dirty or is_write
            else:
                if is_write:
                    cache_set[line_addr] = True
                stateful = l1._stateful
                if stateful is not None:
                    stateful.on_hit(line_addr & l1._set_mask, line_addr)
            if not prefetch:
                stats.l1_hits += 1
                if obs is not None:
                    obs.on_l1_hit(line_addr, is_write)
            bank_free = self._bank_free
            bank = line_addr % self._num_banks
            start = bank_free[bank]
            if start > cycle:
                stats.bank_conflict_cycles += start - cycle
            else:
                start = cycle
            bank_free[bank] = start + 1
            return AccessResult(False, 1, start, start + self._l1_hit_latency)

        if self._stream_buffers and not prefetch:
            buffer = self._match_stream_buffer(line_addr)
            if buffer is not None:
                # The line is the head of a stream buffer.  If its prefetch
                # has completed this is a fast near-hit; otherwise the
                # reference waits on the in-flight buffer fetch (it does
                # not start a second one).  Either way the head is consumed
                # and the buffer tops itself up to depth.
                self.stream_buffer_hits += 1
                buffer["last_used"] = cycle
                _line, fetch_ready = buffer["entries"].pop(0)
                arrived = fetch_ready <= cycle
                start = self._claim_bank(line_addr, cycle, 1)
                ready = max(fetch_ready, start) + self.config.l1_hit_latency
                if arrived:
                    stats.l1_hits += 1
                else:
                    stats.l1_misses += 1
                    stats.note_line(line_addr)
                if obs is not None:
                    obs.on_stream_buffer(line_addr, arrived)
                self.l1.fill(addr, dirty=is_write)
                self._top_up_stream_buffer(buffer, cycle)
                return AccessResult(not arrived, 1, start, ready,
                                    needs_inform=not arrived)

        in_flight = self.mshrs.lookup(line_addr)
        if in_flight is not None:
            entry = self.mshrs.merge(line_addr, is_write and not prefetch)
            if not prefetch:
                stats.l1_secondary_misses += 1
                if obs is not None:
                    obs.on_l1_merge(line_addr, entry.mshr_id,
                                    entry.data_ready)
            return AccessResult(True, 0, cycle, entry.data_ready,
                                mshr_id=entry.mshr_id, merged=True,
                                needs_inform=not entry.informed)

        if self.mshrs.full:
            if prefetch:
                stats.prefetches_dropped += 1
            else:
                stats.mshr_stalls += 1
            return None

        if not prefetch:
            stats.l1_misses += 1
            stats.note_line(line_addr)
        start = self._claim_bank(line_addr, cycle, 1)
        stats.l2_accesses += 1
        if self.l2.probe(addr):
            stats.l2_hits += 1
            level = 2
            data_ready = start + self.config.l1_to_l2_latency
            from_mem = False
        else:
            stats.l2_misses += 1
            level = 3
            mem_start = self.memory.schedule(start)
            data_ready = mem_start + self.config.l1_to_mem_latency
            from_mem = True

        entry = self.mshrs.allocate(line_addr, data_ready,
                                    is_write and not prefetch)
        assert entry is not None  # full-check above guarantees a slot
        if obs is not None and not prefetch:
            obs.on_l1_miss(line_addr, level, start, data_ready,
                           entry.mshr_id)
        self._fill_seq += 1
        heapq.heappush(self._pending, (data_ready, self._fill_seq,
                                       entry.mshr_id, line_addr,
                                       is_write and not prefetch, from_mem))
        if self._stream_buffers and not prefetch:
            # A miss that matched no buffer starts a new stream behind it.
            self._allocate_stream_buffer(line_addr + 1, data_ready)
        return AccessResult(True, level, start, data_ready,
                            mshr_id=entry.mshr_id, needs_inform=True)

    # -- stream buffers (hardware baseline) -----------------------------------
    def _match_stream_buffer(self, line_addr: int):
        for buffer in self._stream_buffers:
            if buffer["entries"] and buffer["entries"][0][0] == line_addr:
                return buffer
        return None

    def _fetch_into_stream_buffer(self, buffer: dict, cycle: int) -> None:
        line_addr = buffer["tail"] + 1
        buffer["tail"] = line_addr
        byte_addr = self._line_to_byte(line_addr)
        if self.l2.probe(byte_addr):
            ready = cycle + self.config.l1_to_l2_latency
        else:
            start = self.memory.schedule(cycle)
            ready = start + self.config.l1_to_mem_latency
            # The fetched line is installed in the L2 as it passes through;
            # modelled at request time (a slight idealisation that only
            # matters if an unrelated reference touches the line first).
            self._install_l2(byte_addr)
        buffer["entries"].append((line_addr, ready))

    def _top_up_stream_buffer(self, buffer: dict, cycle: int) -> None:
        while len(buffer["entries"]) < self.stream_buffer_depth:
            self._fetch_into_stream_buffer(buffer, cycle)

    def _allocate_stream_buffer(self, line_addr: int, cycle: int) -> None:
        victim = min(self._stream_buffers, key=lambda b: b["last_used"])
        victim["last_used"] = cycle
        victim["entries"] = []
        victim["tail"] = line_addr - 1
        self._top_up_stream_buffer(victim, cycle)

    def mark_informed(self, mshr_id: int) -> None:
        """A miss handler ran for this line fetch (see AccessResult)."""
        self.mshrs.mark_informed(mshr_id)

    def release_mshr(self, mshr_id: int, squashed: bool) -> None:
        """Extended-lifetime release (graduate or squash) of a pinned MSHR."""
        san = self._san
        entry = self.mshrs.get(mshr_id) if san is not None else None
        line_addr = self.mshrs.release(mshr_id, squashed)
        if line_addr is not None:
            if self.l1.invalidate(self._line_to_byte(line_addr)):
                self.stats.squash_invalidations += 1
        if san is not None and entry is not None:
            san.on_mshr_release(self, entry, squashed)

    def ifetch(self, pc: int, cycle: int) -> int:
        """Instruction fetch; returns the cycle the fetch block is available.

        Modelled blocking and without MSHRs: handler-code fetch misses are
        rare after warm-up, and the paper's overhead model only needs their
        first-touch cost.
        """
        if self.icache is None:
            return cycle
        self.i_accesses += 1
        if self.icache.probe(pc):
            return cycle
        self.i_misses += 1
        if self.l2.probe(pc):
            latency = self.config.l1_to_l2_latency
        else:
            self._install_l2(pc)
            latency = self.config.l1_to_mem_latency
        self.icache.fill(pc)
        return cycle + latency

    def drain(self) -> int:
        """Apply all pending fills; return the last fill-ready cycle."""
        last = self._last_cycle
        if self._pending:
            last = max(last, max(p[0] for p in self._pending))
            self._apply_fills(last)
            self._last_cycle = max(self._last_cycle, last)
        return last
