"""Miss Status Handling Registers for the lockup-free L1 cache.

Normal lifetime (Farkas & Jouppi [FJ94], as the paper summarises): an MSHR is
allocated on a primary miss, merges secondary misses to the same line, and is
freed when the data returns and the line fills.

*Extended* lifetime (Section 3.3): an MSHR is freed only after the owning
memory instruction either graduates or is squashed.  On a squash after the
fill already happened, the MSHR's address is used to invalidate the L1 line
so that a squashed speculative informing load cannot silently install cache
state (the data normally remains in L2 — an accidental prefetch).  The
paper reports that eight MSHRs remained sufficient even with the extension;
the :class:`MSHRFile` tracks high-water occupancy so our benchmarks can
verify the same claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MSHR:
    """One in-flight miss: line address plus bookkeeping."""

    __slots__ = ("mshr_id", "line_addr", "data_ready", "filled", "merged",
                 "pinned", "is_write", "informed")

    def __init__(self, mshr_id: int, line_addr: int, data_ready: int,
                 is_write: bool, pinned: bool) -> None:
        self.mshr_id = mshr_id
        self.line_addr = line_addr
        self.data_ready = data_ready
        self.filled = False          # line installed in L1 yet?
        self.merged = 0              # secondary misses merged into this entry
        self.pinned = pinned         # extended lifetime: wait for release()
        self.is_write = is_write
        # Has a miss handler run for this line fetch?  Informing operations
        # fire once per line fetch; if the triggering reference is squashed
        # before its trap is taken, a replayed/merged reference re-arms.
        self.informed = False


class MSHRFile:
    """A fixed-size file of MSHRs with optional extended lifetime.

    Args:
        count: number of registers (Table 1: 8).
        extended_lifetime: if True, entries persist until
            :meth:`release` is called (graduate/squash); otherwise they
            retire automatically once their fill completes.
    """

    def __init__(self, count: int, extended_lifetime: bool = False) -> None:
        if count < 1:
            raise ValueError("MSHR file needs at least one register")
        self.count = count
        self.extended_lifetime = extended_lifetime
        self._entries: Dict[int, MSHR] = {}
        self._by_line: Dict[int, MSHR] = {}
        self._next_id = 0
        self.high_water = 0
        self.allocation_failures = 0
        # Optional runtime invariant checker (repro.sanitize); None keeps
        # the hook cost to one identity test per lifetime transition.
        self._san = None
        # Optional observer (repro.obs), same pattern and same cost.
        self._obs = None

    # -- queries -----------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[MSHR]:
        """Return the in-flight entry for *line_addr*, if any."""
        return self._by_line.get(line_addr)

    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.count

    def get(self, mshr_id: int) -> Optional[MSHR]:
        return self._entries.get(mshr_id)

    def entries(self) -> List[MSHR]:
        return list(self._entries.values())

    # -- lifetime ------------------------------------------------------------
    def allocate(self, line_addr: int, data_ready: int, is_write: bool
                 ) -> Optional[MSHR]:
        """Allocate an entry for a primary miss; None if the file is full."""
        if line_addr in self._by_line:
            raise ValueError(
                f"line {line_addr:#x} already has an MSHR; merge instead")
        if self.full:
            self.allocation_failures += 1
            return None
        entry = MSHR(self._next_id, line_addr, data_ready, is_write,
                     pinned=self.extended_lifetime)
        self._next_id += 1
        self._entries[entry.mshr_id] = entry
        self._by_line[line_addr] = entry
        self.high_water = max(self.high_water, len(self._entries))
        if self._san is not None:
            self._san.on_mshr_event(self)
        if self._obs is not None:
            self._obs.on_mshr_alloc(entry, len(self._entries))
        return entry

    def merge(self, line_addr: int, is_write: bool) -> MSHR:
        """Record a secondary miss on an outstanding line."""
        entry = self._by_line.get(line_addr)
        if entry is None:
            raise KeyError(f"no outstanding miss for line {line_addr:#x}")
        entry.merged += 1
        entry.is_write = entry.is_write or is_write
        if self._obs is not None:
            self._obs.on_mshr_merge(entry)
        return entry

    def mark_filled(self, mshr_id: int) -> None:
        """The fill for this entry completed; retire unless pinned.

        A filled entry stops being a merge target (the line is resident, or
        was and got evicted — either way a new reference must re-probe), so
        it leaves the line map even while pinned.
        """
        entry = self._entries.get(mshr_id)
        if entry is None:
            return
        entry.filled = True
        if self._by_line.get(entry.line_addr) is entry:
            del self._by_line[entry.line_addr]
        if not entry.pinned:
            del self._entries[entry.mshr_id]
        if self._san is not None:
            self._san.on_mshr_event(self)
        if self._obs is not None:
            self._obs.on_mshr_fill(entry, len(self._entries))

    def release(self, mshr_id: int, squashed: bool) -> Optional[int]:
        """Extended-lifetime release at graduate (squashed=False) or squash.

        Returns the line address the caller must invalidate in L1 when a
        squashed entry had already filled, else None.
        """
        entry = self._entries.get(mshr_id)
        if entry is None:
            return None
        if not entry.pinned:
            raise ValueError("release() applies only to pinned entries")
        invalidate = entry.line_addr if (squashed and entry.filled) else None
        # If the data has not arrived yet (squash before fill), dropping the
        # entry also stops the eventual return from installing the line or
        # forwarding to a stale destination — the standard squash behaviour
        # the paper builds on.
        del self._entries[entry.mshr_id]
        if self._by_line.get(entry.line_addr) is entry:
            del self._by_line[entry.line_addr]
        if self._san is not None:
            self._san.on_mshr_event(self)
        if self._obs is not None:
            self._obs.on_mshr_release(entry, squashed, len(self._entries))
        return invalidate

    def mark_informed(self, mshr_id: int) -> None:
        """Record that a miss handler ran for this line fetch."""
        entry = self._entries.get(mshr_id)
        if entry is not None:
            entry.informed = True

    def is_informed(self, mshr_id: int) -> Optional[bool]:
        """Informed status, or None if the entry has retired."""
        entry = self._entries.get(mshr_id)
        return entry.informed if entry is not None else None

    def flush(self) -> None:
        """Drop all entries (experiment-boundary reset)."""
        self._entries.clear()
        self._by_line.clear()
