"""Victim cache — the second [Jou90] hardware mechanism.

Jouppi's miss-reduction study paired stream buffers with a small
fully-associative *victim cache* holding the last few lines evicted from a
direct-mapped cache; conflict misses that ping-pong between a handful of
lines hit in the victim cache at near-L1 latency.  The paper's introduction
groups these hardware fixes together as incomplete solutions; this module
lets the benchmarks stage informing-based software remedies (page
recoloring) against the hardware one on the same conflict pathology.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memory.cache import Cache, EvictedLine
from repro.memory.config import CacheConfig


class VictimCache:
    """A small fully-associative buffer of recently evicted lines."""

    def __init__(self, entries: int = 4, line_size: int = 32) -> None:
        if entries < 1:
            raise ValueError("victim cache needs at least one entry")
        self.entries = entries
        self.line_size = line_size
        # Ordered oldest-first: dict insertion order replaces the historical
        # per-line stamps, making the full-buffer eviction O(1).
        self._lines: Dict[int, None] = {}
        self.hits = 0
        self.probes = 0

    def insert(self, victim: EvictedLine) -> None:
        """Capture a line evicted from the primary cache."""
        line = victim.line_addr
        if line in self._lines:
            del self._lines[line]  # re-insert moves it to newest
        elif len(self._lines) >= self.entries:
            del self._lines[next(iter(self._lines))]
        self._lines[line] = None

    def probe(self, addr: int) -> bool:
        """Check (and consume) a line on a primary-cache miss.

        A hit removes the line — it is swapped back into the primary cache
        (the caller performs the L1 fill, whose own victim comes back here).
        """
        self.probes += 1
        line = addr >> (self.line_size.bit_length() - 1)
        if line in self._lines:
            del self._lines[line]
            self.hits += 1
            return True
        return False

    def flush(self) -> None:
        self._lines.clear()

    @property
    def occupancy(self) -> int:
        return len(self._lines)


class VictimCachedL1:
    """A direct-mapped cache front-ended helper with a victim cache.

    A convenience composition used by the hardware-baseline benchmarks:
    ``access`` performs the probe-L1 / probe-victim / swap dance and
    reports where the reference was satisfied.
    """

    L1_HIT = "l1"
    VICTIM_HIT = "victim"
    MISS = "miss"

    def __init__(self, config: CacheConfig, victim_entries: int = 4) -> None:
        self.l1 = Cache(config)
        self.victim = VictimCache(victim_entries, config.line_size)

    def access(self, addr: int, is_write: bool = False) -> str:
        if self.l1.probe(addr, is_write=is_write):
            return self.L1_HIT
        if self.victim.probe(addr):
            evicted = self.l1.fill(addr, dirty=is_write)
            if evicted is not None:
                self.victim.insert(evicted)
            return self.VICTIM_HIT
        evicted = self.l1.fill(addr, dirty=is_write)
        if evicted is not None:
            self.victim.insert(evicted)
        return self.MISS
