"""End-to-end tests for traces, the report layer and the harness wiring.

The contract under test: the event stream an :class:`Observer` captures
reconciles *exactly* with the simulator's own aggregate counters, the
``report`` subcommand reproduces a cell's miss breakdown from its trace
alone, and the exec engine surfaces per-job trace paths.
"""

import json
import os

import pytest

from repro.harness.runner import bar_config, run_bar
from repro.obs import Observer, read_jsonl, render_report, summarize
from repro.obs import events as ev
from repro.obs.report import report_main
from repro.workloads import spec92_workload

from .helpers import make_inorder, make_ooo, small_hierarchy, trap_config


def _run_traced(make_core, informing=None, instructions=4000, warmup=2000):
    core = make_core(hierarchy=small_hierarchy(), informing=informing)
    obs = Observer(trace=True)
    obs.attach(core)
    stream = spec92_workload("compress").stream(
        8 * (instructions + warmup) + 50_000)
    stats = core.run(stream, max_app_insts=instructions + warmup,
                     warmup_insts=warmup)
    obs.finish()
    return core, obs, stats


class TestReconciliation:
    """Event counts must equal the hierarchy/core aggregate counters."""

    @pytest.mark.parametrize("make_core", [make_inorder, make_ooo],
                             ids=["inorder", "ooo"])
    def test_counts_match_memstats(self, make_core):
        core, obs, _ = _run_traced(make_core, informing=trap_config(10))
        mem = core.hierarchy.stats
        counts = obs.counts()
        assert counts.get(ev.L1_HIT, 0) == mem.l1_hits
        assert counts.get(ev.L1_MISS, 0) == mem.l1_misses
        assert counts.get(ev.L1_MERGE, 0) == mem.l1_secondary_misses
        assert counts.get("l2.hit", 0) == mem.l2_hits
        assert counts.get("l2.miss", 0) == mem.l2_misses
        assert counts.get(ev.TRAP_FIRE, 0) == core.engine.invocations
        # Each event kind shows up once per counter increment in the trace.
        for kind in (ev.L1_HIT, ev.L1_MISS, ev.L1_MERGE, ev.TRAP_FIRE):
            assert counts.get(kind, 0) == \
                sum(1 for e in obs.events if e["kind"] == kind)

    @pytest.mark.parametrize("make_core", [make_inorder, make_ooo],
                             ids=["inorder", "ooo"])
    def test_summary_miss_rate_matches_simulator(self, make_core):
        core, obs, _ = _run_traced(make_core)
        summary = summarize(obs.events)
        mem = core.hierarchy.stats
        assert summary["accesses"] == mem.l1_accesses
        assert summary["miss_rate"] == pytest.approx(mem.l1_miss_rate)
        assert summary["l2_hits"] + summary["mem_misses"] == mem.l1_misses

    def test_trap_returns_track_fires(self):
        core, obs, _ = _run_traced(make_inorder, informing=trap_config(10))
        counts = obs.counts()
        assert counts[ev.TRAP_FIRE] > 0
        # A handler run can straddle the warm-up boundary or the end of
        # the run, so returns match fires within one.
        assert abs(counts[ev.TRAP_RETURN] - counts[ev.TRAP_FIRE]) <= 1

    def test_access_events_are_cycle_ordered(self):
        # Event stamps are absolute core cycles (fills are stamped at their
        # data-arrival cycle, so the full stream interleaves), but the
        # access-outcome events follow simulation time monotonically.
        _, obs, _ = _run_traced(make_ooo)
        assert obs.events, "traced run produced no events"
        assert all(e["cycle"] >= 0 for e in obs.events)
        access_cycles = [e["cycle"] for e in obs.events
                         if e["kind"] == ev.L1_HIT and "via" not in e]
        assert access_cycles == sorted(access_cycles)


class TestSummarizeAndRender:
    def test_summary_fields_from_synthetic_events(self):
        events = [
            {"cycle": 1, "kind": ev.L1_HIT, "line": 1, "write": False},
            {"cycle": 2, "kind": ev.L1_MISS, "line": 2, "level": 2,
             "start": 2, "ready": 14, "mshr": 0},
            {"cycle": 3, "kind": ev.L1_MISS, "line": 3, "level": 3,
             "start": 3, "ready": 78, "mshr": 1},
            {"cycle": 4, "kind": ev.L1_MERGE, "line": 3, "mshr": 1,
             "ready": 78},
            {"cycle": 5, "kind": ev.L1_HIT, "line": 4, "via": "stream"},
            {"cycle": 6, "kind": ev.CACHE_FILL, "cache": "L1", "set": 2,
             "line": 2},
            {"cycle": 6, "kind": ev.CACHE_EVICT, "cache": "L1", "set": 2,
             "line": 9, "dirty": True},
            {"cycle": 7, "kind": ev.MSHR_ALLOC, "mshr": 0, "line": 2,
             "occupancy": 2},
            {"cycle": 8, "kind": ev.MSHR_RELEASE, "mshr": 0, "line": 2,
             "squashed": True, "occupancy": 1},
            {"cycle": 9, "kind": ev.TRAP_FIRE, "pc": 1, "addr": 2,
             "handler_len": 10},
            {"cycle": 20, "kind": ev.TRAP_RETURN, "start": 10,
             "committed": 10},
        ]
        s = summarize(events)
        assert s["events"] == 11
        assert s["cycles"] == (1, 20)
        # The stream hit counts toward hits; merges count toward accesses.
        assert (s["hits"], s["misses"], s["merges"]) == (2, 2, 1)
        assert s["accesses"] == 5
        assert s["miss_rate"] == pytest.approx(3 / 5)
        assert s["l2_hits"] == 1 and s["mem_misses"] == 1
        assert s["stream_hits"] == 1
        assert s["latency"].count == 2 and s["latency"].max == 75
        assert s["fills"] == {"L1": 1}
        assert s["conflict_heat"] == {"L1": {2: 1}}
        assert s["writeback_evictions"] == 1
        assert s["mshr_high_water"] == 2
        assert s["mshr_squashed"] == 1
        assert s["trap_fires"] == 1 and s["trap_returns"] == 1
        assert s["handler_committed"].mean == 10.0

    def test_summarize_empty(self):
        s = summarize([])
        assert s["accesses"] == 0 and s["miss_rate"] == 0.0

    def test_render_report_sections(self):
        _, obs, _ = _run_traced(make_inorder, informing=trap_config(10))
        text = render_report(summarize(obs.events), title="unit")
        for needle in ("obs report — unit", "miss breakdown",
                       "miss latency (cycles)", "top conflict sets",
                       "MSHR accounting", "informing traps", "fired "):
            assert needle in text

    def test_render_report_quiet_trace(self):
        text = render_report(summarize([]), title="empty")
        assert "(no evictions)" in text
        assert "(none fired)" in text


class TestRunBarArtifacts:
    def test_run_bar_writes_trace_and_report_reproduces_breakdown(
            self, tmp_path):
        directory = str(tmp_path)
        observer = Observer(trace=True)
        result = run_bar("compress", "ooo", bar_config("S10"),
                         instructions=3000, warmup=1500,
                         observe=observer, trace_dir=directory)
        stem = "compress_ooo_S10"
        events_path = os.path.join(directory, f"{stem}.events.jsonl")
        metrics_path = os.path.join(directory, f"{stem}.metrics.json")
        assert os.path.exists(events_path)
        assert os.path.exists(metrics_path)
        # The acceptance bar: the report's event-derived miss breakdown
        # reproduces the cell's aggregate miss rate from the trace alone.
        summary = summarize(read_jsonl(events_path))
        assert summary["miss_rate"] == pytest.approx(result.l1_miss_rate)
        assert summary["trap_fires"] == result.handler_invocations
        with open(metrics_path) as fh:
            payload = json.load(fh)
        assert payload["metrics"]["counters"]["l1.hit"] == \
            summary["hits"] - summary["stream_hits"]

    def test_run_bar_observe_false_stays_dark(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        result = run_bar("compress", "inorder", bar_config("N"),
                         instructions=1000, warmup=500, observe=False,
                         trace_dir=str(tmp_path))
        assert result.cycles > 0
        assert not os.listdir(str(tmp_path))


class TestReportCLI:
    def _trace_file(self, tmp_path):
        _, obs, _ = _run_traced(make_inorder, informing=trap_config(10),
                                instructions=2000, warmup=1000)
        from repro.obs import write_jsonl
        path = str(tmp_path / "cell.events.jsonl")
        write_jsonl(obs.events, path)
        return path

    def test_trace_file_mode(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert report_main(["--trace-file", path]) == 0
        out = capsys.readouterr().out
        assert f"obs report — {path}" in out
        assert "miss breakdown" in out
        assert "simulator cross-check" not in out

    def test_trace_file_mode_with_chrome_export(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        chrome = str(tmp_path / "chrome.json")
        assert report_main(["--trace-file", path, "--chrome", chrome]) == 0
        assert "chrome trace written" in capsys.readouterr().out
        with open(chrome) as fh:
            trace = json.load(fh)
        payload = [r for r in trace["traceEvents"] if r["ph"] != "M"]
        # Every traced event maps to exactly one Chrome record.
        assert len(payload) == len(read_jsonl(path))

    def test_live_mode_cross_check(self, capsys):
        rc = report_main(["--benchmark", "compress", "--machine", "inorder",
                          "--label", "S10", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compress/inorder/S10 (live)" in out
        assert "simulator cross-check" in out
        # The event-derived miss rate is printed by render_report; the
        # simulator's own number follows — they must agree digit-for-digit.
        reported = [line for line in out.splitlines()
                    if "miss rate" in line][0].split()[-1]
        assert f"l1_miss_rate {reported}" in out

    def test_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            report_main([])
        assert "pass --trace-file" in capsys.readouterr().err


class TestExecTraceWiring:
    def test_finished_event_carries_trace_path(self, tmp_path, monkeypatch):
        from repro.exec import ExecOptions, JobRunner, SimJob
        from repro.exec.telemetry import CollectingSink

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_OBS", "1")
        sink = CollectingSink()
        runner = JobRunner(ExecOptions(jobs=1, cache=False), sinks=[sink])
        job = SimJob.bar(benchmark="compress", machine="inorder", label="N",
                         instructions=1000, warmup=500, seed=0)
        rows = runner.run([job])
        assert len(rows) == 1
        finished = [e for e in sink.events if e.event == "finished"]
        assert len(finished) == 1
        trace_path = finished[0].trace
        assert trace_path is not None
        assert os.path.exists(trace_path)
        assert read_jsonl(trace_path)
        # The trace field serializes; absent fields are dropped.
        assert json.loads(finished[0].to_json())["trace"] == trace_path

    def test_no_trace_field_when_off(self, monkeypatch):
        from repro.exec import ExecOptions, JobRunner, SimJob
        from repro.exec.telemetry import CollectingSink

        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        monkeypatch.delenv("REPRO_OBS", raising=False)
        sink = CollectingSink()
        runner = JobRunner(ExecOptions(jobs=1, cache=False), sinks=[sink])
        job = SimJob.bar(benchmark="compress", machine="inorder", label="N",
                         instructions=500, warmup=250, seed=0)
        runner.run([job])
        finished = [e for e in sink.events if e.event == "finished"]
        assert finished[0].trace is None
        assert "trace" not in json.loads(finished[0].to_json())
