"""The serving gateway: digit-exact parity with direct runs, caching,
coalescing, admission control, SSE streaming, metrics, structured errors."""

import asyncio
import json
import threading
import time

import pytest

from repro.exec import ExecOptions, JobRunner
from repro.obs.export import parse_openmetrics
from repro.serve import (
    Draining,
    Gateway,
    QueueFull,
    ServeClient,
    ServeOptions,
    validate_job_spec,
)
from repro.serve.app import App


def tiny_spec(**overrides):
    spec = {"kind": "bar", "benchmark": "compress", "machine": "ooo",
            "label": "S10", "instructions": 2000, "warmup": 500, "seed": 0}
    spec.update(overrides)
    return spec


def echo_execute(job):
    return {"label": job.label, "benchmark": job.benchmark,
            "seed": job.seed}


class LiveServer:
    """Boot an App on an ephemeral port in a background event loop."""

    def __init__(self, options=None, execute=None):
        kwargs = {} if execute is None else {"execute": execute}
        self.gateway = Gateway(options, **kwargs)
        self.app = App(self.gateway)
        self.host = None
        self.port = None
        self.loop = None
        self.abandoned = 0
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.app.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        self.abandoned = await self.app.shutdown(grace=10)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server failed to boot"
        return self

    def __exit__(self, *exc_info):
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(15)

    def client(self, tenant=None):
        return ServeClient(self.host, self.port, tenant=tenant)


@pytest.fixture
def served(tmp_path):
    options = ServeOptions(shards=2, cache_dir=str(tmp_path / "cache"),
                           manifest_dir=str(tmp_path / "runs"))
    with LiveServer(options) as server:
        yield server


class TestParityWithDirectRuns:
    def test_served_result_is_digit_exact(self, served, tmp_path):
        spec = tiny_spec()
        with served.client() as client:
            status, outcome = client.submit(spec)
        assert status == 200
        assert outcome["meta"]["cache"] == "miss"

        direct = JobRunner(ExecOptions(jobs=1, cache=False)).run(
            [validate_job_spec(spec)])[0]
        assert outcome["result"] == direct

    def test_served_manifest_digest_matches_direct_run(self, served,
                                                       tmp_path):
        """The config digest in a served run's manifest equals a direct
        harness run's digest for the same cell — the byte-identity proof."""
        spec = tiny_spec(seed=7)
        with served.client() as client:
            status, outcome = client.submit(spec)
            assert status == 200
            run_id = outcome["meta"]["run_id"]
            status, served_manifest = client.run_manifest(run_id)
        assert status == 200

        direct_runner = JobRunner(ExecOptions(
            jobs=1, cache=False, manifest_dir=str(tmp_path / "direct"),
            run_meta={"experiment": "direct"}))
        direct_result = direct_runner.run([validate_job_spec(spec)])[0]
        with open(direct_runner.last_manifest) as fh:
            direct_manifest = json.load(fh)

        assert (served_manifest["config_digest"]
                == direct_manifest["config_digest"])
        assert outcome["result"] == direct_result

    def test_second_submit_hits_the_cache(self, served):
        spec = tiny_spec(seed=3)
        with served.client() as client:
            _, first = client.submit(spec)
            _, second = client.submit(spec)
        assert first["meta"]["cache"] == "miss"
        assert second["meta"]["cache"] == "hit"
        assert second["result"] == first["result"]


class TestCoalescing:
    def test_identical_concurrent_requests_run_once(self, tmp_path):
        release = threading.Event()
        started = threading.Event()

        def gated_execute(job):
            started.set()
            assert release.wait(10)
            return {"label": job.label, "seed": job.seed}

        options = ServeOptions(shards=2,
                               cache_dir=str(tmp_path / "cache"))
        with LiveServer(options, execute=gated_execute) as server:
            spec = tiny_spec()
            outcomes = [None, None]

            def submit(slot):
                with server.client() as client:
                    outcomes[slot] = client.submit(spec)

            first = threading.Thread(target=submit, args=(0,))
            first.start()
            assert started.wait(10)  # request 0 is in the engine
            second = threading.Thread(target=submit, args=(1,))
            second.start()
            time.sleep(0.2)  # request 1 reaches the in-flight map
            release.set()
            first.join(10)
            second.join(10)

            counters = server.gateway.registry.counters()
        assert counters["serve.executed"] == 1
        assert counters["serve.coalesced"] == 1
        assert counters.get("serve.cache_hits", 0) == 0
        (s0, out0), (s1, out1) = outcomes
        assert s0 == 200 and s1 == 200
        assert out0["result"] == out1["result"]
        assert sorted([out0["meta"]["coalesced"],
                       out1["meta"]["coalesced"]]) == [False, True]


class TestAdmission:
    def test_rate_limit_gives_structured_429(self, tmp_path):
        options = ServeOptions(shards=1, rate=0.001, burst=1,
                               cache_dir=str(tmp_path / "cache"))
        with LiveServer(options, execute=echo_execute) as server:
            with server.client(tenant="alice") as client:
                status, _ = client.submit(tiny_spec())
                assert status == 200
                status, body = client.submit(tiny_spec(seed=1))
            assert status == 429
            assert body["error"] == "rate_limited"
            assert body["tenant"] == "alice"
            assert body["retry_after"] > 0

            # A different tenant has its own bucket.
            with server.client(tenant="bob") as client:
                status, _ = client.submit(tiny_spec(seed=2))
            assert status == 200

    def test_client_retries_429_to_success(self, tmp_path):
        """The client-side backoff loop: a rate-limited submit sleeps out
        the ``retry_after`` hint and lands on its feet."""
        options = ServeOptions(shards=1, rate=5.0, burst=1,
                               cache_dir=str(tmp_path / "cache"))
        with LiveServer(options, execute=echo_execute) as server:
            with server.client(tenant="carol") as client:
                status, _ = client.submit(tiny_spec())  # drains the bucket
                assert status == 200
                status, outcome = client.submit(tiny_spec(seed=1),
                                                retries=5)
            assert status == 200
            assert outcome["result"]["seed"] == 1
            assert client.rate_limit_retries >= 1

    def test_client_retry_budget_returns_final_429(self, tmp_path,
                                                   monkeypatch):
        from repro.serve import client as client_module

        sleeps = []
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        options = ServeOptions(shards=1, rate=0.001, burst=1,
                               cache_dir=str(tmp_path / "cache"))
        with LiveServer(options, execute=echo_execute) as server:
            with server.client(tenant="dave") as client:
                assert client.submit(tiny_spec())[0] == 200
                status, body = client.submit(tiny_spec(seed=1), retries=2)
            assert status == 429  # budget spent: returned, not raised
            assert body["error"] == "rate_limited"
            assert client.rate_limit_retries == 2
            assert len(sleeps) == 2
            # Each sleep honors the hint, jittered, capped at the max.
            assert all(0 < delay <= client_module.MAX_RETRY_WAIT
                       for delay in sleeps)

    def test_full_queue_gives_queue_full(self, tmp_path):
        def slow_execute(job):
            time.sleep(0.4)
            return {"label": job.label}

        async def scenario():
            gateway = Gateway(ServeOptions(
                shards=1, queue_limit=1,
                cache_dir=str(tmp_path / "cache")), execute=slow_execute)
            await gateway.start()
            first = asyncio.ensure_future(
                gateway.submit(tiny_spec(seed=1)))
            await asyncio.sleep(0.1)  # shard dequeues it
            second = asyncio.ensure_future(
                gateway.submit(tiny_spec(seed=2)))
            await asyncio.sleep(0.05)  # sits in the queue
            with pytest.raises(QueueFull):
                await gateway.submit(tiny_spec(seed=3))
            rejected = gateway.registry.counters()[
                "serve.rejected.queue_full"]
            await first
            await second
            await gateway.drain(grace=5)
            return rejected

        assert asyncio.run(scenario()) == 1

    def test_draining_gateway_rejects_submissions(self, tmp_path):
        async def scenario():
            gateway = Gateway(ServeOptions(
                shards=1, cache_dir=str(tmp_path / "cache")),
                execute=echo_execute)
            await gateway.start()
            await gateway.drain(grace=1)
            with pytest.raises(Draining):
                await gateway.submit(tiny_spec())

        asyncio.run(scenario())


class TestStreaming:
    def test_sse_replays_schema1_telemetry(self, served):
        spec = tiny_spec(seed=11)
        with served.client() as client:
            status, events = client.submit_stream(spec)
            _, plain = client.submit(spec)  # now cached: same result
        assert status == 200
        names = [e["event"] for e in events]
        assert names[0] == "header"
        assert names[-1] == "result"
        header = events[0]["data"]
        assert header["schema"] == 1
        assert header["experiment"] == "serve"
        kinds = [e["data"]["event"] for e in events
                 if e["event"] == "telemetry"]
        assert "queued" in kinds and "started" in kinds
        assert "finished" in kinds
        assert events[-1]["data"]["result"] == plain["result"]

    def test_stream_of_invalid_spec_is_plain_400(self, served):
        with served.client() as client:
            status, events = client.submit_stream({"kind": "bar"})
        assert status == 400
        assert events == [{"error": "invalid_spec", "field": "benchmark",
                           "message": events[0]["message"]}]


class TestIntrospection:
    def test_healthz(self, served):
        with served.client() as client:
            status, body = client.healthz()
        assert status == 200
        assert body["status"] == "ok"
        assert body["shards"] == 2

    def test_metrics_round_trip_openmetrics(self, served):
        with served.client() as client:
            client.submit(tiny_spec(seed=21))
            client.submit(tiny_spec(seed=21))
            status, text = client.metrics_text()
        assert status == 200
        parsed = parse_openmetrics(text)
        counters = parsed["counters"]
        assert counters["serve_requests"] >= 2
        assert counters["serve_executed"] >= 1
        assert counters["serve_cache_hits"] >= 1
        assert "serve_request_latency_ms" in parsed["histograms"]

    def test_stats_endpoint(self, served):
        with served.client() as client:
            client.submit(tiny_spec(seed=31))
            status, body = client.stats()
        assert status == 200
        assert body["health"]["status"] == "ok"
        assert body["cache"]["entries"] >= 1
        assert body["metrics"]["counters"]["serve.requests"] >= 1

    def test_runs_lists_served_manifests(self, served):
        with served.client() as client:
            _, outcome = client.submit(tiny_spec(seed=41))
            status, body = client.runs()
        assert status == 200
        assert outcome["meta"]["run_id"] in body["runs"]


class TestStructuredErrors:
    """Clients get a definite status and JSON body — never a traceback."""

    def test_unknown_path_is_404(self, served):
        with served.client() as client:
            status, body = client.json("GET", "/nope")
        assert status == 404
        assert body == {"error": "not_found", "path": "/nope"}

    def test_wrong_method_is_405(self, served):
        with served.client() as client:
            status, body = client.json("GET", "/v1/jobs")
        assert (status, body["error"]) == (405, "method_not_allowed")
        with served.client() as client:
            status, body = client.json("POST", "/healthz")
        assert (status, body["error"]) == (405, "method_not_allowed")

    def test_garbage_body_is_400(self, served):
        import http.client

        conn = http.client.HTTPConnection(served.host, served.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"] == "bad_request"

    def test_invalid_spec_is_structured_400(self, served):
        with served.client() as client:
            status, body = client.submit(tiny_spec(machine="vax"))
        assert status == 400
        assert body["error"] == "invalid_spec"
        assert body["field"] == "machine"

    def test_unknown_run_is_404(self, served):
        with served.client() as client:
            status, body = client.run_manifest("20000101T000000-none-0-0")
        assert status == 404
        assert body["error"] == "run_not_found"


class TestGracefulShutdown:
    def test_in_flight_job_finishes_during_drain(self, tmp_path):
        release = threading.Event()

        def gated_execute(job):
            assert release.wait(10)
            return {"label": job.label}

        options = ServeOptions(shards=1, cache_dir=str(tmp_path / "cache"))
        server = LiveServer(options, execute=gated_execute)
        with server:
            result_box = {}

            def submit():
                with server.client() as client:
                    result_box["outcome"] = client.submit(tiny_spec())

            worker = threading.Thread(target=submit)
            worker.start()
            time.sleep(0.2)  # the job is in flight, still gated
            # Release the job only after the drain has begun: the
            # with-block exit below starts the shutdown while the job is
            # executing, and the drain must wait for it.
            threading.Timer(0.3, release.set).start()
        worker.join(10)
        status, outcome = result_box["outcome"]
        assert status == 200
        assert outcome["result"] == {"label": "compress/ooo/S10"}
        assert server.abandoned == 0
